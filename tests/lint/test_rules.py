"""Fixture tests: every rule fires on a seeded violation, stays silent
on conforming code.

Each rule gets (at least) one positive fixture — a miniature
``src/repro/...`` tree containing the violation the rule exists to
catch — and one negative fixture proving the conforming idiom passes.
The acceptance bar for the lint PR: a rule that cannot demonstrate both
directions is not a rule, it is a hope.
"""

from __future__ import annotations


def rule_ids(findings):
    """The set of rule ids present in ``findings``."""
    return {finding.rule for finding in findings}


# ---------------------------------------------------------------- RNG-001


def test_rng001_fires_on_global_numpy_randomness(lint_tree):
    findings = lint_tree(
        {
            "src/repro/core/bad.py": """
                import numpy as np

                def draw():
                    return np.random.rand(4)
            """
        }
    )
    assert [f.rule for f in findings] == ["RNG-001"]
    assert findings[0].line == 5
    assert "np" in findings[0].message or "numpy" in findings[0].message


def test_rng001_fires_on_argless_default_rng_and_stdlib_random(lint_tree):
    findings = lint_tree(
        {
            "src/repro/core/bad.py": """
                import random
                from numpy.random import default_rng

                def draw():
                    return default_rng().random() + random.random()
            """
        }
    )
    assert [f.rule for f in findings] == ["RNG-001", "RNG-001"]


def test_rng001_silent_on_derived_streams(lint_tree):
    findings = lint_tree(
        {
            "src/repro/core/good.py": """
                import numpy as np
                from ..rng import derive_rng

                def draw(seed):
                    rng = derive_rng(seed, "draw")
                    keyed = np.random.Generator(np.random.Philox(key=7))
                    seeded = np.random.default_rng(seed)
                    return rng.random(), keyed, seeded
            """
        }
    )
    assert findings == []


def test_rng001_exempts_the_rng_modules(lint_tree):
    findings = lint_tree(
        {
            "src/repro/rng.py": """
                import numpy as np

                def make():
                    return np.random.default_rng()
            """
        }
    )
    assert findings == []


# ---------------------------------------------------------------- RNG-002


def test_rng002_fires_on_wall_clock_and_entropy_in_kernel(lint_tree):
    findings = lint_tree(
        {
            "src/repro/engine/bad.py": """
                import os
                import time
                import uuid
                from datetime import datetime

                def stamp():
                    return (
                        time.time(),
                        datetime.now(),
                        os.urandom(8),
                        uuid.uuid4(),
                        hash("salted"),
                    )
            """
        }
    )
    assert rule_ids(findings) == {"RNG-002"}
    assert len(findings) == 5


def test_rng002_silent_on_perf_counter_and_outside_kernel(lint_tree):
    findings = lint_tree(
        {
            "src/repro/engine/good.py": """
                import time

                def elapsed():
                    return time.perf_counter() - time.monotonic()
            """,
            # the service layer's event timestamps are a scoped allowance
            "src/repro/service/events_fixture.py": """
                import time

                def stamp():
                    return time.time()
            """,
        }
    )
    assert findings == []


# ---------------------------------------------------------------- DET-001


def test_det001_fires_on_set_iteration_in_kernel(lint_tree):
    findings = lint_tree(
        {
            "src/repro/algorithms/bad.py": """
                def order(edges):
                    out = []
                    for edge in set(edges):
                        out.append(edge)
                    total = list({1, 2, 3})
                    comp = [x for x in {n for n in edges}]
                    return out, total, comp
            """
        }
    )
    assert rule_ids(findings) == {"DET-001"}
    assert len(findings) == 3


def test_det001_silent_on_sorted_sets_and_dicts(lint_tree):
    findings = lint_tree(
        {
            "src/repro/algorithms/good.py": """
                def order(edges, table):
                    out = []
                    for edge in sorted(set(edges)):
                        out.append(edge)
                    for key in table:
                        out.append(key)
                    return out
            """
        }
    )
    assert findings == []


# -------------------------------------------------------------- SPAWN-001


def test_spawn001_fires_on_lambda_and_local_def(lint_tree):
    findings = lint_tree(
        {
            "src/repro/service/bad.py": """
                def fan_out(pool, ctx):
                    def local_work():
                        return 1

                    pool.submit(local_work)
                    pool.submit(lambda: 2)
                    ctx.Process(target=local_work)
            """
        }
    )
    assert rule_ids(findings) == {"SPAWN-001"}
    assert len(findings) == 3


def test_spawn001_silent_on_module_level_targets(lint_tree):
    findings = lint_tree(
        {
            "src/repro/service/good.py": """
                def module_work():
                    return 1

                def fan_out(pool, ctx, job_id):
                    pool.submit(module_work)
                    pool.submit(job_id)
                    ctx.Process(target=module_work)
            """
        }
    )
    assert findings == []


# ------------------------------------------------------------- WINDOW-001


def test_window001_fires_on_engine_import_and_backend_reference(lint_tree):
    findings = lint_tree(
        {
            "src/repro/beeping/noise.py": """
                \"\"\"Fixture noise layer.\"\"\"
                from ..engine import SimulationBackend

                def pick(backend_name):
                    return SimulationBackend
            """
        }
    )
    assert rule_ids(findings) == {"WINDOW-001"}
    # one for the import, one for the symbol reference
    assert len(findings) >= 2


def test_window001_silent_on_the_allowed_imports(lint_tree):
    findings = lint_tree(
        {
            "src/repro/beeping/noise.py": """
                \"\"\"Fixture noise layer.\"\"\"
                import numpy as np

                from ..errors import ConfigurationError
                from ..rng import derive_rng, derive_seed

                def flips(seed, window, n):
                    return derive_rng(seed, window).random(n)
            """
        }
    )
    assert findings == []


def test_window001_does_not_apply_outside_noise(lint_tree):
    findings = lint_tree(
        {
            "src/repro/beeping/batch.py": """
                from ..engine import SimulationBackend

                def run(backend):
                    return SimulationBackend
            """
        }
    )
    assert findings == []


# --------------------------------------------------------------- LOCK-001


def test_lock001_fires_on_bare_acquire(lint_tree):
    findings = lint_tree(
        {
            "src/repro/service/bad_locks.py": """
                import threading

                def guard():
                    lock = threading.Lock()
                    lock.acquire()
                    try:
                        pass
                    finally:
                        lock.release()
            """
        }
    )
    assert [f.rule for f in findings] == ["LOCK-001"]


def test_lock001_silent_on_with_statement_and_outside_scope(lint_tree):
    findings = lint_tree(
        {
            "src/repro/service/good_locks.py": """
                import threading

                def guard():
                    lock = threading.Lock()
                    with lock:
                        pass
            """,
            # core/ is outside LOCK-001's scope: no finding even for bare
            # acquire (it has no Lock-holding layers)
            "src/repro/core/unscoped.py": """
                def guard(lock):
                    lock.acquire()
            """,
        }
    )
    assert findings == []
