"""The mypy gate over the backend-protocol seams (skipped without mypy).

``mypy.ini`` scopes basic-strictness checking (``check_untyped_defs``,
``no_implicit_optional``) to ``src/repro/engine/`` and
``src/repro/sweeps/`` — the ``SimulationBackend`` protocol and the sweep
engine that fans work across it.  mypy is not a runtime dependency of
the library; when it is absent (the pinned dev container ships without
it) the gate is skipped here and runs in CI's lint job instead.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (CI's lint job runs this gate)",
)


def test_engine_and_sweeps_typecheck_clean():
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            "mypy.ini",
            "src/repro/engine",
            "src/repro/sweeps",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"mypy found type errors:\n{completed.stdout}{completed.stderr}"
    )
