"""Engine mechanics: pragmas, unused suppressions, imports, reporting."""

from __future__ import annotations

import io
from pathlib import Path

from tools.lint.engine import (
    SUPPRESSION_RULE_ID,
    ImportTable,
    lint_file,
    registered_rules,
)
from tools.lint.reporter import Finding, GateResult, Reporter

import ast


def write(tmp_path: Path, relpath: str, source: str) -> Path:
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


# ------------------------------------------------------------- suppression


def test_pragma_suppresses_a_finding_on_its_line(tmp_path):
    path = write(
        tmp_path,
        "src/repro/service/locks.py",
        "def f(lock):\n"
        "    lock.acquire()  # repro-lint: disable=LOCK-001\n",
    )
    assert lint_file(path, tmp_path) == []


def test_pragma_suppresses_only_the_named_rule(tmp_path):
    path = write(
        tmp_path,
        "src/repro/service/locks.py",
        "def f(lock):\n"
        "    lock.acquire()  # repro-lint: disable=RNG-001\n",
    )
    findings = lint_file(path, tmp_path)
    # the LOCK-001 finding survives, and the RNG-001 pragma is unused
    assert sorted(f.rule for f in findings) == [SUPPRESSION_RULE_ID, "LOCK-001"]


def test_unused_suppression_is_itself_a_finding(tmp_path):
    path = write(
        tmp_path,
        "src/repro/service/clean.py",
        "x = 1  # repro-lint: disable=LOCK-001\n",
    )
    findings = lint_file(path, tmp_path)
    assert [f.rule for f in findings] == [SUPPRESSION_RULE_ID]
    assert "unused suppression" in findings[0].message


def test_unknown_rule_id_in_pragma_is_flagged(tmp_path):
    path = write(
        tmp_path,
        "src/repro/service/clean.py",
        "x = 1  # repro-lint: disable=NOPE-999\n",
    )
    findings = lint_file(path, tmp_path)
    assert [f.rule for f in findings] == [SUPPRESSION_RULE_ID]
    assert "unknown rule" in findings[0].message


def test_comma_separated_pragma_suppresses_multiple_rules(tmp_path):
    path = write(
        tmp_path,
        "src/repro/engine/multi.py",
        "import time\n"
        "def f(a):\n"
        "    return [x for x in set(a)], time.time()  "
        "# repro-lint: disable=RNG-002,DET-001\n",
    )
    # one pragma line, two rules named, both findings suppressed
    findings = lint_file(path, tmp_path)
    assert findings == []


def test_unparseable_file_reports_instead_of_crashing(tmp_path):
    path = write(tmp_path, "src/repro/engine/broken.py", "def f(:\n")
    findings = lint_file(path, tmp_path)
    assert [f.rule for f in findings] == [SUPPRESSION_RULE_ID]
    assert "unparseable" in findings[0].message


# ------------------------------------------------------------ import table


def test_import_table_resolves_aliases_and_from_imports():
    tree = ast.parse(
        "import numpy as np\n"
        "from numpy.random import default_rng as mk\n"
        "from time import time\n"
    )
    table = ImportTable(tree, "repro.core.x")
    assert table.resolve(ast.parse("np.random.rand", mode="eval").body) == (
        "numpy.random.rand"
    )
    assert table.resolve(ast.parse("mk", mode="eval").body) == (
        "numpy.random.default_rng"
    )
    assert table.resolve(ast.parse("time", mode="eval").body) == "time.time"
    assert table.resolve(ast.parse("unbound.attr", mode="eval").body) is None


def test_import_table_resolves_relative_imports():
    tree = ast.parse("from ..engine import SimulationBackend\n")
    table = ImportTable(tree, "repro.beeping.noise")
    resolved = table.resolve(
        ast.parse("SimulationBackend", mode="eval").body
    )
    assert resolved == "repro.engine.SimulationBackend"


# --------------------------------------------------------------- reporting


def test_finding_render_formats():
    with_line = Finding("src/x.py", 7, "RNG-001", "boom")
    assert with_line.render() == "src/x.py:7: RNG-001 boom"
    legacy = Finding("repro.engine.Foo", 0, "", "missing class docstring")
    assert legacy.render() == "repro.engine.Foo: missing class docstring"


def test_reporter_exit_codes_and_report_file(tmp_path):
    out, err = io.StringIO(), io.StringIO()
    reporter = Reporter(out=out, err=err)
    clean = GateResult("a", [], "a clean", "a failed")
    dirty = GateResult(
        "b", [Finding("f.py", 1, "RNG-001", "bad")], "b clean", "1 finding"
    )
    assert reporter.emit_all([clean, dirty]) == 2
    assert "a clean" in out.getvalue()
    assert "f.py:1: RNG-001 bad" in out.getvalue()
    assert "1 finding" in err.getvalue()
    assert "FAILED gate(s): b" in err.getvalue()
    report = tmp_path / "report.txt"
    reporter.write_report(str(report))
    text = report.read_text()
    assert "f.py:1: RNG-001 bad" in text and "a clean" in text


def test_reporter_all_clean_exits_zero():
    out, err = io.StringIO(), io.StringIO()
    reporter = Reporter(out=out, err=err)
    assert reporter.emit_all([GateResult("a", [], "a clean", "a failed")]) == 0
    assert err.getvalue() == ""


# ---------------------------------------------------------------- registry


def test_rule_registry_has_the_contract_rules():
    ids = {rule.id for rule in registered_rules()}
    assert {
        "RNG-001",
        "RNG-002",
        "DET-001",
        "SPAWN-001",
        "WINDOW-001",
        "LOCK-001",
    } <= ids
    for rule in registered_rules():
        assert rule.summary, rule.id
        assert rule.backing_test, f"{rule.id} must cite its runtime test"
