"""Fixtures for the repro-lint test suite.

The ``tools`` package lives at the repo root (not under ``src/``), so
tests put the root on ``sys.path`` before importing it.  The central
fixture, ``lint_tree``, writes fixture sources into a miniature
``src/repro/...`` tree in ``tmp_path`` and lints it with the tree as
the scope root — exactly how rule scopes resolve against the real repo.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint.engine import lint_paths  # noqa: E402


@pytest.fixture
def repo_root() -> Path:
    """The repository root directory."""
    return REPO_ROOT


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` fixtures and lint them.

    Returns a callable: ``lint_tree({"src/repro/engine/x.py": "..."})``
    gives the sorted list of findings for that miniature tree.
    """

    def run(files: "dict[str, str]"):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        findings, _ = lint_paths([tmp_path], root=tmp_path)
        return findings

    return run
