"""Coverage for the markdown link gate (previously untested).

Exercises the migrated :mod:`tools.lint.links` logic directly — broken
links, anchor stripping, external/code-fence skipping — and the legacy
``tools/check_links.py`` script surface: output lines and exit codes
(0 clean, 1 broken, 2 usage).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from tools.lint.links import broken_links, legacy_main, links_gate

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "tools" / "check_links.py"


def run_script(*args: str) -> "subprocess.CompletedProcess[str]":
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


# ------------------------------------------------------------- link logic


def test_broken_relative_link_is_reported(tmp_path):
    md = tmp_path / "doc.md"
    md.write_text("see [missing](nope/gone.md) for details\n")
    findings = broken_links(md)
    assert len(findings) == 1
    assert findings[0].render() == f"{md}: broken link -> nope/gone.md"


def test_existing_relative_link_and_directory_resolve(tmp_path):
    (tmp_path / "other.md").write_text("hi\n")
    (tmp_path / "sub").mkdir()
    md = tmp_path / "doc.md"
    md.write_text("[a](other.md) and [d](sub) and ![img](other.md)\n")
    assert broken_links(md) == []


def test_anchor_is_stripped_before_resolution(tmp_path):
    (tmp_path / "other.md").write_text("# Section\n")
    md = tmp_path / "doc.md"
    md.write_text(
        "[ok](other.md#section) [self](#local) [bad](gone.md#x)\n"
    )
    findings = broken_links(md)
    # pure-anchor links are skipped; anchors never hide a broken target
    assert [f.message for f in findings] == ["broken link -> gone.md#x"]


def test_external_targets_and_code_fences_are_skipped(tmp_path):
    md = tmp_path / "doc.md"
    md.write_text(
        "[x](https://example.com/a) [m](mailto:a@b.c)\n"
        "```\n[fake](not/a/file.md)\n```\n"
    )
    assert broken_links(md) == []


def test_unreadable_file_is_one_finding(tmp_path):
    findings = broken_links(tmp_path / "absent.md")
    assert len(findings) == 1
    assert "unreadable" in findings[0].message


def test_gate_expands_directories_recursively(tmp_path):
    nested = tmp_path / "docs" / "deep"
    nested.mkdir(parents=True)
    (nested / "page.md").write_text("[bad](missing.md)\n")
    result = links_gate([tmp_path / "docs"])
    assert not result.ok
    assert result.failure_summary == "1 broken link(s)"


# ----------------------------------------------------------- script shell


def test_script_exit_zero_and_message_on_clean_tree(tmp_path):
    (tmp_path / "a.md").write_text("plain text, no links\n")
    completed = run_script(str(tmp_path))
    assert completed.returncode == 0
    assert completed.stdout == "link check: 1 markdown file(s) clean\n"


def test_script_exit_one_with_line_per_broken_link(tmp_path):
    md = tmp_path / "bad.md"
    md.write_text("[x](gone.md)\n[y](also/gone.md)\n")
    completed = run_script(str(md))
    assert completed.returncode == 1
    assert f"{md}: broken link -> gone.md" in completed.stdout
    assert f"{md}: broken link -> also/gone.md" in completed.stdout
    assert completed.stderr.strip() == "2 broken link(s)"


def test_script_usage_error_exits_two():
    completed = run_script()
    assert completed.returncode == 2
    assert "usage: check_links.py" in completed.stderr


def test_legacy_main_matches_script_exit_codes(tmp_path, capsys):
    md = tmp_path / "bad.md"
    md.write_text("[x](gone.md)\n")
    assert legacy_main([str(md)]) == 1
    assert legacy_main([]) == 2
    (tmp_path / "ok.md").write_text("fine\n")
    assert legacy_main([str(tmp_path / "ok.md")]) == 0


def test_repo_readme_and_docs_are_clean():
    completed = run_script("README.md", "docs")
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert completed.stdout == "link check: 2 markdown file(s) clean\n"
