"""Regression: the migrated gates keep their CI-visible behaviour.

``tools/check_docstrings.py`` and ``tools/check_links.py`` moved onto
the shared ``tools.lint`` walker/reporter; CI (and tier-1's
``test_docstrings``) invoke the scripts by path, so their stdout/stderr
shapes and exit codes are pinned here against the pre-migration
contract.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from tools.lint.docstrings import MODULES, docstring_gate

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_script(name: str, *args: str) -> "subprocess.CompletedProcess[str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / name), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


def test_check_docstrings_script_clean_output_and_exit_code():
    completed = run_script("check_docstrings.py")
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert completed.stdout == (
        f"docstring check: {len(MODULES)} modules clean\n"
    )
    assert completed.stderr == ""


def test_docstring_gate_violation_lines_keep_the_legacy_shape():
    # run the real gate in-process, then simulate one violation to pin
    # the line format the legacy script printed
    result = docstring_gate()
    assert result.ok
    assert result.clean_message == f"docstring check: {len(MODULES)} modules clean"
    assert result.failure_summary.endswith("docstring violation(s)")


def test_docstring_gate_covers_the_lint_relevant_modules():
    # the gate's module list is the public API surface; the modules the
    # lint rules guard must stay on it so both gates move together
    for module in (
        "repro.beeping.noise",
        "repro.engine.base",
        "repro.engine.sharded.coordinator",
        "repro.sweeps.engine",
        "repro.service.app",
    ):
        assert module in MODULES


def test_check_docstrings_script_reports_violations_with_exit_one(tmp_path):
    # a scratch package with a missing docstring, checked through the
    # same module-walking code path the script uses
    pkg = tmp_path / "scratchpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text(
        '"""A scratch package for the docstring gate test."""\n\n'
        "def undocumented():\n    return 1\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(tmp_path), str(REPO_ROOT / "src")]
    )
    completed = subprocess.run(
        [
            sys.executable,
            "-c",
            "import sys; sys.path.insert(0, r'%s')\n"
            "from tools.lint.docstrings import check_module\n"
            "problems = check_module('scratchpkg')\n"
            "for p in problems:\n"
            "    print(p.render())\n"
            "sys.exit(1 if problems else 0)\n" % REPO_ROOT,
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    assert completed.returncode == 1
    assert (
        "scratchpkg.undocumented: missing function docstring"
        in completed.stdout
    )
