"""The repo-wide gates: zero unsuppressed findings, and violations fail.

This is the acceptance contract of the lint PR made executable:

* ``src/`` lints clean (in-process, fast) — every determinism contract
  the rules codify holds across the entire codebase;
* ``python -m tools.lint --all`` exits 0 — the exact command CI runs;
* a deliberately-introduced unseeded ``np.random`` call inside an
  ``src/repro/engine/`` tree fails the same CLI with a ``path:line:
  RNG-001`` diagnostic and exit code 2 — so the gate demonstrably
  *would* catch the regression CI exists to prevent.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from tools.lint.cli import lint_gate

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*args: str) -> "subprocess.CompletedProcess[str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "tools.lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


def test_src_tree_has_zero_unsuppressed_findings():
    result = lint_gate()
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"repro-lint found violations in src/:\n{rendered}"


def test_cli_all_gates_exit_zero_on_the_repo():
    completed = run_cli("--all")
    assert completed.returncode == 0, (
        f"python -m tools.lint --all failed:\n"
        f"{completed.stdout}{completed.stderr}"
    )
    assert "repro-lint:" in completed.stdout
    assert "docstring check:" in completed.stdout
    assert "link check:" in completed.stdout


def test_seeded_engine_violation_fails_with_rng001_diagnostic(tmp_path):
    bad = tmp_path / "src" / "repro" / "engine" / "regression.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import numpy as np\n\n"
        "def draw():\n"
        "    return np.random.rand(8)\n"
    )
    completed = run_cli("--root", str(tmp_path), str(tmp_path))
    assert completed.returncode == 2
    assert (
        "src/repro/engine/regression.py:4: RNG-001" in completed.stdout
    )


def test_native_tree_is_in_determinism_scope(tmp_path):
    # The compiled tier's Python half must stay under the same RNG/DET
    # contracts as every other kernel module.
    bad = tmp_path / "src" / "repro" / "engine" / "native" / "regression.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import numpy as np\n\n"
        "def draw(flags):\n"
        "    order = [f for f in set(flags)]\n"
        "    return np.random.rand(8), order\n"
    )
    completed = run_cli("--root", str(tmp_path), str(tmp_path))
    assert completed.returncode == 2
    assert "src/repro/engine/native/regression.py:5: RNG-001" in completed.stdout
    assert "DET-001" in completed.stdout


def test_docstring_gate_covers_native_modules():
    from tools.lint.docstrings import MODULES

    for name in (
        "repro.engine.native",
        "repro.engine.native.build",
        "repro.engine.native.backend",
    ):
        assert name in MODULES


def test_cli_list_names_every_rule():
    completed = run_cli("--list")
    assert completed.returncode == 0
    for rule_id in (
        "RNG-001",
        "RNG-002",
        "DET-001",
        "SPAWN-001",
        "WINDOW-001",
        "LOCK-001",
    ):
        assert rule_id in completed.stdout


def test_cli_report_artifact_written_on_failure(tmp_path):
    bad = tmp_path / "src" / "repro" / "engine" / "regression.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    report = tmp_path / "lint-report.txt"
    completed = run_cli(
        "--root", str(tmp_path), str(tmp_path), "--report", str(report)
    )
    assert completed.returncode == 2
    assert "RNG-002" in report.read_text()
