"""Tests for the per-process resident-memory guard (repro.memguard)."""

from __future__ import annotations

import pytest

from repro.errors import MemoryBudgetError, ReproError
from repro.memguard import MemoryGuard, current_rss, peak_rss


class TestRssSampling:
    def test_current_rss_positive(self):
        # A running Python interpreter always has a multi-MB resident set.
        assert current_rss() > 1 << 20

    def test_peak_rss_at_least_current(self):
        # The high-water mark can only lag a concurrent allocation, never
        # sit below a *previously observed* current figure.
        observed = current_rss()
        assert peak_rss() >= observed * 0.5  # tolerate procfs rounding

    def test_samples_track_allocations(self):
        import numpy as np

        before = current_rss()
        block = np.ones(64 << 20, dtype=np.uint8)  # 64 MB touched
        after = current_rss()
        assert after - before > 32 << 20
        del block


class TestMemoryGuard:
    def test_no_budget_never_raises(self):
        guard = MemoryGuard(None)
        for _ in range(3):
            assert guard.check() > 0
        assert guard.budget_bytes is None
        assert guard.observed_peak > 0

    def test_generous_budget_passes(self):
        guard = MemoryGuard(1 << 40, label="test worker")
        assert guard.check("setup") > 0

    def test_tiny_budget_raises_with_context(self):
        guard = MemoryGuard(1024, label="shard worker 3")
        with pytest.raises(MemoryBudgetError, match="shard worker 3 after load"):
            guard.check("after load")

    def test_error_is_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            MemoryGuard(1).check()

    def test_error_message_mentions_budget(self):
        with pytest.raises(MemoryBudgetError, match="exceeds the 0.0 MB budget"):
            MemoryGuard(1).check()

    def test_observed_peak_tracks_maximum(self):
        guard = MemoryGuard(None)
        first = guard.check()
        second = guard.check()
        assert guard.observed_peak >= max(first, second)

    @pytest.mark.parametrize("budget", [0, -1, -(1 << 30)])
    def test_nonpositive_budget_rejected(self, budget):
        with pytest.raises(ValueError):
            MemoryGuard(budget)
