"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import SimulationParameters
from repro.graphs import (
    Topology,
    complete_graph,
    gnp_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)


@pytest.fixture
def path6() -> Topology:
    """A 6-node path (Δ = 2, diameter 5)."""
    return Topology(path_graph(6))


@pytest.fixture
def star8() -> Topology:
    """An 8-node star (Δ = 7)."""
    return Topology(star_graph(8))


@pytest.fixture
def k5() -> Topology:
    """The complete graph on 5 nodes."""
    return Topology(complete_graph(5))


@pytest.fixture
def regular12() -> Topology:
    """A 12-node 3-regular graph."""
    return Topology(random_regular_graph(12, 3, seed=7))


@pytest.fixture
def sparse20() -> Topology:
    """A sparse 20-node G(n, p) graph."""
    return Topology(gnp_graph(20, 0.15, seed=3))


@pytest.fixture
def small_params() -> SimulationParameters:
    """Compact noiseless parameters for fast simulation tests."""
    return SimulationParameters(message_bits=6, max_degree=3, eps=0.0, c=3)


@pytest.fixture
def noisy_params() -> SimulationParameters:
    """Compact noisy parameters (ε = 0.1) for simulation tests."""
    return SimulationParameters(message_bits=6, max_degree=3, eps=0.1, c=5)
