"""Cross-process determinism matrix for the scenario layer.

Every noise model × six zoo families × both CONGEST runtimes must be
byte-identical across two *fresh* interpreter processes: the digest
below covers the raw flip streams, the dynamic-topology epoch masks, and
full algorithm-workload outcomes.  Any hidden dependence on hash
randomisation, set/dict iteration order, or process-local state breaks
the equality — the strongest form of the seeded-determinism contract the
sweep cache and the sharded workers both rely on.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

#: The matrix script, executed verbatim in fresh subprocesses.  It prints
#: one line per (family, probe) plus a final combined digest.
MATRIX_SCRIPT = r"""
import hashlib

from repro.beeping.noise import DynamicTopology, make_noise_model
from repro.graphs import Topology
from repro.graphs.generators import build_family_graph
from repro.sweeps.workloads import run_workload

FAMILIES = ("cycle", "path", "expander", "torus", "hypercube", "powerlaw")
MODELS = ("bernoulli", "adversarial", "zone:0.25")
RUNTIMES = ("vectorized", "reference")
N = 16

combined = hashlib.sha256()


def emit(label, payload):
    digest = hashlib.sha256(payload).hexdigest()
    combined.update(digest.encode())
    print(f"{label} {digest}")


for family in FAMILIES:
    topology = Topology(build_family_graph(family, N, seed=3))
    edges = repr(sorted(map(tuple, map(sorted, topology.graph.edges))))
    emit(f"{family}/graph", edges.encode())
    for model in MODELS:
        channel = make_noise_model(model, 0.05, 11, N)
        # straddles the 4096-round Philox window boundary
        emit(f"{family}/{model}", channel.flip_block(4090, 12, N).tobytes())
    dynamic = DynamicTopology(
        topology, period=5, churn=0.3, edge_failure=0.1, seed=7
    )
    masks = [
        sorted(map(tuple, map(sorted, dynamic.topology_at(e * 5).graph.edges)))
        for e in range(4)
    ]
    emit(f"{family}/churn", repr(masks).encode())
    for runtime in RUNTIMES:
        outcome = run_workload("mis", topology, seed=5, runtime=runtime)
        emit(f"{family}/mis/{runtime}", repr(outcome).encode())

print(f"combined {combined.hexdigest()}")
"""


def _run_matrix() -> str:
    repo = Path(__file__).resolve().parents[2]
    env = dict(os.environ, PYTHONPATH=str(repo / "src"))
    # Force fresh, differently-salted interpreters: equal output then
    # proves the digests don't lean on Python's hash randomisation.
    env.pop("PYTHONHASHSEED", None)
    result = subprocess.run(
        [sys.executable, "-c", MATRIX_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout


def test_matrix_byte_identical_across_fresh_processes():
    first = _run_matrix()
    second = _run_matrix()
    assert first == second
    lines = first.strip().splitlines()
    # 6 families x (graph + 3 models + churn + 2 runtimes) + combined
    assert len(lines) == 6 * 7 + 1
    assert lines[-1].startswith("combined ")
    assert len(lines[-1].split()[1]) == 64
