"""End-to-end integration: full applications over the noisy beeping stack.

These tests exercise the complete Theorem 21 pipeline — a distributed
algorithm, the Corollary 12 wrapper where applicable, Algorithm 1's two
code phases, the beeping substrate with Bernoulli noise, and the Section 4
decoders — and check the *application-level* outputs.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    check_matching,
    check_mis,
    make_matching_algorithms,
    make_mis_algorithms,
)
from repro.core import BeepSimulator, SimulationParameters
from repro.graphs import (
    Topology,
    cycle_graph,
    grid_graph,
    random_regular_graph,
)
from repro.graphs.hard_instances import matching_hard_instance


class TestMatchingOverBeeps:
    """Theorem 21: maximal matching in the noisy beeping model."""

    @pytest.mark.parametrize("eps", [0.0, 0.1])
    def test_regular_graph(self, eps):
        topology = Topology(random_regular_graph(12, 3, seed=2))
        ids = list(range(12))
        algorithms, budget = make_matching_algorithms(
            topology, ids, value_exponent=3
        )
        params = SimulationParameters(
            message_bits=budget, max_degree=3, eps=eps, c=5 if eps else 3
        )
        result = BeepSimulator(
            topology, params=params, seed=11
        ).run_broadcast_congest(algorithms, max_rounds=80)
        assert result.finished
        assert result.stats.failed_rounds == 0
        ok, reason = check_matching(topology, ids, result.outputs)
        assert ok, reason

    def test_grid_network(self):
        topology = Topology(grid_graph(3, 4))
        ids = list(range(12))
        algorithms, budget = make_matching_algorithms(
            topology, ids, value_exponent=3
        )
        params = SimulationParameters(
            message_bits=budget, max_degree=4, eps=0.05, c=4
        )
        result = BeepSimulator(
            topology, params=params, seed=3
        ).run_broadcast_congest(algorithms, max_rounds=80)
        ok, reason = check_matching(topology, ids, result.outputs)
        assert ok, reason

    def test_hard_instance_with_huge_ids(self):
        graph, ids_map = matching_hard_instance(2, 16, seed=5)
        topology = Topology(graph)
        ids = [ids_map[v] for v in range(4)]
        algorithms, budget = make_matching_algorithms(
            topology, ids, value_exponent=3
        )
        params = SimulationParameters(
            message_bits=budget, max_degree=2, eps=0.05, c=4
        )
        result = BeepSimulator(
            topology, params=params, seed=7, ids=ids
        ).run_broadcast_congest(algorithms, max_rounds=60)
        ok, reason = check_matching(topology, ids, result.outputs)
        assert ok, reason


class TestMISOverBeeps:
    def test_cycle(self):
        topology = Topology(cycle_graph(9))
        algorithms, budget = make_mis_algorithms(topology)
        params = SimulationParameters(
            message_bits=budget, max_degree=2, eps=0.05, c=4
        )
        result = BeepSimulator(
            topology, params=params, seed=2
        ).run_broadcast_congest(algorithms, max_rounds=90)
        assert result.finished
        ok, reason = check_mis(topology, result.outputs)
        assert ok, reason

    def test_regular_noisy(self):
        topology = Topology(random_regular_graph(10, 3, seed=4))
        algorithms, budget = make_mis_algorithms(topology)
        params = SimulationParameters(
            message_bits=budget, max_degree=3, eps=0.1, c=5
        )
        result = BeepSimulator(
            topology, params=params, seed=2
        ).run_broadcast_congest(algorithms, max_rounds=90)
        assert result.finished
        ok, reason = check_mis(topology, result.outputs)
        assert ok, reason


class TestOverheadClaims:
    def test_measured_overhead_exceeds_corollary16_bound(self):
        """Consistency between upper and lower bounds: the measured
        per-round cost sits above the Corollary 16 floor."""
        from repro.lower_bounds import simulation_overhead_bounds

        topology = Topology(random_regular_graph(12, 3, seed=2))
        params = SimulationParameters.for_network(12, 3, eps=0.1, gamma=1)
        bc_floor, _ = simulation_overhead_bounds(3, 12)
        assert params.overhead >= bc_floor

    def test_noise_costs_only_constant_factor(self):
        """The paper's headline: noise does not change the asymptotics —
        in our implementation it changes only the constant c."""
        noiseless = SimulationParameters.for_network(64, 4, eps=0.0, gamma=1)
        noisy = SimulationParameters.for_network(64, 4, eps=0.1, gamma=1)
        ratio = noisy.overhead / noiseless.overhead
        assert ratio == pytest.approx((noisy.c / noiseless.c) ** 3)
        assert ratio < 10
