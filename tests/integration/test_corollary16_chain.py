"""Integration: the full Corollary 16 chain on one instance.

The paper's overhead lower bounds arise by composing three facts on the
same problem:

1. B-bit Local Broadcast needs Ω(Δ²B) beeping rounds (Lemma 14);
2. it is solvable in Δ⌈B/payload⌉ Broadcast CONGEST rounds (Lemma 15);
3. therefore any Broadcast CONGEST→beeps simulation pays Ω(Δ log n) per
   round — and our simulation achieves O(Δ log n) (Theorem 11).

This test actually *runs* the chain: the Lemma 15 algorithm executes
through the Algorithm 1 simulation on a hard instance, its output is
verified, and its measured beeping cost is sandwiched between the Lemma 14
floor and the Theorem 11 budget.
"""

from __future__ import annotations

import math

import pytest

from repro.congest.model import required_bits
from repro.core import BeepSimulator, SimulationParameters
from repro.core.local_broadcast import LocalBroadcastViaBroadcastCongest
from repro.graphs import Topology, local_broadcast_hard_instance
from repro.lower_bounds import local_broadcast_round_bound


@pytest.mark.parametrize("delta,message_bits", [(2, 4), (3, 6)])
def test_local_broadcast_over_beeps_respects_both_bounds(delta, message_bits):
    instance = local_broadcast_hard_instance(
        delta, 2 * delta, message_bits, seed=4
    )
    topology = Topology(instance.graph)
    n = topology.num_nodes
    id_bits = required_bits(max(instance.ids.values()) + 1)
    budget_bits = 2 * id_bits + message_bits

    algorithms = [
        LocalBroadcastViaBroadcastCongest(
            node_id=instance.ids[v],
            messages={
                instance.ids[u]: instance.messages[(v, u)]
                for u in instance.graph.neighbors(v)
            },
            message_bits=message_bits,
            id_bits=id_bits,
            budget_bits=budget_bits,
        )
        for v in range(n)
    ]
    params = SimulationParameters(
        message_bits=budget_bits, max_degree=delta, eps=0.05, c=4
    )
    simulator = BeepSimulator(
        topology, params=params, seed=9, ids=[instance.ids[v] for v in range(n)]
    )
    bc_rounds = delta * algorithms[0].chunks
    result = simulator.run_broadcast_congest(algorithms, max_rounds=bc_rounds + 1)

    # Lemma 15 behaviour survives the simulation: outputs verify.
    assert result.finished
    assert result.stats.failed_rounds == 0
    for v in range(n):
        assert result.outputs[v] == instance.expected_output(v)

    # Lemma 14 floor: the run cost at least Delta^2 B / 2 beeping rounds.
    floor = local_broadcast_round_bound(delta, message_bits)
    assert result.stats.beep_rounds >= floor

    # Theorem 11 ceiling: cost = (BC rounds) x (per-round overhead), with
    # per-round overhead exactly the parameter engine's O(Delta log n) value.
    assert result.stats.beep_rounds == result.stats.simulated_rounds * params.overhead
    assert result.stats.simulated_rounds <= bc_rounds


def test_strict_constants_refuse_to_materialise():
    """Paper-strict constants are analysis-only; building their codes is
    caught with a clear error rather than an out-of-memory crash."""
    from repro.errors import ConfigurationError

    params = SimulationParameters.for_network(64, 8, eps=0.1, strict=True)
    assert params.beep_code_length > 10**9  # the absurd strict length
    with pytest.raises(ConfigurationError, match="practical presets"):
        params.beep_code(seed=0)


def test_overhead_between_floor_and_paper_shape():
    """Parameter-engine overhead sits above the Corollary 16 floor and is
    exactly 2c^3 (Delta+1) B — the Theorem 11 shape."""
    from repro.lower_bounds import simulation_overhead_bounds

    for n, delta in [(32, 4), (256, 8), (1024, 16)]:
        params = SimulationParameters.for_network(n, delta, eps=0.1, gamma=1)
        floor, _ = simulation_overhead_bounds(delta, n)
        assert params.overhead >= floor
        expected = 2 * params.c**3 * (delta + 1) * params.message_bits
        assert params.overhead == expected
        assert params.overhead / (delta * math.log2(n)) < 10**4
