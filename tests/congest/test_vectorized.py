"""Tests for the array-native Broadcast CONGEST engine and its seams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import (
    BroadcastCongestAlgorithm,
    BroadcastCongestNetwork,
    KNOWN_RUNTIMES,
    MessageCodec,
    ObjectAlgorithmsAdapter,
    VectorizedBroadcastAlgorithm,
    VectorizedBroadcastNetwork,
    WordCodec,
    get_default_runtime,
    resolve_runtime,
    set_default_runtime,
)
from repro.congest.vectorized import check_plane, plane_words
from repro.errors import ConfigurationError, MessageSizeError
from repro.graphs import Topology, path_graph, star_graph


class _BroadcastOnce(BroadcastCongestAlgorithm):
    """Broadcasts its ID once, records what it hears, finishes."""

    def __init__(self):
        self.inbox: list[int] = []
        self._done = False

    def broadcast(self, round_index):
        return self.ctx.node_id if round_index == 0 else None

    def receive(self, round_index, messages):
        self.inbox.extend(messages)
        self._done = True

    @property
    def finished(self):
        return self._done

    def output(self):
        return sorted(self.inbox)


class _AllBeep(VectorizedBroadcastAlgorithm):
    """Minimal columnar algorithm: every node broadcasts its ID once."""

    def setup(self, net):
        super().setup(net)
        self._round = -1
        self._heard: list[list[int]] = [[] for _ in range(net.num_nodes)]

    def broadcast_step(self, round_index):
        self._round = round_index
        n = self.net.num_nodes
        active = np.full(n, round_index == 0)
        return self.net.ids.copy(), active

    def receive_step(self, round_index, inbox_indptr, inbox):
        for node in range(self.net.num_nodes):
            lo, hi = int(inbox_indptr[node]), int(inbox_indptr[node + 1])
            self._heard[node].extend(int(row[0]) for row in inbox[lo:hi])

    def finished_mask(self):
        return np.full(self.net.num_nodes, self._round >= 0)

    def outputs(self):
        return [sorted(heard) for heard in self._heard]


class TestRuntimeRegistry:
    def test_known_runtimes(self):
        assert set(KNOWN_RUNTIMES) == {"vectorized", "reference"}

    def test_resolve_none_gives_default(self):
        assert resolve_runtime(None) == get_default_runtime()

    def test_unknown_runtime_one_line_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_runtime("bogus")
        message = str(excinfo.value)
        assert "unknown runtime 'bogus'" in message
        assert "vectorized" in message and "reference" in message
        assert "\n" not in message

    def test_set_default_round_trips(self):
        previous = get_default_runtime()
        try:
            assert set_default_runtime("reference") == "reference"
            assert resolve_runtime(None) == "reference"
        finally:
            set_default_runtime(previous)


class TestWordCodec:
    def test_matches_message_codec_layout(self):
        fields = [("tag", 2), ("hi", 7), ("lo", 7), ("value", 20)]
        scalar = MessageCodec(fields)
        worded = WordCodec(fields)
        plane = worded.pack(3, tag=1, hi=[5, 6, 7], lo=2, value=[9, 0, 31337])
        for row, (hi, value) in enumerate(((5, 9), (6, 0), (7, 31337))):
            assert int(plane[row, 0]) == scalar.pack(
                tag=1, hi=hi, lo=2, value=value
            )
        assert list(worded.unpack(plane, "hi")) == [5, 6, 7]
        assert list(worded.unpack(plane, "value")) == [9, 0, 31337]

    def test_wide_field_round_trip(self):
        codec = WordCodec([("tag", 2), ("value", 150)])
        value = np.array(
            [[0x0123456789ABCDEF, 0xFEDCBA9876543210, 0x3F]], dtype=np.uint64
        )
        plane = codec.pack(1, tag=3, value=value)
        assert plane.shape == (1, codec.words) == (1, 3)
        assert np.array_equal(codec.unpack(plane, "value"), value)
        assert list(codec.unpack(plane, "tag")) == [3]

    def test_duplicate_and_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            WordCodec([("a", 2), ("a", 3)])
        codec = WordCodec([("a", 2), ("b", 3)])
        with pytest.raises(ConfigurationError):
            codec.pack(1, a=1)

    def test_unknown_field_rejected(self):
        codec = WordCodec([("a", 2), ("b", 3)])
        with pytest.raises(ConfigurationError):
            codec.pack(1, a=1, b=1, bogus=3)

    def test_overwide_value_rejected_like_message_codec(self):
        # MessageCodec raises; WordCodec must too, never corrupt the
        # neighbouring field.
        codec = WordCodec([("tag", 2), ("id", 4)])
        with pytest.raises(MessageSizeError):
            codec.pack(1, tag=5, id=2)
        with pytest.raises(MessageSizeError):
            codec.pack(2, tag=1, id=np.array([3, 16], dtype=np.uint64))

    def test_overwide_wide_field_rejected(self):
        codec = WordCodec([("tag", 2), ("value", 70)])
        bad = np.array([[0, 1 << 7]], dtype=np.uint64)  # needs 71 bits
        with pytest.raises(MessageSizeError):
            codec.pack(1, tag=1, value=bad)
        ok = np.array([[0, (1 << 6) - 1]], dtype=np.uint64)
        assert np.array_equal(codec.unpack(codec.pack(1, tag=1, value=ok), "value"), ok)

    def test_narrow_value_for_wide_field_accepted(self):
        codec = WordCodec([("tag", 2), ("value", 90)])
        plane = codec.pack(1, tag=1, value=np.array([1 << 40], dtype=np.uint64))
        assert int(codec.unpack(plane, "value")[0, 0]) == 1 << 40


class TestPlane:
    def test_int64_plane_requires_small_budget(self):
        with pytest.raises(ConfigurationError):
            plane_words(np.zeros(4, dtype=np.int64), 90)

    def test_check_plane_enforces_budget(self):
        words = plane_words(np.array([0, 9], dtype=np.int64), 3)
        check_plane(words, np.array([True, False]), 3)  # inactive overflow ok
        with pytest.raises(MessageSizeError):
            check_plane(words, np.array([True, True]), 3)

    def test_negative_messages_rejected(self):
        words = plane_words(np.array([-1], dtype=np.int64), 8)
        with pytest.raises(MessageSizeError):
            check_plane(words, np.array([True]), 8)


class TestVectorizedDriver:
    def test_columnar_algorithm_matches_reference_contract(self):
        topology = Topology(star_graph(4))
        vectorized = VectorizedBroadcastNetwork(topology).run(
            _AllBeep(), max_rounds=3
        )
        reference = BroadcastCongestNetwork(topology).run(
            [_BroadcastOnce() for _ in range(4)], max_rounds=3
        )
        assert vectorized.outputs == reference.outputs
        assert vectorized.rounds_used == reference.rounds_used
        assert vectorized.messages_sent == reference.messages_sent
        assert vectorized.finished and reference.finished

    def test_adapter_is_bit_identical_to_reference(self):
        topology = Topology(path_graph(5))
        reference = BroadcastCongestNetwork(topology, message_bits=8).run(
            [_BroadcastOnce() for _ in range(5)], max_rounds=4
        )
        adapted = VectorizedBroadcastNetwork(topology, message_bits=8).run(
            ObjectAlgorithmsAdapter([_BroadcastOnce() for _ in range(5)]),
            max_rounds=4,
        )
        assert adapted.outputs == reference.outputs
        assert adapted.rounds_used == reference.rounds_used
        assert adapted.messages_sent == reference.messages_sent

    def test_adapter_checks_message_budget(self):
        class TooBig(_BroadcastOnce):
            def broadcast(self, round_index):
                return 1 << 60

        topology = Topology(path_graph(2))
        with pytest.raises(MessageSizeError):
            VectorizedBroadcastNetwork(topology, message_bits=8).run(
                ObjectAlgorithmsAdapter([TooBig(), TooBig()]), max_rounds=1
            )

    def test_adapter_rejects_wrong_count(self):
        topology = Topology(path_graph(3))
        with pytest.raises(ConfigurationError):
            VectorizedBroadcastNetwork(topology).run(
                ObjectAlgorithmsAdapter([_BroadcastOnce()]), max_rounds=1
            )

    def test_unfinished_run_reports(self):
        class Silent(_AllBeep):
            def finished_mask(self):
                return np.zeros(self.net.num_nodes, dtype=bool)

        topology = Topology(path_graph(3))
        result = VectorizedBroadcastNetwork(topology).run(Silent(), max_rounds=4)
        assert not result.finished
        assert result.rounds_used == 4

    def test_custom_ids_on_the_plane(self):
        topology = Topology(path_graph(2))
        result = VectorizedBroadcastNetwork(
            topology, ids=[10, 99], message_bits=8
        ).run(_AllBeep(), max_rounds=2)
        assert result.outputs == [[99], [10]]


class TestVectorContext:
    def test_id_and_slot_lookups_handle_garbage(self):
        topology = Topology(path_graph(3))
        net = VectorizedBroadcastNetwork(topology, ids=[5, 9, 7]).vector_context()
        index = net.index_of_ids(np.array([9, 5, 1234, 7]))
        assert list(index) == [1, 0, -1, 2]
        # (dst=0, src=1) is an edge; (dst=0, src=2) is not; -1 misses.
        slot = net.slot_of(np.array([0, 0, 1]), np.array([1, 2, -1]))
        assert slot[0] >= 0 and slot[1] == -1 and slot[2] == -1
        assert net.edge_src[slot[0]] == 1 and net.edge_dst[slot[0]] == 0

    def test_node_streams_match_node_rng(self):
        topology = Topology(path_graph(3))
        net = VectorizedBroadcastNetwork(topology, seed=11).vector_context()
        from repro.rng import random_bits

        drawn = net.node_streams().draw(np.array([0, 1, 2]), 40)
        expected = [random_bits(net.node_rng(v), 40) for v in range(3)]
        assert [int(row[0]) for row in drawn] == expected
