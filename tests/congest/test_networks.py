"""Tests for the native Broadcast CONGEST and CONGEST engines."""

from __future__ import annotations

import pytest

from repro.congest import (
    BroadcastCongestAlgorithm,
    BroadcastCongestNetwork,
    CongestAlgorithm,
    CongestNetwork,
)
from repro.errors import (
    ConfigurationError,
    MessageSizeError,
    ProtocolViolationError,
)
from repro.graphs import Topology, path_graph, star_graph


class _BroadcastOnce(BroadcastCongestAlgorithm):
    """Broadcasts its ID once, records what it hears, finishes."""

    def __init__(self):
        self.inbox: list[int] = []
        self._done = False

    def broadcast(self, round_index):
        return self.ctx.node_id if round_index == 0 else None

    def receive(self, round_index, messages):
        self.inbox.extend(messages)
        self._done = True

    @property
    def finished(self):
        return self._done

    def output(self):
        return sorted(self.inbox)


class _SilentForever(BroadcastCongestAlgorithm):
    def broadcast(self, round_index):
        return None

    def receive(self, round_index, messages):
        pass


class _TooBig(BroadcastCongestAlgorithm):
    def broadcast(self, round_index):
        return 1 << 60

    def receive(self, round_index, messages):
        pass


class TestBroadcastCongest:
    def test_neighbors_receive_unattributed_multiset(self):
        t = Topology(star_graph(4))
        algorithms = [_BroadcastOnce() for _ in range(4)]
        result = BroadcastCongestNetwork(t).run(algorithms, max_rounds=3)
        assert result.finished
        assert result.outputs[0] == [1, 2, 3]  # hub hears all leaves
        assert result.outputs[1] == [0]

    def test_rounds_counted_until_finish(self):
        t = Topology(path_graph(3))
        result = BroadcastCongestNetwork(t).run(
            [_BroadcastOnce() for _ in range(3)], max_rounds=10
        )
        assert result.rounds_used == 1

    def test_unfinished_run_reports(self):
        t = Topology(path_graph(3))
        result = BroadcastCongestNetwork(t).run(
            [_SilentForever() for _ in range(3)], max_rounds=4
        )
        assert not result.finished
        assert result.rounds_used == 4

    def test_message_size_enforced(self):
        t = Topology(path_graph(2))
        with pytest.raises(MessageSizeError):
            BroadcastCongestNetwork(t, message_bits=8).run(
                [_TooBig(), _TooBig()], max_rounds=1
            )

    def test_custom_ids_delivered(self):
        t = Topology(path_graph(2))
        network = BroadcastCongestNetwork(t, ids=[10, 99], message_bits=8)
        algorithms = [_BroadcastOnce(), _BroadcastOnce()]
        result = network.run(algorithms, max_rounds=2)
        assert result.outputs == [[99], [10]]

    def test_duplicate_ids_rejected(self):
        t = Topology(path_graph(2))
        with pytest.raises(ConfigurationError):
            BroadcastCongestNetwork(t, ids=[5, 5])

    def test_wrong_algorithm_count_rejected(self):
        t = Topology(path_graph(3))
        with pytest.raises(ConfigurationError):
            BroadcastCongestNetwork(t).run([_BroadcastOnce()], max_rounds=1)

    def test_messages_sent_counted(self):
        t = Topology(path_graph(3))
        result = BroadcastCongestNetwork(t).run(
            [_BroadcastOnce() for _ in range(3)], max_rounds=2
        )
        assert result.messages_sent == 3

    def test_context_fields(self):
        t = Topology(star_graph(4))
        captured = {}

        class Probe(_SilentForever):
            def setup(self, ctx):
                super().setup(ctx)
                captured[ctx.index] = ctx

        BroadcastCongestNetwork(t).run([Probe() for _ in range(4)], max_rounds=1)
        assert captured[0].degree == 3
        assert captured[0].max_degree == 3
        assert captured[0].num_nodes == 4
        assert captured[0].neighbor_ids is None  # BC: must be learned


class _SendToAll(CongestAlgorithm):
    """Sends a per-destination value; collects one round of input."""

    def __init__(self):
        self.inbox = {}
        self._done = False

    def send(self, round_index):
        if round_index > 0:
            return {}
        return {u: (self.ctx.node_id * 10 + u) % 64 for u in self.ctx.neighbor_ids}

    def receive(self, round_index, messages):
        self.inbox.update(messages)
        self._done = True

    @property
    def finished(self):
        return self._done

    def output(self):
        return dict(self.inbox)


class _SendsToStranger(CongestAlgorithm):
    def send(self, round_index):
        return {999: 1}

    def receive(self, round_index, messages):
        pass


class TestCongest:
    def test_point_to_point_attribution(self):
        t = Topology(star_graph(4))
        result = CongestNetwork(t, message_bits=8).run(
            [_SendToAll() for _ in range(4)], max_rounds=2
        )
        # hub (0) hears from each leaf u: value u*10+0
        assert result.outputs[0] == {1: 10, 2: 20, 3: 30}
        # leaf 2 hears hub's value 0*10+2
        assert result.outputs[2] == {0: 2}

    def test_neighbor_ids_in_context(self):
        t = Topology(path_graph(3))
        captured = {}

        class Probe(_SendToAll):
            def setup(self, ctx):
                super().setup(ctx)
                captured[ctx.index] = ctx.neighbor_ids

        CongestNetwork(t, message_bits=8).run(
            [Probe() for _ in range(3)], max_rounds=2
        )
        assert captured[1] == [0, 2]

    def test_non_neighbor_send_rejected(self):
        t = Topology(path_graph(2))
        with pytest.raises(ProtocolViolationError):
            CongestNetwork(t, message_bits=8).run(
                [_SendsToStranger(), _SendsToStranger()], max_rounds=1
            )

    def test_message_size_enforced(self):
        t = Topology(path_graph(2))

        class Big(CongestAlgorithm):
            def send(self, round_index):
                return {u: 1 << 40 for u in self.ctx.neighbor_ids}

            def receive(self, round_index, messages):
                pass

        with pytest.raises(MessageSizeError):
            CongestNetwork(t, message_bits=8).run([Big(), Big()], max_rounds=1)
