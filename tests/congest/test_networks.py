"""Tests for the native Broadcast CONGEST and CONGEST engines."""

from __future__ import annotations

import pytest

from repro.congest import (
    BroadcastCongestAlgorithm,
    BroadcastCongestNetwork,
    CongestAlgorithm,
    CongestNetwork,
)
from repro.errors import (
    ConfigurationError,
    MessageSizeError,
    ProtocolViolationError,
)
from repro.graphs import Topology, path_graph, star_graph


class _BroadcastOnce(BroadcastCongestAlgorithm):
    """Broadcasts its ID once, records what it hears, finishes."""

    def __init__(self):
        self.inbox: list[int] = []
        self._done = False

    def broadcast(self, round_index):
        return self.ctx.node_id if round_index == 0 else None

    def receive(self, round_index, messages):
        self.inbox.extend(messages)
        self._done = True

    @property
    def finished(self):
        return self._done

    def output(self):
        return sorted(self.inbox)


class _SilentForever(BroadcastCongestAlgorithm):
    def broadcast(self, round_index):
        return None

    def receive(self, round_index, messages):
        pass


class _TooBig(BroadcastCongestAlgorithm):
    def broadcast(self, round_index):
        return 1 << 60

    def receive(self, round_index, messages):
        pass


class _FinishAfterRounds(BroadcastCongestAlgorithm):
    """Broadcasts every round until a per-node deadline, then finishes.

    Tracks every engine interaction so the live-node accounting can be
    checked for behaviour-identity: once a node reports finished, the
    engine must never call ``broadcast``/``receive`` on it again, and
    silent-but-alive nodes must keep receiving.
    """

    def __init__(self, deadline: int):
        self._deadline = deadline
        self.broadcast_rounds: list[int] = []
        self.receive_rounds: list[int] = []
        self._observed = 0

    def broadcast(self, round_index):
        self.broadcast_rounds.append(round_index)
        return self.ctx.node_id

    def receive(self, round_index, messages):
        self.receive_rounds.append(round_index)
        self._observed += 1

    @property
    def finished(self):
        return self._observed >= self._deadline

    def output(self):
        return (self.broadcast_rounds, self.receive_rounds)


class _BornFinished(BroadcastCongestAlgorithm):
    """Finished before round 0 — must never be driven at all."""

    calls = 0

    def broadcast(self, round_index):
        type(self).calls += 1
        return None

    def receive(self, round_index, messages):
        type(self).calls += 1

    @property
    def finished(self):
        return True


class TestBroadcastCongest:
    def test_neighbors_receive_unattributed_multiset(self):
        t = Topology(star_graph(4))
        algorithms = [_BroadcastOnce() for _ in range(4)]
        result = BroadcastCongestNetwork(t).run(algorithms, max_rounds=3)
        assert result.finished
        assert result.outputs[0] == [1, 2, 3]  # hub hears all leaves
        assert result.outputs[1] == [0]

    def test_rounds_counted_until_finish(self):
        t = Topology(path_graph(3))
        result = BroadcastCongestNetwork(t).run(
            [_BroadcastOnce() for _ in range(3)], max_rounds=10
        )
        assert result.rounds_used == 1

    def test_unfinished_run_reports(self):
        t = Topology(path_graph(3))
        result = BroadcastCongestNetwork(t).run(
            [_SilentForever() for _ in range(3)], max_rounds=4
        )
        assert not result.finished
        assert result.rounds_used == 4

    def test_message_size_enforced(self):
        t = Topology(path_graph(2))
        with pytest.raises(MessageSizeError):
            BroadcastCongestNetwork(t, message_bits=8).run(
                [_TooBig(), _TooBig()], max_rounds=1
            )

    def test_custom_ids_delivered(self):
        t = Topology(path_graph(2))
        network = BroadcastCongestNetwork(t, ids=[10, 99], message_bits=8)
        algorithms = [_BroadcastOnce(), _BroadcastOnce()]
        result = network.run(algorithms, max_rounds=2)
        assert result.outputs == [[99], [10]]

    def test_duplicate_ids_rejected(self):
        t = Topology(path_graph(2))
        with pytest.raises(ConfigurationError):
            BroadcastCongestNetwork(t, ids=[5, 5])

    def test_wrong_algorithm_count_rejected(self):
        t = Topology(path_graph(3))
        with pytest.raises(ConfigurationError):
            BroadcastCongestNetwork(t).run([_BroadcastOnce()], max_rounds=1)

    def test_messages_sent_counted(self):
        t = Topology(path_graph(3))
        result = BroadcastCongestNetwork(t).run(
            [_BroadcastOnce() for _ in range(3)], max_rounds=2
        )
        assert result.messages_sent == 3

    def test_context_fields(self):
        t = Topology(star_graph(4))
        captured = {}

        class Probe(_SilentForever):
            def setup(self, ctx):
                super().setup(ctx)
                captured[ctx.index] = ctx

        BroadcastCongestNetwork(t).run([Probe() for _ in range(4)], max_rounds=1)
        assert captured[0].degree == 3
        assert captured[0].max_degree == 3
        assert captured[0].num_nodes == 4
        assert captured[0].neighbor_ids is None  # BC: must be learned


class TestLiveNodeAccounting:
    """The live-count round loop must stay behaviour-identical.

    Regression for the transition-tracked termination check: staggered
    finishing must stop the run at the right round, finished nodes must
    never be driven again, and born-finished nodes must be invisible.
    """

    def test_staggered_finish_drives_exactly_like_spec(self):
        t = Topology(path_graph(3))
        algorithms = [_FinishAfterRounds(d) for d in (1, 3, 2)]
        result = BroadcastCongestNetwork(t, message_bits=4).run(
            algorithms, max_rounds=10
        )
        assert result.finished
        # the slowest node needs 3 receives, so exactly 3 rounds run
        assert result.rounds_used == 3
        # node 0 finished after round 0: broadcast/receive only there
        assert algorithms[0].output() == ([0], [0])
        assert algorithms[1].output() == ([0, 1, 2], [0, 1, 2])
        assert algorithms[2].output() == ([0, 1], [0, 1])
        # messages: 3 + 2 + 1 broadcasts across the three rounds
        assert result.messages_sent == 6

    def test_born_finished_nodes_never_driven(self):
        t = Topology(path_graph(2))
        _BornFinished.calls = 0
        result = BroadcastCongestNetwork(t).run(
            [_BornFinished(), _BornFinished()], max_rounds=5
        )
        assert result.finished
        assert result.rounds_used == 0
        assert _BornFinished.calls == 0

    def test_silent_but_alive_nodes_keep_receiving(self):
        t = Topology(path_graph(3))
        silent = _SilentForever()
        result = BroadcastCongestNetwork(t).run(
            [silent, _SilentForever(), _SilentForever()], max_rounds=4
        )
        assert not result.finished
        assert result.rounds_used == 4

    def test_congest_engine_staggered_finish(self):
        class FinishAfterSends(CongestAlgorithm):
            def __init__(self, deadline):
                self._deadline = deadline
                self._observed = 0
                self.sends = 0

            def send(self, round_index):
                self.sends += 1
                return {}

            def receive(self, round_index, messages):
                self._observed += 1

            @property
            def finished(self):
                return self._observed >= self._deadline

        t = Topology(path_graph(3))
        algorithms = [FinishAfterSends(d) for d in (1, 2, 3)]
        result = CongestNetwork(t).run(algorithms, max_rounds=10)
        assert result.finished
        assert result.rounds_used == 3
        assert [a.sends for a in algorithms] == [1, 2, 3]


class _SendToAll(CongestAlgorithm):
    """Sends a per-destination value; collects one round of input."""

    def __init__(self):
        self.inbox = {}
        self._done = False

    def send(self, round_index):
        if round_index > 0:
            return {}
        return {u: (self.ctx.node_id * 10 + u) % 64 for u in self.ctx.neighbor_ids}

    def receive(self, round_index, messages):
        self.inbox.update(messages)
        self._done = True

    @property
    def finished(self):
        return self._done

    def output(self):
        return dict(self.inbox)


class _SendsToStranger(CongestAlgorithm):
    def send(self, round_index):
        return {999: 1}

    def receive(self, round_index, messages):
        pass


class TestCongest:
    def test_point_to_point_attribution(self):
        t = Topology(star_graph(4))
        result = CongestNetwork(t, message_bits=8).run(
            [_SendToAll() for _ in range(4)], max_rounds=2
        )
        # hub (0) hears from each leaf u: value u*10+0
        assert result.outputs[0] == {1: 10, 2: 20, 3: 30}
        # leaf 2 hears hub's value 0*10+2
        assert result.outputs[2] == {0: 2}

    def test_neighbor_ids_in_context(self):
        t = Topology(path_graph(3))
        captured = {}

        class Probe(_SendToAll):
            def setup(self, ctx):
                super().setup(ctx)
                captured[ctx.index] = ctx.neighbor_ids

        CongestNetwork(t, message_bits=8).run(
            [Probe() for _ in range(3)], max_rounds=2
        )
        assert captured[1] == [0, 2]

    def test_non_neighbor_send_rejected(self):
        t = Topology(path_graph(2))
        with pytest.raises(ProtocolViolationError):
            CongestNetwork(t, message_bits=8).run(
                [_SendsToStranger(), _SendsToStranger()], max_rounds=1
            )

    def test_message_size_enforced(self):
        t = Topology(path_graph(2))

        class Big(CongestAlgorithm):
            def send(self, round_index):
                return {u: 1 << 40 for u in self.ctx.neighbor_ids}

            def receive(self, round_index, messages):
                pass

        with pytest.raises(MessageSizeError):
            CongestNetwork(t, message_bits=8).run([Big(), Big()], max_rounds=1)
