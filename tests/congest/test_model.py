"""Tests for message discipline and the field codec."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.congest import MessageCodec, check_message, required_bits
from repro.errors import ConfigurationError, MessageSizeError


class TestRequiredBits:
    def test_examples(self):
        assert required_bits(1) == 1
        assert required_bits(2) == 1
        assert required_bits(3) == 2
        assert required_bits(256) == 8
        assert required_bits(257) == 9

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            required_bits(0)


class TestCheckMessage:
    def test_accepts_in_budget(self):
        check_message(255, 8)

    def test_rejects_overflow(self):
        with pytest.raises(MessageSizeError):
            check_message(256, 8)

    def test_rejects_negative(self):
        with pytest.raises(MessageSizeError):
            check_message(-1, 8)

    def test_rejects_bool_and_non_int(self):
        with pytest.raises(MessageSizeError):
            check_message(True, 8)
        with pytest.raises(MessageSizeError):
            check_message("5", 8)  # type: ignore[arg-type]


class TestMessageCodec:
    def test_pack_unpack_roundtrip(self):
        codec = MessageCodec([("tag", 2), ("node", 7), ("value", 20)])
        message = codec.pack(tag=1, node=42, value=31337)
        assert codec.unpack(message) == {"tag": 1, "node": 42, "value": 31337}

    def test_width(self):
        codec = MessageCodec([("a", 3), ("b", 5)])
        assert codec.width == 8

    def test_little_endian_layout(self):
        codec = MessageCodec([("low", 4), ("high", 4)])
        assert codec.pack(low=0xF, high=0x1) == 0x1F

    def test_field_overflow_rejected(self):
        codec = MessageCodec([("a", 3)])
        with pytest.raises(MessageSizeError):
            codec.pack(a=8)

    def test_missing_field_rejected(self):
        codec = MessageCodec([("a", 3), ("b", 2)])
        with pytest.raises(ConfigurationError):
            codec.pack(a=1)

    def test_extra_field_rejected(self):
        codec = MessageCodec([("a", 3)])
        with pytest.raises(ConfigurationError):
            codec.pack(a=1, b=2)

    def test_unpack_overflow_rejected(self):
        codec = MessageCodec([("a", 3)])
        with pytest.raises(MessageSizeError):
            codec.unpack(8)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageCodec([("a", 3), ("a", 2)])

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageCodec([("a", 0)])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageCodec([])

    @given(st.integers(0, 3), st.integers(0, 127), st.integers(0, 2**20 - 1))
    def test_roundtrip_property(self, tag, node, value):
        codec = MessageCodec([("tag", 2), ("node", 7), ("value", 20)])
        packed = codec.pack(tag=tag, node=node, value=value)
        assert 0 <= packed < 1 << codec.width
        assert codec.unpack(packed) == {"tag": tag, "node": node, "value": value}
