"""The tentpole invariant: vectorized runs are bit-identical per seed.

For every algorithm with a columnar implementation, a vectorized run
must equal the reference per-node run exactly — outputs, rounds used,
messages sent, finished — across topology-zoo families, sizes and
seeds, with default and custom node IDs, natively and over the beeping
substrate.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    make_matching_algorithms,
    run_bfs_bc,
    run_coloring_bc,
    run_leader_election_bc,
    run_matching_bc,
    run_mis_bc,
)
from repro.algorithms.vectorized_matching import VectorizedMaximalMatching
from repro.congest.model import required_bits
from repro.core.parameters import SimulationParameters
from repro.core.transpiler import BeepSimulator
from repro.graphs import Topology, build_family_graph

#: Zoo families the equivalence is property-tested across (>= 4, mixing
#: deterministic, randomised, disconnected and hub-heavy shapes).
FAMILIES = [
    ("expander", 16, {"degree": 3}),
    ("torus", 9, None),
    ("gnp", 14, None),
    ("star", 8, None),
    ("planted", 9, None),
    ("hypercube", 16, None),
]

RUNNERS = {
    "matching": run_matching_bc,
    "mis": run_mis_bc,
    "leader": run_leader_election_bc,
    "coloring": run_coloring_bc,
    "bfs": lambda topology, seed, **kwargs: run_bfs_bc(
        topology, 0, seed=seed, **kwargs
    ),
}


def results_equal(a, b) -> bool:
    return (
        a.outputs == b.outputs
        and a.rounds_used == b.rounds_used
        and a.messages_sent == b.messages_sent
        and a.finished == b.finished
    )


@pytest.mark.parametrize("family,n,params", FAMILIES)
@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_native_runs_bit_identical(family, n, params, algorithm, seed):
    topology = Topology(build_family_graph(family, n, seed=7, params=params))
    runner = RUNNERS[algorithm]
    reference = runner(topology, seed=seed, runtime="reference")
    vectorized = runner(topology, seed=seed, runtime="vectorized")
    assert results_equal(reference, vectorized), (
        f"{algorithm} on {family} diverged at seed {seed}: "
        f"{reference} vs {vectorized}"
    )


@pytest.mark.parametrize("algorithm", ["matching", "mis", "bfs", "leader"])
def test_custom_ids_bit_identical(algorithm):
    topology = Topology(build_family_graph("torus", 9, seed=0))
    ids = [7, 101, 33, 5, 66, 2, 88, 41, 19]
    runner = RUNNERS[algorithm]
    reference = runner(topology, seed=3, ids=ids, runtime="reference")
    vectorized = runner(topology, seed=3, ids=ids, runtime="vectorized")
    assert results_equal(reference, vectorized)


class TestOverBeeps:
    """The transpiler's vectorized host loop feeds the session identically."""

    def _simulators(self, topology, budget, eps):
        params = SimulationParameters(
            message_bits=budget, max_degree=topology.max_degree, eps=eps, c=4
        )
        return (
            BeepSimulator(topology, params=params, seed=9),
            BeepSimulator(topology, params=params, seed=9),
        )

    @pytest.mark.parametrize("eps", [0.0, 0.05])
    def test_object_algorithms_same_under_both_hosts(self, eps):
        topology = Topology(build_family_graph("gnp", 10, seed=2))
        algorithms, budget = make_matching_algorithms(topology, value_exponent=3)
        reference_sim, vectorized_sim = self._simulators(topology, budget, eps)
        reference = reference_sim.run_broadcast_congest(
            algorithms, max_rounds=40, runtime="reference"
        )
        again, _ = make_matching_algorithms(topology, value_exponent=3)
        vectorized = vectorized_sim.run_broadcast_congest(
            again, max_rounds=40, runtime="vectorized"
        )
        assert reference.outputs == vectorized.outputs
        assert reference.finished == vectorized.finished
        assert reference.stats.beep_rounds == vectorized.stats.beep_rounds
        assert reference.stats.failed_rounds == vectorized.stats.failed_rounds

    @pytest.mark.parametrize("eps", [0.0, 0.05])
    def test_columnar_matching_over_beeps_equals_objects(self, eps):
        topology = Topology(build_family_graph("gnp", 10, seed=2))
        n = topology.num_nodes
        algorithms, budget = make_matching_algorithms(topology, value_exponent=3)
        reference_sim, vectorized_sim = self._simulators(topology, budget, eps)
        reference = reference_sim.run_broadcast_congest(
            algorithms, max_rounds=40, runtime="reference"
        )
        columnar = VectorizedMaximalMatching(
            id_bits=required_bits(n),
            value_bits=max(1, 3 * required_bits(max(2, n))),
        )
        vectorized = vectorized_sim.run_broadcast_congest(columnar, max_rounds=40)
        assert reference.outputs == vectorized.outputs
        assert reference.finished == vectorized.finished
        assert reference.stats.beep_rounds == vectorized.stats.beep_rounds
