"""Tests for the companion Broadcast CONGEST algorithms (MIS, colouring,
BFS, leader election) and their checkers."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    check_bfs_tree,
    check_coloring,
    check_mis,
    run_bfs_bc,
    run_coloring_bc,
    run_leader_election_bc,
    run_mis_bc,
)
from repro.graphs import (
    Topology,
    complete_graph,
    cycle_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)

GRAPHS = [
    ("path", lambda: Topology(path_graph(8))),
    ("cycle", lambda: Topology(cycle_graph(9))),
    ("star", lambda: Topology(star_graph(8))),
    ("complete", lambda: Topology(complete_graph(6))),
    ("gnp", lambda: Topology(gnp_graph(24, 0.15, seed=2))),
    ("regular", lambda: Topology(random_regular_graph(20, 4, seed=3))),
]


class TestLubyMIS:
    @pytest.mark.parametrize("name,factory", GRAPHS)
    def test_valid_mis(self, name, factory):
        topology = factory()
        result = run_mis_bc(topology, seed=1)
        assert result.finished, name
        ok, reason = check_mis(topology, result.outputs)
        assert ok, f"{name}: {reason}"

    def test_isolated_node_joins(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        graph.add_edge(0, 1)
        result = run_mis_bc(Topology(graph), seed=0)
        assert result.outputs[2] is True

    def test_star_hub_or_all_leaves(self):
        topology = Topology(star_graph(6))
        result = run_mis_bc(topology, seed=2)
        outputs = result.outputs
        if outputs[0]:
            assert not any(outputs[1:])
        else:
            assert all(outputs[1:])

    def test_check_mis_detects_dependence(self):
        topology = Topology(path_graph(3))
        ok, reason = check_mis(topology, [True, True, False])
        assert not ok and "independence" in reason

    def test_check_mis_detects_non_maximal(self):
        topology = Topology(path_graph(3))
        ok, reason = check_mis(topology, [False, False, True])
        assert not ok and "maximality" in reason

    def test_check_mis_detects_undecided(self):
        topology = Topology(path_graph(2))
        ok, reason = check_mis(topology, [None, True])
        assert not ok and "undecided" in reason


class TestColoring:
    @pytest.mark.parametrize("name,factory", GRAPHS)
    def test_valid_delta_plus_one_coloring(self, name, factory):
        topology = factory()
        result = run_coloring_bc(topology, seed=1)
        assert result.finished, name
        ok, reason = check_coloring(
            topology, result.outputs, topology.max_degree + 1
        )
        assert ok, f"{name}: {reason}"

    def test_check_coloring_detects_conflict(self):
        topology = Topology(path_graph(2))
        ok, reason = check_coloring(topology, [1, 1], 3)
        assert not ok and "monochromatic" in reason

    def test_check_coloring_detects_overflow(self):
        topology = Topology(path_graph(2))
        ok, reason = check_coloring(topology, [0, 5], 3)
        assert not ok and "outside" in reason

    def test_check_coloring_detects_uncolored(self):
        topology = Topology(path_graph(2))
        ok, reason = check_coloring(topology, [None, 1], 3)
        assert not ok and "uncoloured" in reason


class TestBFS:
    @pytest.mark.parametrize("name,factory", GRAPHS)
    def test_valid_bfs_tree(self, name, factory):
        topology = factory()
        result = run_bfs_bc(topology, root=0, seed=1)
        ok, reason = check_bfs_tree(
            topology, list(range(topology.num_nodes)), 0, result.outputs
        )
        assert ok, f"{name}: {reason}"

    def test_grid_distances(self):
        topology = Topology(grid_graph(3, 4))
        result = run_bfs_bc(topology, root=0, seed=0)
        distances = [d for d, _ in result.outputs]
        assert distances[0] == 0
        assert distances[11] == 2 + 3  # opposite corner

    def test_disconnected_marked_unreachable(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        result = run_bfs_bc(Topology(graph), root=0, seed=0)
        assert result.outputs[3] == (-1, None)

    def test_check_bfs_detects_wrong_distance(self):
        topology = Topology(path_graph(3))
        ok, reason = check_bfs_tree(
            topology, [0, 1, 2], 0, [(0, None), (1, 0), (1, 0)]
        )
        assert not ok and "distance" in reason


class TestLeaderElection:
    @pytest.mark.parametrize("name,factory", GRAPHS)
    def test_each_component_elects_its_max_id(self, name, factory):
        import networkx as nx

        topology = factory()
        result = run_leader_election_bc(topology, seed=1)
        for component in nx.connected_components(topology.graph):
            expected = max(component)
            for v in component:
                assert result.outputs[v] == expected, name

    def test_custom_ids(self):
        topology = Topology(path_graph(4))
        result = run_leader_election_bc(topology, ids=[5, 90, 2, 11])
        assert set(result.outputs) == {90}

    def test_per_component_leaders(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        result = run_leader_election_bc(Topology(graph))
        assert result.outputs[0] == result.outputs[1] == 1
        assert result.outputs[2] == result.outputs[3] == 3
