"""The algorithm zoo × topology zoo matrix.

Every algorithm in :mod:`repro.algorithms` must produce outputs its
:mod:`repro.algorithms.verification` checker accepts on every registered
topology-zoo family at small ``n``, under both CONGEST runtimes.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    check_bfs_tree,
    check_coloring,
    check_leader_election,
    check_matching,
    check_mis,
    run_bfs_bc,
    run_coloring_bc,
    run_leader_election_bc,
    run_matching_bc,
    run_mis_bc,
)
from repro.congest import KNOWN_RUNTIMES
from repro.graphs import Topology, build_family_graph, family_names

#: A feasible small n per family (tree sizes, powers of two, ...).
FAMILY_SIZES = {
    "complete": 6,
    "path": 8,
    "cycle": 8,
    "star": 8,
    "grid": 9,
    "tree": 7,
    "gnp": 12,
    "regular": 8,
    "disk": 10,
    "planted": 8,
    "expander": 8,
    "hypercube": 8,
    "torus": 9,
    "barbell": 9,
    "caterpillar": 8,
    "powerlaw": 10,
}


def _topology(family: str) -> Topology:
    n = FAMILY_SIZES[family]
    return Topology(build_family_graph(family, n, seed=5))


def test_every_registered_family_has_a_size():
    """New zoo families must be added to this matrix."""
    assert set(FAMILY_SIZES) == set(family_names())


@pytest.mark.parametrize("runtime", KNOWN_RUNTIMES)
@pytest.mark.parametrize("family", sorted(FAMILY_SIZES))
class TestZooMatrix:
    def test_matching(self, family, runtime):
        topology = _topology(family)
        result = run_matching_bc(topology, seed=1, runtime=runtime)
        assert result.finished
        ok, why = check_matching(
            topology, list(range(topology.num_nodes)), result.outputs
        )
        assert ok, why

    def test_mis(self, family, runtime):
        topology = _topology(family)
        result = run_mis_bc(topology, seed=1, runtime=runtime)
        assert result.finished
        ok, why = check_mis(topology, result.outputs)
        assert ok, why

    def test_coloring(self, family, runtime):
        topology = _topology(family)
        result = run_coloring_bc(topology, seed=1, runtime=runtime)
        assert result.finished
        ok, why = check_coloring(
            topology, result.outputs, topology.max_degree + 1
        )
        assert ok, why

    def test_bfs(self, family, runtime):
        topology = _topology(family)
        result = run_bfs_bc(topology, 0, seed=1, runtime=runtime)
        ok, why = check_bfs_tree(
            topology, list(range(topology.num_nodes)), 0, result.outputs
        )
        assert ok, why

    def test_leader_election(self, family, runtime):
        topology = _topology(family)
        result = run_leader_election_bc(topology, seed=1, runtime=runtime)
        assert result.finished
        ok, why = check_leader_election(
            topology, list(range(topology.num_nodes)), result.outputs
        )
        assert ok, why
