"""Tests for Algorithm 3 (maximal matching in Broadcast CONGEST)."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import (
    UNMATCHED,
    check_matching,
    make_matching_algorithms,
    matching_message_bits,
    run_matching_bc,
)
from repro.congest import BroadcastCongestNetwork
from repro.graphs import (
    Topology,
    complete_graph,
    cycle_graph,
    gnp_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)


class TestValidityAcrossGraphs:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: Topology(path_graph(2)),
            lambda: Topology(path_graph(9)),
            lambda: Topology(cycle_graph(8)),
            lambda: Topology(star_graph(7)),
            lambda: Topology(complete_graph(7)),
            lambda: Topology(gnp_graph(30, 0.12, seed=4)),
            lambda: Topology(random_regular_graph(24, 5, seed=1)),
        ],
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_output_is_maximal_matching(self, factory, seed):
        topology = factory()
        result = run_matching_bc(topology, seed=seed)
        assert result.finished
        ok, reason = check_matching(
            topology, list(range(topology.num_nodes)), result.outputs
        )
        assert ok, reason

    def test_path2_matches_the_edge(self):
        topology = Topology(path_graph(2))
        result = run_matching_bc(topology, seed=0)
        assert result.outputs == [1, 0]

    def test_isolated_nodes_unmatched(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        topology = Topology(graph)
        result = run_matching_bc(topology, seed=0)
        assert result.outputs[2] == UNMATCHED
        assert result.outputs[3] == UNMATCHED
        assert result.outputs[0] == 1


class TestRoundComplexity:
    def test_rounds_scale_with_log_n(self):
        for n in (16, 64):
            topology = Topology(gnp_graph(n, 4.0 / n, seed=2))
            result = run_matching_bc(topology, seed=3)
            assert result.finished
            # generous: 4 BC rounds per iteration, <= 4 log n + O(1) iters
            assert result.rounds_used <= 1 + 4 * (4 * math.ceil(math.log2(n)) + 4)

    def test_star_resolves_in_one_iteration(self):
        topology = Topology(star_graph(9))
        result = run_matching_bc(topology, seed=0)
        # announcement + one 4-phase iteration
        assert result.rounds_used <= 5


class TestCustomIds:
    def test_non_contiguous_ids(self):
        topology = Topology(path_graph(4))
        ids = [100, 7, 55, 23]
        algorithms, budget = make_matching_algorithms(topology, ids)
        network = BroadcastCongestNetwork(topology, ids=ids, message_bits=budget)
        result = network.run(algorithms, max_rounds=60)
        ok, reason = check_matching(topology, ids, result.outputs)
        assert ok, reason


class TestMessageBudget:
    def test_matching_message_bits_formula(self):
        # tag 2 + two ids + 9*log n value bits
        assert matching_message_bits(64) == 2 + 2 * 6 + 9 * 6

    def test_budget_matches_make(self):
        topology = Topology(path_graph(6))
        _, budget = make_matching_algorithms(topology)
        assert budget == matching_message_bits(6)

    def test_value_exponent_shrinks_budget(self):
        topology = Topology(path_graph(6))
        _, wide = make_matching_algorithms(topology, value_exponent=9)
        _, narrow = make_matching_algorithms(topology, value_exponent=3)
        assert narrow < wide


class TestCheckMatching:
    def test_detects_asymmetry(self):
        topology = Topology(path_graph(3))
        ok, reason = check_matching(topology, [0, 1, 2], [1, UNMATCHED, UNMATCHED])
        assert not ok
        assert "symmetry" in reason

    def test_detects_non_edge(self):
        topology = Topology(path_graph(3))
        ok, reason = check_matching(topology, [0, 1, 2], [2, UNMATCHED, 0])
        assert not ok
        assert "adjacent" in reason

    def test_detects_non_maximality(self):
        topology = Topology(path_graph(2))
        ok, reason = check_matching(topology, [0, 1], [UNMATCHED, UNMATCHED])
        assert not ok
        assert "maximality" in reason

    def test_detects_unknown_id(self):
        topology = Topology(path_graph(2))
        ok, reason = check_matching(topology, [0, 1], [77, UNMATCHED])
        assert not ok
        assert "unknown" in reason

    def test_accepts_valid(self):
        topology = Topology(path_graph(4))
        ok, _ = check_matching(topology, [0, 1, 2, 3], [1, 0, 3, 2])
        assert ok
