"""Tests for the programmatic runner API (`repro.experiments.api`)."""

from __future__ import annotations

import pytest

from repro.engine import get_default_backend
from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    RunContext,
    api,
    get_experiment,
    get_spec,
)


class TestResolveIds:
    def test_none_is_all(self):
        assert api.resolve_ids(None) == sorted(EXPERIMENTS)

    def test_all_keyword(self):
        assert api.resolve_ids(["all"]) == sorted(EXPERIMENTS)

    def test_case_insensitive_and_deduplicated(self):
        assert api.resolve_ids(["E06", "e06", "e01"]) == ["e06", "e01"]

    def test_unknown_id_raises(self):
        with pytest.raises(ConfigurationError):
            api.resolve_ids(["e99"])

    def test_explicit_empty_selection_is_empty(self):
        # a dynamically-built selection that matched nothing must not
        # silently expand to a full run
        assert api.resolve_ids([]) == []
        assert api.run([]) == []

    def test_tags_filter(self):
        selected = api.resolve_ids(None, tags=["ablation"])
        assert selected == ["a01", "a02", "a03"]

    def test_tags_restrict_explicit_ids(self):
        assert api.resolve_ids(["e01", "e02"], tags=["figure"]) == ["e01"]


class TestRunOne:
    def test_metadata_populated(self):
        result = api.run_one("e01", profile="quick", seed=3)
        assert result.experiment_id == "e01"
        assert result.title == EXPERIMENTS["e01"][1]
        assert result.profile == "quick"
        assert result.seed == 3
        assert result.backend == "auto"
        assert result.elapsed > 0
        assert result.tables and result.tables[0].rows

    def test_rows_match_legacy_runner(self):
        result = api.run_one("e03", seed=1)
        tables = get_experiment("e03")(quick=True, seed=1)
        assert [t.rows for t in result.tables] == [
            [list(row) for row in table.rows] for table in tables
        ]

    def test_backend_restored(self):
        before = get_default_backend()
        api.run_one("e01", backend="dense")
        assert get_default_backend() == before

    def test_full_profile_reaches_context(self):
        spec = get_spec("e03")
        ctx = spec.make_context(profile="full", seed=0)
        assert not ctx.quick
        # full e03 sweeps more (a, delta) combos than quick
        quick_rows = len(api.run_one("e03").tables[0].rows)
        full_rows = len(spec.execute(ctx)[0].rows)
        assert full_rows > quick_rows


class TestRunMany:
    def test_order_follows_selection(self):
        results = api.run(["e03", "e01"])
        assert [r.experiment_id for r in results] == ["e03", "e01"]

    def test_parallel_matches_serial(self):
        serial = api.run(["e01", "e03", "e14"], seed=4, jobs=1)
        parallel = api.run(["e01", "e03", "e14"], seed=4, jobs=3)
        for a, b in zip(serial, parallel):
            assert a.experiment_id == b.experiment_id
            assert [t.rows for t in a.tables] == [t.rows for t in b.tables]
            assert [t.to_table().render() for t in a.tables] == [
                t.to_table().render() for t in b.tables
            ]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            api.run(["e01"], jobs=0)

    def test_progress_callback_invoked(self):
        messages: list[str] = []
        api.run(["e01"], progress=messages.append)
        assert any("e01" in message for message in messages)


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        [first] = api.run(["e03"], seed=2, cache_dir=tmp_path)
        assert not first.cached
        files = list(tmp_path.glob("e03--quick--seed2--*.json"))
        assert len(files) == 1
        [second] = api.run(["e03"], seed=2, cache_dir=tmp_path)
        assert second.cached
        assert [t.rows for t in second.tables] == [t.rows for t in first.tables]
        assert second.elapsed == first.elapsed  # replayed, not re-timed

    def test_key_includes_profile_and_seed(self, tmp_path):
        api.run(["e01"], seed=0, cache_dir=tmp_path)
        api.run(["e01"], seed=1, cache_dir=tmp_path)
        api.run(["e01"], seed=0, profile="smoke", cache_dir=tmp_path)
        assert len(list(tmp_path.glob("e01--*.json"))) == 3

    def test_cache_file_is_valid_result_json(self, tmp_path):
        api.run(["e01"], cache_dir=tmp_path)
        [path] = tmp_path.glob("e01--*.json")
        restored = ExperimentResult.from_json(path.read_text())
        assert restored.experiment_id == "e01"

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        api.run(["e01"], cache_dir=tmp_path)
        [path] = tmp_path.glob("e01--*.json")
        path.write_text("{not json")  # e.g. an interrupted write
        [result] = api.run(["e01"], cache_dir=tmp_path)
        assert not result.cached  # re-ran instead of crashing
        # and the entry was repaired
        assert ExperimentResult.from_json(path.read_text()).experiment_id == "e01"

    def test_old_schema_cache_entry_is_a_miss(self, tmp_path):
        api.run(["e01"], cache_dir=tmp_path)
        [path] = tmp_path.glob("e01--*.json")
        path.write_text(path.read_text().replace('"schema_version": 2', '"schema_version": 1'))
        [result] = api.run(["e01"], cache_dir=tmp_path)
        assert not result.cached

    def test_sanitization_collision_is_a_miss(self, tmp_path):
        # 'a b' and 'a-b' sanitize to the same file name; the stored
        # metadata must prevent replaying the wrong profile's result
        [first] = api.run(["e01"], profile="a b", cache_dir=tmp_path)
        path_ab = api.cache_path(tmp_path, "e01", profile="a b", seed=0)
        path_dash = api.cache_path(tmp_path, "e01", profile="a-b", seed=0)
        assert path_ab == path_dash
        [second] = api.run(["e01"], profile="a-b", cache_dir=tmp_path)
        assert not second.cached
        assert second.profile == "a-b"


class TestOnResult:
    def test_streamed_in_selection_order(self):
        seen: list[str] = []
        api.run(["e03", "e01"], on_result=lambda r: seen.append(r.experiment_id))
        assert seen == ["e03", "e01"]

    def test_streamed_in_order_with_cache_hits_interleaved(self, tmp_path):
        api.run(["e03"], cache_dir=tmp_path)  # warm only the middle entry
        seen: list[tuple[str, bool]] = []
        api.run(
            ["e01", "e03", "e14"],
            cache_dir=tmp_path,
            on_result=lambda r: seen.append((r.experiment_id, r.cached)),
        )
        assert seen == [("e01", False), ("e03", True), ("e14", False)]

    def test_streamed_in_order_parallel(self):
        seen: list[str] = []
        api.run(
            ["e03", "e01", "e14"],
            jobs=3,
            on_result=lambda r: seen.append(r.experiment_id),
        )
        assert seen == ["e03", "e01", "e14"]


class TestLegacyShim:
    def test_positional_quick(self):
        tables = get_experiment("e03")(True, 0)
        assert tables and tables[0].rows

    def test_context_call(self):
        spec = get_spec("e03")
        tables = spec(RunContext(experiment_id="e03", profile="quick", seed=0))
        assert tables and tables[0].rows

    def test_context_plus_kwargs_rejected(self):
        spec = get_spec("e03")
        with pytest.raises(ConfigurationError):
            spec(RunContext(experiment_id="e03"), quick=True)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("e03")(fast=True)

    def test_legacy_and_context_results_identical(self):
        spec = get_spec("e14")
        legacy = spec(quick=True, seed=0)
        ctx = spec.make_context(profile="quick", seed=0)
        fresh = spec.execute(ctx)
        assert [t.render() for t in legacy] == [t.render() for t in fresh]


class TestCacheHardening:
    """`load_cached` repairs bad entries instead of wedging callers."""

    def _entry(self, tmp_path):
        api.run(["e01"], cache_dir=tmp_path)
        [path] = tmp_path.glob("e01--*.json")
        return path

    def _load(self, path):
        return api.load_cached(
            path,
            experiment_id="e01",
            profile="quick",
            seed=0,
            backend_name=get_default_backend(),
        )

    def test_corrupt_entry_is_deleted(self, tmp_path):
        path = self._entry(tmp_path)
        path.write_text("{not json")
        assert self._load(path) is None
        assert not path.exists()  # repaired: the next writer starts clean

    def test_truncated_entry_is_deleted(self, tmp_path):
        path = self._entry(tmp_path)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        assert self._load(path) is None
        assert not path.exists()

    def test_missing_file_is_a_plain_miss(self, tmp_path):
        assert self._load(tmp_path / "absent.json") is None

    def test_metadata_mismatch_keeps_the_file(self, tmp_path):
        # A collision victim is another request's valid entry, not junk.
        path = self._entry(tmp_path)
        miss = api.load_cached(
            path,
            experiment_id="e01",
            profile="other-profile",
            seed=0,
            backend_name=get_default_backend(),
        )
        assert miss is None
        assert path.exists()


class TestProgressAcrossProcesses:
    """The progress callback survives the worker process boundary."""

    def test_worker_messages_reach_the_callback(self):
        messages: list[str] = []
        api.run(["e01", "e03"], jobs=2, progress=messages.append)
        # In-experiment reports from inside the spawn workers are relayed,
        # not silently dropped (e01 reports mid-run via ctx.report).
        assert any("combined-code layout assembled" in m for m in messages)
        assert any(m.startswith("e01: done") for m in messages)
        assert any(m.startswith("e03: done") for m in messages)

    def test_context_pickles_without_callback(self):
        import pickle

        ctx = RunContext(
            experiment_id="e01", profile="quick", seed=0,
            progress=lambda message: None,
        )
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.progress is None
        assert clone.experiment_id == "e01"
