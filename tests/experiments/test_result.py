"""Serialization tests for the structured result layer.

The satellite contract: ``ExperimentResult -> JSON -> ExperimentResult``
preserves rows, notes, and metadata for **every** registered experiment
spec — schema-level (results are fabricated per spec, no slow runs).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentResult, Table, TableData, all_specs
from repro.experiments.result import SCHEMA_VERSION


def _synthetic_result(spec) -> ExperimentResult:
    """A schema-exercising result for ``spec`` without running it.

    Rows cover every cell type experiments emit: ints, floats (plain and
    scientific-notation magnitudes), bools, and strings.
    """
    table = TableData(
        title=f"{spec.id}: synthetic",
        headers=["n", "ratio", "tiny", "ok", "label"],
        rows=[
            [16, 1.5, 2.5e-7, True, "G(n, 4/n)"],
            [1024, 0.3333333333333333, 1e6, False, "-"],
        ],
        notes=["synthetic round-trip row set"],
    )
    return ExperimentResult(
        experiment_id=spec.id,
        title=spec.title,
        claim=spec.claim,
        tags=spec.tags,
        profile="quick",
        seed=7,
        backend="dense",
        elapsed=0.125,
        tables=[table],
    )


@pytest.mark.parametrize("spec", all_specs(), ids=lambda spec: spec.id)
def test_json_round_trip_every_spec(spec):
    result = _synthetic_result(spec)
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.experiment_id == result.experiment_id
    assert restored.title == result.title
    assert restored.claim == result.claim
    assert restored.tags == result.tags
    assert restored.profile == result.profile
    assert restored.seed == result.seed
    assert restored.backend == result.backend
    assert restored.elapsed == result.elapsed
    for before, after in zip(result.tables, restored.tables):
        assert after.title == before.title
        assert after.headers == before.headers
        assert after.rows == before.rows  # exact values, float-exact
        assert after.notes == before.notes
    # rendered text is therefore identical too
    assert restored.render_text() == result.render_text()


class TestTableData:
    def test_from_table_round_trip(self):
        table = Table(title="T", headers=["a", "b"], notes=["n1"])
        table.add_row(1, 0.5)
        table.add_row(2, 1e-9)
        data = TableData.from_table(table)
        rebuilt = data.to_table()
        assert rebuilt.render() == table.render()

    def test_numpy_scalars_coerced(self):
        data = TableData(
            title="T",
            headers=["i", "f", "b"],
            rows=[[np.int64(3), np.float64(0.25), np.bool_(True)]],
        )
        [row] = data.rows
        assert row == [3, 0.25, True]
        assert [type(value) for value in row] == [int, float, bool]
        json.dumps(data.to_dict())  # JSON-able without a custom encoder

    def test_records(self):
        data = TableData(title="T", headers=["x", "y"], rows=[[1, 2], [3, 4]])
        assert list(data.records()) == [{"x": 1, "y": 2}, {"x": 3, "y": 4}]

    def test_csv_quotes_commas(self):
        data = TableData(title="T", headers=["k", "v"], rows=[["a,b", 1]])
        assert data.to_csv() == 'k,v\n"a,b",1\n'

    def test_row_arity_checked(self):
        with pytest.raises(ConfigurationError):
            TableData(title="T", headers=["a", "b"], rows=[[1]])


class TestExperimentResult:
    def test_records_tagged_with_table(self):
        result = ExperimentResult(
            experiment_id="eXX",
            title="t",
            profile="quick",
            seed=0,
            backend="auto",
            elapsed=0.0,
            tables=[
                TableData(title="first", headers=["a"], rows=[[1]]),
                TableData(title="second", headers=["a"], rows=[[2]]),
            ],
        )
        assert list(result.records()) == [
            {"table": "first", "a": 1},
            {"table": "second", "a": 2},
        ]

    def test_adopts_raw_tables(self):
        table = Table(title="T", headers=["a"])
        table.add_row(1)
        result = ExperimentResult(
            experiment_id="eXX",
            title="t",
            profile="quick",
            seed=0,
            backend="auto",
            elapsed=0.0,
            tables=[table],
        )
        assert isinstance(result.tables[0], TableData)

    def test_render_text_matches_v1_block(self):
        table = Table(title="T", headers=["a"])
        table.add_row(1)
        result = ExperimentResult(
            experiment_id="e01",
            title="t",
            profile="quick",
            seed=0,
            backend="auto",
            elapsed=1.26,
            tables=[table],
        )
        text = result.render_text()
        assert text.startswith("\n" + table.render())
        assert text.endswith("\n[e01 completed in 1.3s]")

    def test_schema_version_checked(self):
        payload = {"schema_version": SCHEMA_VERSION + 1}
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_dict(payload)

    def test_cached_flag_not_serialized(self):
        result = ExperimentResult(
            experiment_id="eXX",
            title="t",
            profile="quick",
            seed=0,
            backend="auto",
            elapsed=0.0,
            tables=[],
            cached=True,
        )
        assert ExperimentResult.from_json(result.to_json()).cached is False
