"""Smoke-runs every registered experiment in quick mode and asserts the key
reproduction invariants each table is supposed to demonstrate."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, Table, get_experiment, list_experiments


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = [f"e{i:02d}" for i in range(1, 18)] + ["a01", "a02", "a03"]
        assert sorted(EXPERIMENTS) == sorted(expected)

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("E06") is EXPERIMENTS["e06"][0]

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("e99")

    def test_list_has_descriptions(self):
        for key, description in list_experiments():
            assert key in EXPERIMENTS
            assert description


class TestSpecs:
    def test_every_spec_carries_metadata(self):
        from repro.experiments import all_specs

        for spec in all_specs():
            assert spec.title
            assert spec.claim
            assert spec.tags
            assert spec.id == spec.id.lower()

    def test_registry_view_behaves_like_dict(self):
        assert "e06" in EXPERIMENTS
        assert len(EXPERIMENTS) == 20
        assert set(EXPERIMENTS.keys()) == {key for key, _ in EXPERIMENTS.items()}
        runner, description = EXPERIMENTS["e06"]
        assert runner.title == description

    def test_duplicate_id_across_modules_rejected(self):
        from repro.experiments.registry import discover
        from repro.experiments.spec import experiment

        discover()  # ensure e06_overhead owns its id before the clash
        with pytest.raises(ConfigurationError):
            # the decorator sees this test module claiming e06, which is
            # already owned by e06_overhead
            @experiment(id="e06", title="imposter")
            def run(ctx):  # pragma: no cover - never executed
                return []

    def test_late_registration_reaches_experiments_view(self):
        from repro.experiments import spec as spec_module
        from repro.experiments.spec import experiment

        try:

            @experiment(id="x99", title="late registration", tags=("test",))
            def run(ctx):  # pragma: no cover - never executed
                return []

            assert EXPERIMENTS["x99"][1] == "late registration"
            assert get_experiment("x99") is EXPERIMENTS["x99"][0]
        finally:
            del spec_module._REGISTRY["x99"]
            del EXPERIMENTS["x99"]


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs_and_returns_tables(experiment_id):
    runner = get_experiment(experiment_id)
    tables = runner(quick=True, seed=0)
    assert tables, experiment_id
    for table in tables:
        assert isinstance(table, Table)
        assert table.rows, f"{experiment_id}: empty table {table.title}"
        rendered = table.render()
        assert table.title in rendered


class TestKeyInvariants:
    def test_e02_bad_fraction_small(self):
        [table] = get_experiment("e02")(quick=True, seed=0)
        for row in table.rows:
            bad_fraction = row[8]
            assert bad_fraction <= 0.05

    def test_e03_distance_guarantee_holds(self):
        [table] = get_experiment("e03")(quick=True, seed=0)
        for row in table.rows:
            assert row[6] is True  # "holds" column

    def test_e04_noiseless_rows_perfect(self):
        [table] = get_experiment("e04")(quick=True, seed=0)
        for row in table.rows:
            if row[2] == 0.0:  # eps column
                assert row[7] == 0  # node error rate

    def test_e06_ratio_flat(self):
        by_delta, _ = get_experiment("e06")(quick=True, seed=0)
        ratios = {row[4] for row in by_delta.rows}
        assert len(ratios) == 1  # exactly linear in (Delta+1) * B

    def test_e09_all_rounds_match_lemma15(self):
        [table] = get_experiment("e09")(quick=True, seed=0)
        for row in table.rows:
            assert row[5] is True and row[6] is True

    def test_e10_census_injective(self):
        _, census = get_experiment("e10")(quick=True, seed=0)
        for row in census.rows:
            assert row[7] is True and row[8] is True

    def test_e11_matchings_valid(self):
        rounds_table, _ = get_experiment("e11")(quick=True, seed=0)
        for row in rounds_table.rows:
            assert row[6] is True and row[7] is True

    def test_e12_valid_under_noise(self):
        [table] = get_experiment("e12")(quick=True, seed=0)
        for row in table.rows:
            assert row[3] is True  # valid column

    def test_e13_bound_respected(self):
        _, hard = get_experiment("e13")(quick=True, seed=0)
        for row in hard.rows:
            assert row[2] is True and row[5] is True

    def test_e15_improvement_factor_is_min_term(self):
        landscape, _ = get_experiment("e15")(quick=True, seed=0)
        for row in landscape.rows:
            n, delta = row[0], row[1]
            assert row[8] == pytest.approx(min(n / delta, delta))

    def test_e16_both_algorithms_valid(self):
        [table] = get_experiment("e16")(quick=True, seed=0)
        for row in table.rows:
            assert row[3] is True and row[5] is True

    def test_e16_mis_rounds_flat_matching_grows(self):
        [table] = get_experiment("e16")(quick=True, seed=0)
        mis_rounds = [row[2] for row in table.rows]
        matching_rounds = [row[4] for row in table.rows]
        # matching cost grows much faster in Delta than native MIS cost
        assert matching_rounds[-1] / matching_rounds[0] > 1.3
        assert max(mis_rounds) / min(mis_rounds) < 1.3

    def test_a01_cliff_below_preset_and_success_at_it(self):
        [table] = get_experiment("a01")(quick=True, seed=0)
        for row in table.rows:
            eps, c, preset, _, success = row[0], row[1], row[2], row[3], row[4]
            if c >= preset:
                assert success == 1.0, (eps, c)

    def test_a02_paper_threshold_has_zero_errors(self):
        [table] = get_experiment("a02")(quick=True, seed=0)
        paper_rows = [row for row in table.rows if row[5] is True]
        assert paper_rows
        for row in paper_rows:
            assert row[4] == 0  # total errors
        extremes = [row for row in table.rows if row[0] in (0.15, 0.8)]
        assert all(row[4] > 0 for row in extremes)

    def test_a03_policies_agree(self):
        agreement, robustness = get_experiment("a03")(quick=True, seed=0)
        for row in agreement.rows:
            assert row[4] is True
        for row in robustness.rows:
            assert row[3] == 1.0 and row[4] == 0
