"""Tests for the experiment table renderer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import Table


class TestTable:
    def test_render_aligns_columns(self):
        table = Table(title="T", headers=["a", "long header"])
        table.add_row(1, 2)
        table.add_row(100000, 3)
        lines = table.render().splitlines()
        assert lines[0] == "T"
        header_line = lines[2]
        assert header_line.startswith("a")
        assert "long header" in header_line

    def test_bool_formatting(self):
        table = Table(title="T", headers=["ok"])
        table.add_row(True)
        table.add_row(False)
        rendered = table.render()
        assert "yes" in rendered and "no" in rendered

    def test_float_formatting(self):
        table = Table(title="T", headers=["x"])
        table.add_row(0.00001)
        table.add_row(1.5)
        rendered = table.render()
        assert "1.00e-05" in rendered
        assert "1.5" in rendered

    def test_notes_rendered(self):
        table = Table(title="T", headers=["x"], notes=["hello world"])
        assert "note: hello world" in table.render()

    def test_row_arity_checked(self):
        table = Table(title="T", headers=["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_str_is_render(self):
        table = Table(title="T", headers=["a"])
        table.add_row(5)
        assert str(table) == table.render()
