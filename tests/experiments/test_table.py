"""Tests for the experiment table renderer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import Table


class TestTable:
    def test_render_aligns_columns(self):
        table = Table(title="T", headers=["name", "long header"])
        table.add_row("x", "u")
        table.add_row("something", "v")
        lines = table.render().splitlines()
        assert lines[0] == "T"
        header_line = lines[2]
        assert header_line.startswith("name")
        assert "long header" in header_line

    def test_numeric_columns_right_aligned(self):
        table = Table(title="T", headers=["label", "count"])
        table.add_row("a", 1)
        table.add_row("bb", 100000)
        lines = table.render().splitlines()
        # header and cells of the numeric column line up on their right edge
        assert lines[2] == "label   count"
        assert lines[4] == "a           1"
        assert lines[5] == "bb     100000"

    def test_text_and_bool_columns_left_aligned(self):
        table = Table(title="T", headers=["lbl", "ok"])
        table.add_row("a", True)
        table.add_row("bbbb", False)
        lines = table.render().splitlines()
        assert lines[4] == "a     yes"
        assert lines[5] == "bbbb  no "

    def test_mixed_column_stays_left_aligned(self):
        table = Table(title="T", headers=["value"])
        table.add_row(12345)
        table.add_row("-")
        lines = table.render().splitlines()
        assert lines[4] == "12345"
        assert lines[5] == "-    "

    def test_bool_formatting(self):
        table = Table(title="T", headers=["ok"])
        table.add_row(True)
        table.add_row(False)
        rendered = table.render()
        assert "yes" in rendered and "no" in rendered

    def test_float_formatting(self):
        table = Table(title="T", headers=["x"])
        table.add_row(0.00001)
        table.add_row(1.5)
        rendered = table.render()
        assert "1.00e-05" in rendered
        assert "1.5" in rendered

    def test_notes_rendered(self):
        table = Table(title="T", headers=["x"], notes=["hello world"])
        assert "note: hello world" in table.render()

    def test_row_arity_checked(self):
        table = Table(title="T", headers=["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_str_is_render(self):
        table = Table(title="T", headers=["a"])
        table.add_row(5)
        assert str(table) == table.render()
