"""Tests for the command-line experiment harness."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import main


class TestHarnessCLI:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e16" in out and "a03" in out

    def test_run_single_experiment(self, capsys):
        assert main(["e01"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "[e01 completed" in out

    def test_run_multiple(self, capsys):
        assert main(["e01", "e15"]) == 0
        out = capsys.readouterr().out
        assert "[e01 completed" in out and "[e15 completed" in out

    def test_seed_flag(self, capsys):
        assert main(["e01", "--seed", "3"]) == 0

    def test_unknown_experiment_raises(self):
        with pytest.raises(ConfigurationError):
            main(["e99"])
