"""Tests for the command-line experiment harness."""

from __future__ import annotations

import pytest

from repro.engine import get_default_backend
from repro.errors import ConfigurationError
from repro.experiments.harness import _experiment_id_summary, main
from repro.experiments.registry import EXPERIMENTS


class TestHelpText:
    def test_id_summary_generated_from_registry(self):
        summary = _experiment_id_summary()
        assert summary == "a01..a03, e01..e16"

    def test_summary_tracks_registry_contents(self):
        # every registered id is inside one of the advertised ranges
        summary = _experiment_id_summary()
        for key in EXPERIMENTS:
            prefix = key.rstrip("0123456789")
            assert prefix in summary

    def test_usage_advertises_all_registered_ids(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "e01..e16" in out and "a01..a03" in out
        assert "e01..e15" not in out  # the stale hardcoded range


class TestBackendFlag:
    def test_backend_flag_accepted(self, capsys):
        assert main(["e01", "--backend", "bitpacked"]) == 0
        assert "[e01 completed" in capsys.readouterr().out

    def test_backend_restored_after_run(self):
        before = get_default_backend()
        assert main(["e01", "--backend", "dense"]) == 0
        assert get_default_backend() == before

    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["e01", "--backend", "quantum"])


class TestHarnessCLI:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e16" in out and "a03" in out

    def test_run_single_experiment(self, capsys):
        assert main(["e01"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "[e01 completed" in out

    def test_run_multiple(self, capsys):
        assert main(["e01", "e15"]) == 0
        out = capsys.readouterr().out
        assert "[e01 completed" in out and "[e15 completed" in out

    def test_seed_flag(self, capsys):
        assert main(["e01", "--seed", "3"]) == 0

    def test_unknown_experiment_raises(self):
        with pytest.raises(ConfigurationError):
            main(["e99"])
