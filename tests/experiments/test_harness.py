"""Tests for the command-line experiment harness."""

from __future__ import annotations

import json

import pytest

from repro.engine import get_default_backend
from repro.experiments.harness import _experiment_id_summary, main
from repro.experiments.registry import EXPERIMENTS
from repro.sweeps.result import SWEEP_SCHEMA_VERSION

GRID_TOML = (
    "[grid]\n"
    'topologies = ["cycle", "path"]\n'
    "sizes = [8]\n"
    "noises = [0.0]\n"
    "rounds = 1\n"
)


class TestHelpText:
    def test_id_summary_generated_from_registry(self):
        summary = _experiment_id_summary()
        assert summary == "a01..a03, e01..e17"

    def test_summary_tracks_registry_contents(self):
        # every registered id is inside one of the advertised ranges
        summary = _experiment_id_summary()
        for key in EXPERIMENTS:
            prefix = key.rstrip("0123456789")
            assert prefix in summary

    def test_usage_advertises_all_registered_ids(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "e01..e17" in out and "a01..a03" in out
        assert "e01..e15" not in out  # the stale hardcoded range


class TestBackendFlag:
    def test_backend_flag_accepted(self, capsys):
        assert main(["e01", "--backend", "bitpacked"]) == 0
        assert "[e01 completed" in capsys.readouterr().out

    def test_backend_restored_after_run(self):
        before = get_default_backend()
        assert main(["e01", "--backend", "dense"]) == 0
        assert get_default_backend() == before

    def test_unknown_backend_rejected(self, capsys):
        # Not an argparse SystemExit: unknown names flow through the
        # registry so the one-line error lists every known backend.
        assert main(["e01", "--backend", "quantum"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown backend 'quantum'")
        assert "'native'" in err and "'bitpacked'" in err and "'dense'" in err

    def test_unknown_backend_rejected_on_sweep(self, tmp_path, capsys):
        grid = tmp_path / "grid.toml"
        grid.write_text(GRID_TOML)
        assert main(["sweep", "--grid", str(grid), "--backend", "quantum"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown backend 'quantum'")
        assert "'native'" in err


class TestRuntimeFlag:
    def test_runtime_flag_accepted(self, capsys):
        assert main(["e11", "--runtime", "reference"]) == 0
        assert "E11a" in capsys.readouterr().out

    def test_runtime_restored_after_run(self):
        from repro.congest import get_default_runtime

        before = get_default_runtime()
        assert main(["e11", "--runtime", "reference"]) == 0
        assert get_default_runtime() == before

    def test_runtime_is_results_neutral(self, capsys):
        assert main(["e11", "--runtime", "reference", "--format", "json"]) == 0
        reference = json.loads(capsys.readouterr().out)
        assert main(["e11", "--runtime", "vectorized", "--format", "json"]) == 0
        vectorized = json.loads(capsys.readouterr().out)

        def rows(results):
            # notes record which runtime ran; the *numbers* must agree
            return [
                [table["rows"] for table in result["tables"]]
                for result in results
            ]

        assert rows(reference) == rows(vectorized)

    def test_unknown_runtime_exits_2_one_line(self, capsys):
        assert main(["e11", "--runtime", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line diagnostic, no traceback
        assert "unknown runtime 'bogus'" in err
        assert "vectorized" in err and "reference" in err

    def test_sweep_unknown_runtime_exits_2_one_line(self, tmp_path, capsys):
        grid = tmp_path / "grid.toml"
        grid.write_text(GRID_TOML)
        assert main(["sweep", "--grid", str(grid), "--runtime", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown runtime 'bogus'" in err

    def test_sweep_unknown_noise_model_exits_2_one_line(self, tmp_path, capsys):
        grid = tmp_path / "grid.toml"
        grid.write_text(GRID_TOML + 'noise_models = ["bogus"]\n')
        assert main(["sweep", "--grid", str(grid)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line diagnostic, no traceback
        assert "unknown noise model 'bogus'" in err
        assert "bernoulli" in err and "adversarial" in err and "zone:" in err


class TestHarnessCLI:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e16" in out and "a03" in out

    def test_run_single_experiment(self, capsys):
        assert main(["e01"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "[e01 completed" in out

    def test_run_multiple(self, capsys):
        assert main(["e01", "e15"]) == 0
        out = capsys.readouterr().out
        assert "[e01 completed" in out and "[e15 completed" in out

    def test_seed_flag(self, capsys):
        assert main(["e01", "--seed", "3"]) == 0

    def test_unknown_experiment_exits_2_with_message(self, capsys):
        assert main(["e99"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line diagnostic, no traceback
        assert "unknown experiment 'e99'" in err
        assert "e01" in err and "a03" in err  # lists the known ids


class TestFormats:
    def test_json_format_has_metadata(self, capsys):
        assert main(["e01", "--format", "json", "--seed", "5"]) == 0
        [doc] = json.loads(capsys.readouterr().out)
        assert doc["experiment_id"] == "e01"
        assert doc["seed"] == 5
        assert doc["profile"] == "quick"
        assert doc["backend"] == "auto"
        assert doc["elapsed"] >= 0
        assert doc["tables"] and doc["tables"][0]["rows"]

    def test_json_multiple_experiments(self, capsys):
        assert main(["e01", "e03", "--format", "json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [doc["experiment_id"] for doc in docs] == ["e01", "e03"]

    def test_csv_format(self, capsys):
        assert main(["e03", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# table: e03 /")
        assert "a,delta,c_delta" in out

    def test_text_format_matches_direct_render(self, capsys):
        from repro.experiments import api, get_experiment

        assert main(["e03", "--seed", "2"]) == 0
        cli_out = capsys.readouterr().out
        [result] = api.run(["e03"], seed=2)
        tables = get_experiment("e03")(quick=True, seed=2)
        # the table bodies must agree byte-for-byte across all three paths:
        # legacy runner call, structured result, and CLI text output
        for table, table_data in zip(tables, result.tables):
            assert table.render() == table_data.to_table().render()
            assert table.render() in cli_out

    def test_output_dir_writes_files(self, tmp_path, capsys):
        assert main(
            ["e01", "e03", "--format", "json", "--output", str(tmp_path)]
        ) == 0
        for experiment_id in ("e01", "e03"):
            path = tmp_path / f"{experiment_id}.json"
            assert path.is_file()
            doc = json.loads(path.read_text())
            assert doc["experiment_id"] == experiment_id

    def test_output_dir_text(self, tmp_path, capsys):
        assert main(["e01", "--output", str(tmp_path)]) == 0
        assert "[e01 completed" in (tmp_path / "e01.txt").read_text()


class TestSelection:
    def test_tags_select_without_ids(self, capsys):
        assert main(["--tags", "ablation"]) == 0
        out = capsys.readouterr().out
        assert "[a01 completed" in out and "[a02 completed" in out
        assert "[e01 completed" not in out

    def test_tags_restrict_ids(self, capsys):
        assert main(["e01", "e02", "--tags", "figure"]) == 0
        out = capsys.readouterr().out
        assert "[e01 completed" in out and "[e02 completed" not in out

    def test_no_match_exits_2(self, capsys):
        assert main(["--tags", "no-such-tag"]) == 2

    def test_jobs_flag_parallel_json(self, capsys):
        assert main(["e01", "e03", "--format", "json", "--jobs", "2"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [doc["experiment_id"] for doc in docs] == ["e01", "e03"]

    def test_cache_flag_round_trips(self, tmp_path, capsys):
        assert main(["e03", "--cache", str(tmp_path)]) == 0
        first = capsys.readouterr().out
        assert list(tmp_path.glob("e03--quick--seed0--*.json"))
        assert main(["e03", "--cache", str(tmp_path)]) == 0
        second = capsys.readouterr().out
        assert first == second  # replayed result renders identically

    def test_cache_path_is_a_file_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert main(["e03", "--cache", str(blocker)]) == 2
        err = capsys.readouterr().err
        assert "cannot write cache entry" in err
        assert "Traceback" not in err

    def test_output_dir_unwritable_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert main(
            ["e03", "--format", "json", "--output", str(blocker / "sub")]
        ) == 2
        err = capsys.readouterr().err
        assert "cannot write output file" in err
        assert "Traceback" not in err

    def test_profile_label_recorded(self, capsys):
        assert main(["e01", "--profile", "smoke", "--format", "json"]) == 0
        [doc] = json.loads(capsys.readouterr().out)
        assert doc["profile"] == "smoke"

    def test_full_conflicts_with_explicit_profile(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["e01", "--profile", "smoke", "--full"])
        assert excinfo.value.code == 2

    def test_registry_dict_get_works(self):
        # EXPERIMENTS must behave like the v1 literal for every dict method
        runner, description = EXPERIMENTS.get("e06")
        assert runner.id == "e06" and description


class TestSweepSubcommand:
    def write_grid(self, tmp_path, content=GRID_TOML):
        path = tmp_path / "grid.toml"
        path.write_text(content)
        return str(path)

    def test_text_output(self, tmp_path, capsys):
        assert main(["sweep", "--grid", self.write_grid(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Sweep aggregate" in out
        assert "[sweep completed: 2 points" in out

    def test_json_output(self, tmp_path, capsys):
        assert main(
            ["sweep", "--grid", self.write_grid(tmp_path), "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == SWEEP_SCHEMA_VERSION
        assert len(doc["points"]) == 2
        assert doc["points"][0]["family"] == "cycle"
        assert doc["cells"]

    def test_csv_output(self, tmp_path, capsys):
        assert main(
            ["sweep", "--grid", self.write_grid(tmp_path), "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("# table: sweep / points")
        assert "# table: sweep / cells" in out

    def test_output_dir_writes_artifacts(self, tmp_path, capsys):
        grid = self.write_grid(tmp_path)
        out_dir = tmp_path / "artifacts"
        assert main(["sweep", "--grid", grid, "--output", str(out_dir)]) == 0
        assert (out_dir / "sweep.json").is_file()
        assert (out_dir / "sweep_points.csv").is_file()
        assert (out_dir / "sweep_cells.csv").is_file()
        json.loads((out_dir / "sweep.json").read_text())

    def test_cache_round_trips(self, tmp_path, capsys):
        grid = self.write_grid(tmp_path)
        cache = str(tmp_path / "cache")
        assert main(["sweep", "--grid", grid, "--cache", cache]) == 0
        first = capsys.readouterr()
        assert main(["sweep", "--grid", grid, "--cache", cache]) == 0
        second = capsys.readouterr()
        # replayed cells render identically (the footer's cached count
        # and timing legitimately differ)
        table = lambda text: text.split("\n\n[sweep completed")[0]
        assert table(first.out) == table(second.out)
        assert "(2 cached)" in second.out
        assert "cache hit" in second.err

    def test_backend_flag_is_speed_only(self, tmp_path, capsys):
        grid = self.write_grid(tmp_path)
        outputs = []
        for backend in ("dense", "bitpacked"):
            assert main(["sweep", "--grid", grid, "--backend", backend]) == 0
            normalised = capsys.readouterr().out.replace(backend, "BACKEND")
            outputs.append(
                [
                    line.split()
                    for line in normalised.splitlines()[:-1]
                    # rulers and the blank line vary with column widths
                    if line.strip("-=" )
                ]
            )
        assert outputs[0] == outputs[1]

    def test_unknown_family_exits_2_one_line(self, tmp_path, capsys):
        grid = self.write_grid(
            tmp_path,
            '[grid]\ntopologies = ["moebius"]\nsizes = [8]\nnoises = [0.0]\n',
        )
        assert main(["sweep", "--grid", grid]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line diagnostic, no traceback
        assert "unknown topology family 'moebius'" in err
        assert "expander" in err and "torus" in err

    def test_malformed_grid_key_exits_2_one_line(self, tmp_path, capsys):
        grid = self.write_grid(
            tmp_path,
            '[grid]\ntopologies = ["cycle"]\nsizes = [8]\nnoises = [0.0]\n'
            "sizs = [1]\n",
        )
        assert main(["sweep", "--grid", grid]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "'sizs'" in err and "sizes" in err

    def test_missing_grid_file_exits_2(self, tmp_path, capsys):
        assert main(["sweep", "--grid", str(tmp_path / "nope.toml")]) == 2
        assert "cannot read grid file" in capsys.readouterr().err

    def test_invalid_toml_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("not [valid toml")
        assert main(["sweep", "--grid", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: invalid TOML")
        assert "Traceback" not in err

    def test_non_utf8_grid_exits_2(self, tmp_path, capsys):
        binary = tmp_path / "binary.toml"
        binary.write_bytes(b"\xff\xfe\x00grid")
        assert main(["sweep", "--grid", str(binary)]) == 2
        err = capsys.readouterr().err
        assert "not UTF-8" in err
        assert "Traceback" not in err

    def test_cache_path_is_a_file_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert main(
            ["sweep", "--grid", self.write_grid(tmp_path), "--cache", str(blocker)]
        ) == 2
        err = capsys.readouterr().err
        assert "cannot write cache entry" in err
        assert "Traceback" not in err

    def test_output_dir_unwritable_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert main(
            [
                "sweep",
                "--grid",
                self.write_grid(tmp_path),
                "--output",
                str(blocker / "sub"),
            ]
        ) == 2
        err = capsys.readouterr().err
        assert "cannot write output file" in err
        assert "Traceback" not in err

    def test_no_batch_flag_produces_identical_tables(self, tmp_path, capsys):
        grid = self.write_grid(tmp_path)
        assert main(["sweep", "--grid", grid, "--format", "csv"]) == 0
        batched = capsys.readouterr().out
        assert main(["sweep", "--grid", grid, "--no-batch", "--format", "csv"]) == 0
        reference = capsys.readouterr().out

        def cells_block(output):
            # the aggregate cells table excludes wall-clock columns by
            # design, so batched and per-seed runs must match verbatim
            return output.split("# table: sweep / cells\n")[1]

        assert cells_block(batched) == cells_block(reference)

    def test_list_families(self, capsys):
        assert main(["sweep", "--list-families"]) == 0
        out = capsys.readouterr().out
        for name in ("expander", "hypercube", "torus", "powerlaw"):
            assert name in out

    def test_grid_flag_required(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep"])
        assert excinfo.value.code == 2

    def test_example_grid_file_is_valid(self):
        # the README/CI grid must always stay loadable
        from pathlib import Path

        from repro.sweeps import load_grid

        repo_root = Path(__file__).resolve().parents[2]
        grid = load_grid(repo_root / "examples" / "sweep_grid.toml")
        assert len(grid.topologies) >= 3
        assert len(grid.sizes) >= 2 and len(grid.noises) >= 2


class TestServeCLI:
    def test_bad_pool_size_exits_2_one_line(self, tmp_path, capsys):
        code = main(
            ["serve", "--store-dir", str(tmp_path / "store"), "--jobs", "0"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "jobs must be >= 1" in err
        assert err.count("\n") == 1

    def test_unusable_store_dir_exits_2_one_line(self, tmp_path, capsys):
        blocker = tmp_path / "flat-file"
        blocker.write_text("in the way")
        code = main(["serve", "--store-dir", str(blocker)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot initialise job store")
        assert err.count("\n") == 1

    def test_store_dir_is_required(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve"])
        assert excinfo.value.code == 2

    def test_serve_boots_and_answers_health(self, tmp_path, capsys):
        import json as json_module
        import threading
        import urllib.request

        from repro.service import ServiceConfig, create_server

        service = create_server(
            ServiceConfig(
                host="127.0.0.1",
                port=0,
                store_dir=tmp_path / "store",
                jobs=1,
                inline=True,
            )
        )
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(f"{service.url}/v1/health") as response:
                health = json_module.loads(response.read())
            assert health["status"] == "ok"
        finally:
            service.shutdown()
            thread.join(timeout=10)
