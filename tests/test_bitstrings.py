"""Unit and property tests for the bit-string algebra (paper Section 1.5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import bitstrings as bs
from repro.errors import ConfigurationError
from repro.rng import derive_rng


class TestConstructors:
    def test_zeros_is_all_false(self):
        assert not bs.zeros(10).any()

    def test_ones_is_all_true(self):
        assert bs.ones(10).all()

    def test_zeros_length_zero_allowed(self):
        assert len(bs.zeros(0)) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            bs.zeros(-1)
        with pytest.raises(ConfigurationError):
            bs.ones(-2)

    def test_from_bits(self):
        s = bs.from_bits([1, 0, 1, 1])
        assert list(s) == [True, False, True, True]

    def test_from_01_string_roundtrip(self):
        text = "0110100"
        assert bs.to_01_string(bs.from_01_string(text)) == text

    def test_from_01_string_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            bs.from_01_string("01x0")


class TestIntConversion:
    def test_from_int_little_endian(self):
        s = bs.from_int(0b1101, 6)
        assert bs.to_01_string(s) == "101100"

    def test_roundtrip_examples(self):
        for value in [0, 1, 5, 63, 64, 2**30 + 17]:
            assert bs.to_int(bs.from_int(value, 40)) == value

    def test_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            bs.from_int(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bs.from_int(-1, 4)

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_roundtrip_property(self, value):
        assert bs.to_int(bs.from_int(value, 48)) == value


class TestWeightAndIntersection:
    def test_weight_counts_ones(self):
        assert bs.weight(bs.from_bits([1, 0, 1, 1, 0])) == 3

    def test_intersection_weight(self):
        a = bs.from_bits([1, 1, 0, 0])
        b = bs.from_bits([1, 0, 1, 0])
        assert bs.intersection_weight(a, b) == 1

    def test_d_intersects_threshold_semantics(self):
        a = bs.from_bits([1, 1, 1, 0])
        b = bs.from_bits([1, 1, 0, 0])
        assert bs.d_intersects(a, b, 2)
        assert not bs.d_intersects(a, b, 3)

    def test_d_intersects_zero_always_true(self):
        a = bs.zeros(4)
        assert bs.d_intersects(a, a, 0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            bs.intersection_weight(bs.zeros(3), bs.zeros(4))


class TestHammingAndSuperimpose:
    def test_hamming_examples(self):
        a = bs.from_bits([1, 0, 1, 0])
        b = bs.from_bits([0, 0, 1, 1])
        assert bs.hamming(a, b) == 2
        assert bs.hamming(a, a) == 0

    def test_superimpose_is_or(self):
        strings = [bs.from_bits(x) for x in ([1, 0, 0], [0, 1, 0], [0, 1, 1])]
        assert list(bs.superimpose(strings)) == [True, True, True]

    def test_superimpose_single(self):
        s = bs.from_bits([1, 0])
        assert np.array_equal(bs.superimpose([s]), s)

    def test_superimpose_does_not_mutate_inputs(self):
        a = bs.from_bits([1, 0])
        b = bs.from_bits([0, 1])
        bs.superimpose([a, b])
        assert list(a) == [True, False]

    def test_superimpose_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bs.superimpose([])

    @given(
        st.lists(
            st.lists(st.booleans(), min_size=5, max_size=5),
            min_size=1,
            max_size=6,
        )
    )
    def test_superimposition_contains_each_string(self, rows):
        strings = [bs.from_bits(row) for row in rows]
        union = bs.superimpose(strings)
        for s in strings:
            # every 1 of s appears in the union
            assert bs.intersection_weight(s, bs.complement(union)) == 0


class TestPositionsAndSubsequence:
    def test_ones_positions(self):
        s = bs.from_bits([0, 1, 0, 1, 1])
        assert list(bs.ones_positions(s)) == [1, 3, 4]

    def test_subsequence_at(self):
        s = bs.from_bits([1, 0, 1, 1, 0])
        sub = bs.subsequence_at(s, np.array([0, 2, 4]))
        assert list(sub) == [True, True, False]

    def test_subsequence_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            bs.subsequence_at(bs.zeros(3), np.array([3]))

    def test_complement(self):
        s = bs.from_bits([1, 0])
        assert list(bs.complement(s)) == [False, True]


class TestRandomSampling:
    def test_constant_weight_has_exact_weight(self):
        rng = derive_rng(0, "test")
        for w in [0, 1, 7, 20]:
            s = bs.random_constant_weight(rng, 20, w)
            assert bs.weight(s) == w

    def test_constant_weight_invalid_rejected(self):
        rng = derive_rng(0, "test")
        with pytest.raises(ConfigurationError):
            bs.random_constant_weight(rng, 5, 6)
        with pytest.raises(ConfigurationError):
            bs.random_constant_weight(rng, 5, -1)

    def test_random_bitstring_length(self):
        rng = derive_rng(0, "test")
        assert len(bs.random_bitstring(rng, 33)) == 33

    def test_random_bitstring_depends_on_rng_state(self):
        rng1 = derive_rng(1, "a")
        rng2 = derive_rng(1, "a")
        assert np.array_equal(
            bs.random_bitstring(rng1, 64), bs.random_bitstring(rng2, 64)
        )
