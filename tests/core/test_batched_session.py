"""Tests for BatchedSession and its vectorised-exact kernels.

The contract: outcome ``r`` of a batched round is *bit-identical* —
decoded multisets, accepted sets, error counters, collision flags — to
what the ``r``-th standalone :class:`BroadcastSession` returns on the
same messages, for every policy, channel, backend and round offset.  The
fast kernels (schedule building, phase-1 threshold decode, phase-2
nearest-codeword decode) are additionally tested value-for-value against
their reference implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoder import build_phase_schedules
from repro.core.decoder import phase1_decode, phase2_decode
from repro.core.parameters import CandidatePolicy, SimulationParameters
from repro.core.round_simulator import (
    BatchedSession,
    BroadcastSession,
    _DISTANCE_ROW_CACHE_LIMIT,
    _build_phase_schedules_fast,
    _phase1_decode_fast,
    _phase2_decode_fast,
)
from repro.errors import ConfigurationError
from repro.graphs import Topology, path_graph, random_regular_graph, star_graph
from repro.lru import LRUDict
from repro.rng import derive_rng, random_bits


def assert_outcomes_equal(a, b):
    """Field-by-field equality of two RoundOutcomes."""
    assert a.decoded == b.decoded
    assert np.array_equal(a.per_node_success, b.per_node_success)
    assert a.success == b.success
    assert a.beep_rounds_used == b.beep_rounds_used
    assert a.phase1_errors == b.phase1_errors
    assert a.phase2_errors == b.phase2_errors
    assert a.r_collision == b.r_collision
    assert a.accepted_sets == b.accepted_sets


def random_messages(rng, n, message_bits, hole_every=0):
    """A per-node message list, with None holes when hole_every > 0."""
    return [
        None
        if hole_every and v % hole_every == 0
        else random_bits(rng, message_bits)
        for v in range(n)
    ]


class TestBitIdentityWithPerSeedSessions:
    @pytest.mark.parametrize("backend", ["dense", "bitpacked"])
    @pytest.mark.parametrize("eps", [0.0, 0.1])
    def test_multi_round_chaining(self, backend, eps):
        topology = Topology(random_regular_graph(12, 3, seed=7))
        params = SimulationParameters.for_network(12, 3, eps=eps)
        seeds = [11, 23, 37]
        batched = BatchedSession(topology, params, seeds, backend=backend)
        singles = [
            BroadcastSession(topology, params, seed, backend=backend)
            for seed in seeds
        ]
        rng = derive_rng(0, "messages")
        for round_index in range(3):
            batch = [
                random_messages(rng, 12, params.message_bits, hole_every=round_index + 3)
                for _ in seeds
            ]
            outcomes = batched.run_round(batch)
            for replica, (single, messages) in enumerate(zip(singles, batch)):
                assert_outcomes_equal(outcomes[replica], single.run_round(messages))

    @pytest.mark.parametrize(
        "policy",
        [CandidatePolicy.ORACLE_WITH_DECOYS, CandidatePolicy.IN_FLIGHT],
    )
    def test_policies(self, policy):
        topology = Topology(star_graph(8))
        params = SimulationParameters.for_network(8, 7, eps=0.05)
        seeds = [1, 2]
        batched = BatchedSession(
            topology, params, seeds, policy=policy, backend="bitpacked"
        )
        singles = [
            BroadcastSession(topology, params, seed, policy=policy, backend="bitpacked")
            for seed in seeds
        ]
        rng = derive_rng(3, "messages")
        batch = [random_messages(rng, 8, params.message_bits) for _ in seeds]
        for replica, outcome in enumerate(batched.run_round(batch)):
            assert_outcomes_equal(outcome, singles[replica].run_round(batch[replica]))

    def test_exhaustive_policy(self):
        topology = Topology(path_graph(4))
        params = SimulationParameters(message_bits=2, max_degree=2, eps=0.0, c=3)
        seeds = [5, 9]
        batched = BatchedSession(
            topology, params, seeds, policy=CandidatePolicy.EXHAUSTIVE
        )
        singles = [
            BroadcastSession(topology, params, seed, policy=CandidatePolicy.EXHAUSTIVE)
            for seed in seeds
        ]
        batch = [[1, None, 3, 0], [2, 2, None, 1]]
        for replica, outcome in enumerate(batched.run_round(batch)):
            assert_outcomes_equal(outcome, singles[replica].run_round(batch[replica]))

    def test_run_many_and_reset(self):
        topology = Topology(path_graph(5))
        params = SimulationParameters.for_network(5, 2, eps=0.0)
        batched = BatchedSession(topology, params, [4, 8])
        rng = derive_rng(1, "messages")
        rounds = [
            [random_messages(rng, 5, params.message_bits) for _ in range(2)]
            for _ in range(2)
        ]
        first = batched.run_many(rounds)
        batched.reset()
        again = batched.run_many(rounds)
        for round_outcomes, replay in zip(first, again):
            for outcome, outcome_again in zip(round_outcomes, replay):
                assert_outcomes_equal(outcome, outcome_again)

    def test_explicit_round_offset(self):
        topology = Topology(path_graph(5))
        params = SimulationParameters.for_network(5, 2, eps=0.1)
        batched = BatchedSession(topology, params, [4, 8])
        single = BroadcastSession(topology, params, 4)
        messages = [[1, 2, 3, 0, 1], [2, 1, 0, 3, 2]]
        offset = 5000
        outcomes = batched.run_round(messages, round_offset=offset)
        assert_outcomes_equal(
            outcomes[0], single.run_round(messages[0], round_offset=offset)
        )


class TestBatchedSessionValidation:
    def test_needs_seeds(self):
        topology = Topology(path_graph(4))
        params = SimulationParameters.for_network(4, 2, eps=0.0)
        with pytest.raises(ConfigurationError):
            BatchedSession(topology, params, [])

    def test_replica_count_enforced(self):
        topology = Topology(path_graph(4))
        params = SimulationParameters.for_network(4, 2, eps=0.0)
        batched = BatchedSession(topology, params, [0, 1])
        with pytest.raises(ConfigurationError):
            batched.run_round([[1, 2, 3, 0]])

    def test_properties(self):
        topology = Topology(path_graph(4))
        params = SimulationParameters.for_network(4, 2, eps=0.0)
        batched = BatchedSession(topology, params, [0, 1, 2])
        assert batched.num_replicas == 3
        assert batched.seeds == (0, 1, 2)
        assert batched.topology is topology
        assert batched.params is params
        assert len(batched.sessions) == 3


class TestFastKernels:
    def test_schedule_builder_matches_reference(self):
        params = SimulationParameters.for_network(16, 4, eps=0.05)
        codes = params.combined_code(seed=13)
        rng = derive_rng(7, "inputs")
        n = 16
        r_values = [random_bits(rng, params.r_bits) for _ in range(n)]
        messages = [
            None if v % 5 == 0 else random_bits(rng, params.message_bits)
            for v in range(n)
        ]
        reference = build_phase_schedules(codes, r_values, messages)
        fast = _build_phase_schedules_fast(
            codes, r_values, messages, LRUDict(64)
        )
        assert np.array_equal(reference[0], fast[0])
        assert np.array_equal(reference[1], fast[1])

    def test_schedule_builder_all_silent(self):
        params = SimulationParameters.for_network(4, 2, eps=0.0)
        codes = params.combined_code(seed=1)
        fast = _build_phase_schedules_fast(codes, [0, 1, 2, 3], [None] * 4, LRUDict(8))
        assert not fast[0].any() and not fast[1].any()

    def test_phase1_fast_matches_reference(self):
        params = SimulationParameters.for_network(12, 3, eps=0.1)
        codes = params.combined_code(seed=3)
        rng = derive_rng(9, "heard")
        heard = rng.random((12, codes.length)) < 0.4
        candidates = [random_bits(rng, params.r_bits) for _ in range(20)]
        reference = phase1_decode(codes.beep_code, heard, candidates, params.eps)
        fast = _phase1_decode_fast(codes.beep_code, heard, candidates, params.eps)
        assert reference == fast
        assert _phase1_decode_fast(codes.beep_code, heard, [], params.eps) == [
            set() for _ in range(12)
        ]

    def test_phase2_fast_matches_reference(self):
        params = SimulationParameters.for_network(12, 3, eps=0.1)
        codes = params.combined_code(seed=5)
        rng = derive_rng(11, "heard2")
        heard = rng.random((12, codes.length)) < 0.5
        r_pool = [random_bits(rng, params.r_bits) for _ in range(8)]
        accepted = [
            {r_pool[int(i)] for i in rng.choice(8, size=int(rng.integers(0, 4)), replace=False)}
            for _ in range(12)
        ]
        message_candidates = sorted(
            {random_bits(rng, params.message_bits) for _ in range(10)}
        )
        reference = phase2_decode(codes, heard, accepted, message_candidates)
        fast = _phase2_decode_fast(codes, heard, accepted, message_candidates)
        assert reference == fast

    def test_phase2_fast_single_candidate_margin(self):
        params = SimulationParameters.for_network(6, 2, eps=0.0)
        codes = params.combined_code(seed=2)
        rng = derive_rng(13, "heard3")
        heard = rng.random((6, codes.length)) < 0.5
        accepted = [{random_bits(rng, params.r_bits)} for _ in range(6)]
        reference = phase2_decode(codes, heard, accepted, [3])
        fast = _phase2_decode_fast(codes, heard, accepted, [3])
        assert reference == fast


class TestDistanceRowCacheBound:
    def test_session_distance_rows_stay_bounded(self):
        """Regression: the per-session distance-row cache is LRU-bounded.

        Rounds with a stream of fresh messages (plus fresh decoys) must
        not grow the cache past its limit — recurring messages stay
        resident, one-shot rows get evicted.
        """
        topology = Topology(path_graph(6))
        params = SimulationParameters.for_network(6, 2, eps=0.0)
        session = BroadcastSession(topology, params, 0)
        assert session._distance_rows.limit == _DISTANCE_ROW_CACHE_LIMIT
        # Shrink the bound so a short run exercises eviction.
        session._distance_rows.limit = 8
        rng = derive_rng(17, "messages")
        for _ in range(6):
            session.run_round(
                [random_bits(rng, params.message_bits) for _ in range(6)]
            )
        assert len(session._distance_rows) <= 8

    def test_batched_replicas_have_independent_bounded_caches(self):
        topology = Topology(path_graph(6))
        params = SimulationParameters.for_network(6, 2, eps=0.0)
        batched = BatchedSession(topology, params, [0, 1])
        rng = derive_rng(19, "messages")
        for _ in range(3):
            batched.run_round(
                [
                    [random_bits(rng, params.message_bits) for _ in range(6)]
                    for _ in range(2)
                ]
            )
        for session in batched.sessions:
            assert len(session._distance_rows) <= _DISTANCE_ROW_CACHE_LIMIT
            assert len(session._distance_rows) > 0
