"""Tests for the Theorem 11 transpiler (BeepSimulator)."""

from __future__ import annotations

import pytest

from repro.congest import BroadcastCongestAlgorithm, BroadcastCongestNetwork
from repro.core import BeepSimulator, SimulationParameters
from repro.errors import ConfigurationError
from repro.graphs import Topology, path_graph, random_regular_graph


class GossipSum(BroadcastCongestAlgorithm):
    """Each round, broadcast (own id + round); sum everything heard for
    ``horizon`` rounds.  Deterministic given deliveries — ideal for testing
    that simulated executions match native ones."""

    def __init__(self, horizon: int = 3):
        self._horizon = horizon
        self._total = 0
        self._rounds = 0

    def broadcast(self, round_index):
        return (self.ctx.node_id + round_index) % 61

    def receive(self, round_index, messages):
        self._total += sum(messages)
        self._rounds += 1

    @property
    def finished(self):
        return self._rounds >= self._horizon

    def output(self):
        return self._total


class TestAgainstNativeEngine:
    def test_simulated_run_matches_native_noiseless(self, regular12):
        """Theorem 11's fidelity claim: when every round decodes, the
        simulated execution is identical to the Broadcast CONGEST one."""
        params = SimulationParameters(message_bits=6, max_degree=3, eps=0.0, c=3)
        native = BroadcastCongestNetwork(regular12, message_bits=6).run(
            [GossipSum() for _ in range(12)], max_rounds=10
        )
        simulated = BeepSimulator(regular12, params=params, seed=4).run_broadcast_congest(
            [GossipSum() for _ in range(12)], max_rounds=10
        )
        assert simulated.outputs == native.outputs
        assert simulated.finished
        assert simulated.stats.failed_rounds == 0

    def test_simulated_run_matches_native_noisy(self, regular12):
        params = SimulationParameters(message_bits=6, max_degree=3, eps=0.1, c=5)
        native = BroadcastCongestNetwork(regular12, message_bits=6).run(
            [GossipSum() for _ in range(12)], max_rounds=10
        )
        simulated = BeepSimulator(regular12, params=params, seed=4).run_broadcast_congest(
            [GossipSum() for _ in range(12)], max_rounds=10
        )
        assert simulated.stats.failed_rounds == 0
        assert simulated.outputs == native.outputs


class TestAccounting:
    def test_overhead_statistics(self, regular12):
        params = SimulationParameters(message_bits=6, max_degree=3, eps=0.0, c=3)
        result = BeepSimulator(regular12, params=params, seed=1).run_broadcast_congest(
            [GossipSum(horizon=4) for _ in range(12)], max_rounds=10
        )
        assert result.stats.simulated_rounds == 4
        assert result.stats.beep_rounds == 4 * params.rounds_per_simulated_round
        assert result.stats.overhead == params.rounds_per_simulated_round
        assert result.stats.success_rate == 1.0

    def test_round_budget_respected(self, regular12):
        params = SimulationParameters(message_bits=6, max_degree=3, eps=0.0, c=3)
        result = BeepSimulator(regular12, params=params, seed=1).run_broadcast_congest(
            [GossipSum(horizon=100) for _ in range(12)], max_rounds=3
        )
        assert not result.finished
        assert result.stats.simulated_rounds == 3


class TestConstruction:
    def test_default_params_derived(self, regular12):
        simulator = BeepSimulator(regular12, eps=0.1, seed=0)
        assert simulator.params.max_degree == regular12.max_degree
        assert simulator.params.eps == 0.1

    def test_too_small_network_rejected(self):
        t = Topology(path_graph(1))
        with pytest.raises(ConfigurationError):
            BeepSimulator(t)

    def test_duplicate_ids_rejected(self, regular12):
        with pytest.raises(ConfigurationError):
            BeepSimulator(regular12, ids=[0] * 12)

    def test_algorithm_count_checked(self, regular12):
        simulator = BeepSimulator(regular12, seed=0)
        with pytest.raises(ConfigurationError):
            simulator.run_broadcast_congest([GossipSum()], max_rounds=1)

    def test_message_budget_enforced(self, regular12):
        params = SimulationParameters(message_bits=4, max_degree=3, eps=0.0, c=3)

        class TooWide(BroadcastCongestAlgorithm):
            def broadcast(self, round_index):
                return 1 << 10

            def receive(self, round_index, messages):
                pass

        simulator = BeepSimulator(regular12, params=params, seed=0)
        from repro.errors import MessageSizeError

        with pytest.raises(MessageSizeError):
            simulator.run_broadcast_congest(
                [TooWide() for _ in range(12)], max_rounds=1
            )
