"""Tests for simulation round/failure accounting."""

from __future__ import annotations

import pytest

from repro.core import SimulationStats


class TestSimulationStats:
    def test_initial_state(self):
        stats = SimulationStats()
        assert stats.simulated_rounds == 0
        assert stats.success_rate == 1.0
        assert stats.overhead == 0.0

    def test_record_accumulates(self):
        stats = SimulationStats()
        stats.record_round(
            beep_rounds=100,
            success=True,
            phase1_errors=0,
            phase2_errors=0,
            r_collision=False,
        )
        stats.record_round(
            beep_rounds=100,
            success=False,
            phase1_errors=2,
            phase2_errors=1,
            r_collision=True,
        )
        assert stats.simulated_rounds == 2
        assert stats.beep_rounds == 200
        assert stats.failed_rounds == 1
        assert stats.phase1_node_errors == 2
        assert stats.phase2_node_errors == 1
        assert stats.r_collisions == 1

    def test_success_rate(self):
        stats = SimulationStats()
        for success in (True, True, False, True):
            stats.record_round(10, success, 0, 0, False)
        assert stats.success_rate == pytest.approx(0.75)

    def test_overhead_average(self):
        stats = SimulationStats()
        stats.record_round(100, True, 0, 0, False)
        stats.record_round(300, True, 0, 0, False)
        assert stats.overhead == pytest.approx(200.0)
