"""Tests for Algorithm 1 (simulate_broadcast_round)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CandidatePolicy, SimulationParameters, simulate_broadcast_round
from repro.core.round_simulator import _with_message_decoys
from repro.errors import ConfigurationError
from repro.graphs import Topology, path_graph, random_regular_graph, star_graph
from repro.rng import derive_rng


class TestNoiselessRound:
    def test_all_nodes_decode_neighbors(self, regular12, small_params):
        messages = [v % 64 for v in range(12)]
        outcome = simulate_broadcast_round(regular12, messages, small_params, seed=1)
        assert outcome.success
        assert outcome.phase1_errors == 0
        assert outcome.phase2_errors == 0
        for v in range(12):
            expected = sorted(messages[int(u)] for u in regular12.neighbors[v])
            assert outcome.decoded[v] == expected

    def test_beep_rounds_is_twice_code_length(self, regular12, small_params):
        outcome = simulate_broadcast_round(
            regular12, [1] * 12, small_params, seed=1
        )
        assert outcome.beep_rounds_used == 2 * small_params.beep_code_length

    def test_duplicate_messages_kept_as_multiset(self, star8):
        params = SimulationParameters(message_bits=6, max_degree=7, eps=0.0, c=3)
        messages = [5] * 8  # every leaf sends 5
        outcome = simulate_broadcast_round(star8, messages, params, seed=2)
        assert outcome.success
        assert outcome.decoded[0] == [5] * 7  # hub hears seven copies

    def test_silent_nodes_not_decoded(self, path6, small_params):
        messages = [10, None, 30, None, 50, 60]
        outcome = simulate_broadcast_round(path6, messages, small_params, seed=3)
        assert outcome.success
        assert outcome.decoded[0] == []  # only neighbour (1) was silent
        assert outcome.decoded[1] == [10, 30]

    def test_all_silent(self, path6, small_params):
        outcome = simulate_broadcast_round(
            path6, [None] * 6, small_params, seed=3
        )
        assert outcome.success
        assert all(d == [] for d in outcome.decoded)

    def test_deterministic_under_seed(self, regular12, small_params):
        messages = [v % 64 for v in range(12)]
        a = simulate_broadcast_round(regular12, messages, small_params, seed=9)
        b = simulate_broadcast_round(regular12, messages, small_params, seed=9)
        assert a.decoded == b.decoded
        assert np.array_equal(a.per_node_success, b.per_node_success)


class TestNoisyRound:
    def test_high_success_at_practical_constants(self, regular12, noisy_params):
        messages = [v % 64 for v in range(12)]
        successes = sum(
            simulate_broadcast_round(
                regular12, messages, noisy_params, seed=s
            ).success
            for s in range(8)
        )
        assert successes >= 7

    def test_degraded_at_undersized_constants(self, regular12):
        """With c too small for the noise level, decoding visibly degrades —
        the redundancy really is doing the work."""
        params = SimulationParameters(message_bits=6, max_degree=3, eps=0.2, c=3)
        messages = [v % 64 for v in range(12)]
        failures = sum(
            not simulate_broadcast_round(regular12, messages, params, seed=s).success
            for s in range(6)
        )
        assert failures >= 1


class TestCandidatePolicies:
    def test_exhaustive_matches_oracle_small(self):
        topology = Topology(path_graph(4))
        params = SimulationParameters(message_bits=3, max_degree=2, eps=0.0, c=3)
        messages = [1, 2, 3, 4]
        exhaustive = simulate_broadcast_round(
            topology,
            messages,
            params,
            seed=5,
            policy=CandidatePolicy.EXHAUSTIVE,
        )
        oracle = simulate_broadcast_round(
            topology,
            messages,
            params,
            seed=5,
            policy=CandidatePolicy.ORACLE_WITH_DECOYS,
        )
        assert exhaustive.decoded == oracle.decoded
        assert exhaustive.success and oracle.success

    def test_in_flight_policy(self, regular12, small_params):
        outcome = simulate_broadcast_round(
            regular12,
            [v % 64 for v in range(12)],
            small_params,
            seed=5,
            policy=CandidatePolicy.IN_FLIGHT,
        )
        assert outcome.success

    def test_exhaustive_refuses_large_spaces(self, regular12):
        params = SimulationParameters(message_bits=16, max_degree=3, eps=0.0, c=3)
        with pytest.raises(ConfigurationError):
            simulate_broadcast_round(
                regular12,
                [1] * 12,
                params,
                seed=0,
                policy=CandidatePolicy.EXHAUSTIVE,
            )

    def test_decoys_do_not_break_decoding(self, regular12, small_params):
        outcome = simulate_broadcast_round(
            regular12,
            [v % 64 for v in range(12)],
            small_params,
            seed=5,
            num_decoys=64,
        )
        assert outcome.success


class TestValidation:
    def test_message_count_checked(self, path6, small_params):
        with pytest.raises(ConfigurationError):
            simulate_broadcast_round(path6, [1, 2], small_params, seed=0)

    def test_message_width_checked(self, path6, small_params):
        with pytest.raises(ConfigurationError):
            simulate_broadcast_round(
                path6, [1 << 20] + [1] * 5, small_params, seed=0
            )

    def test_degree_bound_checked(self, star8, small_params):
        # star has Delta = 7 > params.max_degree = 3
        with pytest.raises(ConfigurationError):
            simulate_broadcast_round(star8, [1] * 8, small_params, seed=0)

    def test_accepted_sets_exclude_own_codeword(self, path6, small_params):
        outcome = simulate_broadcast_round(
            path6, [1, 2, 3, 4, 5, 6], small_params, seed=7
        )
        # each node's accepted set has exactly its neighbours' entries
        for v in range(6):
            assert len(outcome.accepted_sets[v]) == len(path6.neighbors[v])


class TestMessageDecoys:
    """Budget behaviour of the phase-2 decoy enumeration, especially in
    message spaces too small to host the requested number of decoys."""

    def test_space_exhausted_fills_entire_domain(self):
        # 2-bit space: 3 real candidates leave room for exactly 1 decoy
        result = _with_message_decoys(
            [0, 1, 2], message_bits=2, num_decoys=16, rng=derive_rng(0, "t")
        )
        assert result == [0, 1, 2, 3]

    def test_full_space_is_a_no_op(self):
        result = _with_message_decoys(
            [0, 1], message_bits=1, num_decoys=16, rng=derive_rng(0, "t")
        )
        assert result == [0, 1]

    def test_zero_decoys_requested(self):
        result = _with_message_decoys(
            [3, 5], message_bits=4, num_decoys=0, rng=derive_rng(0, "t")
        )
        assert result == [3, 5]

    def test_candidates_preserved_and_sorted(self):
        result = _with_message_decoys(
            [9, 2], message_bits=6, num_decoys=4, rng=derive_rng(1, "t")
        )
        assert {9, 2} <= set(result)
        assert result == sorted(set(result))
        assert len(result) == 6

    def test_decoys_within_message_space(self):
        bits = 3
        result = _with_message_decoys(
            [0], message_bits=bits, num_decoys=5, rng=derive_rng(2, "t")
        )
        assert all(0 <= value < (1 << bits) for value in result)
        assert len(result) == 6  # 1 real + 5 decoys fit in an 8-value space

    def test_attempt_cap_terminates_with_tight_space(self):
        # 7 of 8 values taken: one decoy slot, mostly colliding draws.  The
        # attempt cap (20 * num_decoys) guarantees termination either way.
        result = _with_message_decoys(
            list(range(7)), message_bits=3, num_decoys=1, rng=derive_rng(3, "t")
        )
        assert set(result) >= set(range(7))
        assert len(result) <= 8

    def test_simulated_round_in_tiny_message_space(self, path6):
        """End-to-end: a round whose message space cannot host the default
        16 decoys still runs and decodes."""
        params = SimulationParameters(message_bits=2, max_degree=3, eps=0.0, c=3)
        messages = [v % 4 for v in range(6)]
        outcome = simulate_broadcast_round(
            path6, messages, params, seed=11, num_decoys=16
        )
        assert outcome.success
