"""Tests for the Algorithm 1 encoder and the Section 4 decoders."""

from __future__ import annotations

import numpy as np
import pytest

from repro import bitstrings as bs
from repro.codes import BeepCode, CombinedCode, DistanceCode
from repro.core import build_phase_schedules, phase1_decode, phase2_decode
from repro.core.decoder import DecodedMessage
from repro.errors import ConfigurationError


def make_codes(seed: int = 0) -> CombinedCode:
    beep = BeepCode(input_bits=6, k=3, c=4, seed=seed)
    distance = DistanceCode(
        input_bits=5, delta=1.0 / 3.0, length=beep.weight, seed=seed
    )
    return CombinedCode(beep_code=beep, distance_code=distance)


class TestEncoder:
    def test_schedule_shapes(self):
        codes = make_codes()
        p1, p2 = build_phase_schedules(codes, [1, 2, 3], [4, 5, 6])
        assert p1.shape == (3, codes.length)
        assert p2.shape == (3, codes.length)

    def test_phase1_rows_are_beep_codewords(self):
        codes = make_codes()
        p1, _ = build_phase_schedules(codes, [7, 9], [1, 2])
        assert np.array_equal(p1[0], codes.beep_code.encode_int(7))
        assert np.array_equal(p1[1], codes.beep_code.encode_int(9))

    def test_phase2_rows_are_combined_codewords(self):
        codes = make_codes()
        _, p2 = build_phase_schedules(codes, [7, 9], [1, 2])
        assert np.array_equal(p2[0], codes.encode(7, 1))

    def test_silent_nodes_all_zero(self):
        codes = make_codes()
        p1, p2 = build_phase_schedules(codes, [7, 9], [None, 2])
        assert not p1[0].any()
        assert not p2[0].any()
        assert p1[1].any()

    def test_length_mismatch_rejected(self):
        codes = make_codes()
        with pytest.raises(ConfigurationError):
            build_phase_schedules(codes, [1, 2], [3])


class TestPhase1Decode:
    def test_recovers_sets_noiseless(self):
        codes = make_codes(seed=1)
        beep = codes.beep_code
        members = [3, 17, 40]
        union = bs.superimpose([beep.encode_int(v) for v in members])
        heard = np.stack([union, beep.encode_int(3)])
        decoded = phase1_decode(beep, heard, list(range(64)), eps=0.0)
        assert decoded[0] == set(members)
        assert decoded[1] == {3}

    def test_matches_scalar_decoder(self):
        """The vectorised decoder equals BeepCode.decode_superimposition."""
        codes = make_codes(seed=2)
        beep = codes.beep_code
        rng = np.random.default_rng(5)
        union = bs.superimpose(
            [beep.encode_int(int(v)) for v in rng.choice(64, 3, replace=False)]
        )
        noisy = union ^ (rng.random(beep.length) < 0.1)
        candidates = list(range(64))
        vectorised = phase1_decode(beep, noisy[None, :], candidates, eps=0.1)[0]
        scalar = beep.decode_superimposition(noisy, eps=0.1, candidates=candidates)
        assert vectorised == scalar

    def test_empty_candidates(self):
        codes = make_codes()
        heard = np.zeros((2, codes.length), dtype=bool)
        assert phase1_decode(codes.beep_code, heard, [], eps=0.0) == [set(), set()]

    def test_wrong_width_rejected(self):
        codes = make_codes()
        with pytest.raises(ConfigurationError):
            phase1_decode(
                codes.beep_code, np.zeros((2, 5), dtype=bool), [1], eps=0.0
            )


class TestPhase2Decode:
    def test_single_sender_roundtrip(self):
        codes = make_codes(seed=3)
        word = codes.encode(12, 19)
        heard = word[None, :]
        result = phase2_decode(codes, heard, [{12}], list(range(32)))
        assert result[0][12].message == 19
        assert result[0][12].distance == 0

    def test_two_senders_roundtrip(self):
        codes = make_codes(seed=3)
        word = codes.encode(12, 19) | codes.encode(44, 7)
        result = phase2_decode(codes, word[None, :], [{12, 44}], list(range(32)))
        assert result[0][12].message == 19
        assert result[0][44].message == 7

    def test_margin_reported(self):
        codes = make_codes(seed=3)
        word = codes.encode(5, 3)
        result = phase2_decode(codes, word[None, :], [{5}], [3, 9])
        assert isinstance(result[0][5], DecodedMessage)
        assert result[0][5].margin > 0

    def test_tie_breaks_to_smaller_message(self):
        codes = make_codes(seed=3)
        heard = np.zeros((1, codes.length), dtype=bool)
        # candidates with identical codewords are impossible, but equal
        # distance ties can occur; craft one with a single candidate pair
        # by decoding pure noise and checking determinism instead
        a = phase2_decode(codes, heard, [{5}], [9, 3])
        b = phase2_decode(codes, heard, [{5}], [3, 9])
        assert a[0][5].message == b[0][5].message

    def test_mismatched_accepted_length_rejected(self):
        codes = make_codes()
        with pytest.raises(ConfigurationError):
            phase2_decode(
                codes, np.zeros((2, codes.length), dtype=bool), [set()], [1]
            )

    def test_empty_message_candidates_rejected(self):
        codes = make_codes()
        with pytest.raises(ConfigurationError):
            phase2_decode(
                codes, np.zeros((1, codes.length), dtype=bool), [set()], []
            )

    def test_noise_tolerated(self):
        codes = make_codes(seed=4)
        rng = np.random.default_rng(8)
        word = codes.encode(12, 19) | codes.encode(44, 7)
        noisy = word ^ (rng.random(codes.length) < 0.08)
        result = phase2_decode(codes, noisy[None, :], [{12, 44}], list(range(32)))
        assert result[0][12].message == 19
        assert result[0][44].message == 7
