"""Tests for B-bit Local Broadcast (Definition 13, Lemma 15)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    run_local_broadcast_bc,
    run_local_broadcast_congest,
)
from repro.graphs import local_broadcast_hard_instance


class TestBroadcastCongestSolution:
    @pytest.mark.parametrize("delta,bits", [(2, 4), (3, 8), (4, 12), (5, 20)])
    def test_correct_and_round_exact(self, delta, bits):
        instance = local_broadcast_hard_instance(
            delta, 2 * delta + 1, bits, seed=3
        )
        report = run_local_broadcast_bc(instance)
        assert report.correct
        assert report.rounds_used == report.predicted_rounds

    def test_round_count_formula(self):
        # Lemma 15: Delta * ceil(B / payload)
        instance = local_broadcast_hard_instance(3, 8, 10, seed=1)
        budget = 2 * 3 + 4  # id_bits = 3 for ids < 8, payload = 4
        report = run_local_broadcast_bc(instance, budget_bits=budget)
        assert report.predicted_rounds == 3 * math.ceil(10 / 4)
        assert report.correct

    def test_isolated_nodes_output_empty(self):
        instance = local_broadcast_hard_instance(2, 10, 4, seed=2)
        report = run_local_broadcast_bc(instance)
        assert report.correct  # includes isolated nodes outputting {}


class TestCongestSolution:
    @pytest.mark.parametrize("delta,bits", [(2, 4), (3, 8), (4, 16)])
    def test_correct_and_round_exact(self, delta, bits):
        instance = local_broadcast_hard_instance(
            delta, 2 * delta + 1, bits, seed=3
        )
        report = run_local_broadcast_congest(instance)
        assert report.correct
        assert report.rounds_used == report.predicted_rounds

    def test_rounds_independent_of_delta(self):
        # CONGEST solves it in ceil(B / budget) regardless of Delta
        reports = [
            run_local_broadcast_congest(
                local_broadcast_hard_instance(delta, 2 * delta + 1, 12, seed=1),
                budget_bits=4,
            )
            for delta in (2, 4, 6)
        ]
        assert {r.predicted_rounds for r in reports} == {3}
        assert all(r.correct for r in reports)

    def test_bc_needs_delta_factor_more(self):
        # the Delta-factor separation that drives Corollary 16
        instance = local_broadcast_hard_instance(6, 13, 12, seed=1)
        bc = run_local_broadcast_bc(instance)
        congest = run_local_broadcast_congest(instance)
        assert bc.rounds_used >= 6 * congest.rounds_used / 4
