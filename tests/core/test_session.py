"""Tests for BroadcastSession: exact reproduction of standalone rounds plus
one-time construction of codes, channel, and decoder matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes.beep import BeepCode
from repro.codes.distance import DistanceCode
from repro.core import (
    BroadcastSession,
    CandidatePolicy,
    SimulationParameters,
    simulate_broadcast_round,
)
from repro.engine import BitpackedBackend, DenseBackend
from repro.errors import ConfigurationError
from repro.graphs import Topology, path_graph


def _assert_outcomes_equal(actual, expected):
    assert actual.decoded == expected.decoded
    assert np.array_equal(actual.per_node_success, expected.per_node_success)
    assert actual.success == expected.success
    assert actual.beep_rounds_used == expected.beep_rounds_used
    assert actual.phase1_errors == expected.phase1_errors
    assert actual.phase2_errors == expected.phase2_errors
    assert actual.r_collision == expected.r_collision
    assert actual.accepted_sets == expected.accepted_sets


def _message_rounds(n, count):
    return [
        [(round_index * 7 + v * 3) % 64 for v in range(n)]
        for round_index in range(count)
    ] + [[None if v % 2 else (v % 64) for v in range(n)]]


class TestRunManyReproducesStandaloneCalls:
    def test_noiseless(self, regular12, small_params):
        rounds = _message_rounds(12, 3)
        session = BroadcastSession(regular12, small_params, seed=3)
        outcomes = session.run_many(rounds)
        offset = 0
        for messages, outcome in zip(rounds, outcomes):
            reference = simulate_broadcast_round(
                regular12, messages, small_params, seed=3, round_offset=offset
            )
            offset += reference.beep_rounds_used
            _assert_outcomes_equal(outcome, reference)
        assert session.next_round_offset == offset

    def test_noisy(self, regular12, noisy_params):
        rounds = _message_rounds(12, 1)
        session = BroadcastSession(regular12, noisy_params, seed=5)
        outcomes = session.run_many(rounds)
        offset = 0
        for messages, outcome in zip(rounds, outcomes):
            reference = simulate_broadcast_round(
                regular12, messages, noisy_params, seed=5, round_offset=offset
            )
            offset += reference.beep_rounds_used
            _assert_outcomes_equal(outcome, reference)

    def test_backends_agree_across_session_rounds(self, regular12, noisy_params):
        rounds = _message_rounds(12, 1)
        packed = BroadcastSession(
            regular12, noisy_params, seed=8, backend=BitpackedBackend()
        ).run_many(rounds)
        dense = BroadcastSession(
            regular12, noisy_params, seed=8, backend=DenseBackend()
        ).run_many(rounds)
        for a, b in zip(packed, dense):
            _assert_outcomes_equal(a, b)

    def test_explicit_offset_override(self, regular12, small_params):
        session = BroadcastSession(regular12, small_params, seed=3)
        messages = [v % 64 for v in range(12)]
        b2 = 2 * session.codes.length
        skipped = session.run_round(messages, round_offset=5 * b2)
        reference = simulate_broadcast_round(
            regular12, messages, small_params, seed=3, round_offset=5 * b2
        )
        _assert_outcomes_equal(skipped, reference)
        assert session.next_round_offset == 6 * b2

    def test_reset_rewinds(self, regular12, small_params):
        session = BroadcastSession(regular12, small_params, seed=3)
        messages = [v % 64 for v in range(12)]
        first = session.run_round(messages)
        session.reset()
        again = session.run_round(messages)
        _assert_outcomes_equal(again, first)
        with pytest.raises(ConfigurationError):
            session.reset(-1)

    def test_run_many_with_offset_matches_fresh_session(
        self, regular12, small_params
    ):
        rounds = _message_rounds(12, 2)
        fresh = BroadcastSession(regular12, small_params, seed=4).run_many(rounds)
        reused = BroadcastSession(regular12, small_params, seed=4)
        reused.run_round([1] * 12)  # advance the offset
        rewound = reused.run_many(rounds, round_offset=0)
        for a, b in zip(fresh, rewound):
            _assert_outcomes_equal(a, b)


class TestAmortisation:
    def test_codes_and_channel_built_once(
        self, regular12, small_params, monkeypatch
    ):
        calls: list[int] = []
        original = SimulationParameters.combined_code

        def counting(self, seed):
            calls.append(seed)
            return original(self, seed)

        monkeypatch.setattr(SimulationParameters, "combined_code", counting)
        session = BroadcastSession(regular12, small_params, seed=3)
        channel = session.channel
        codes = session.codes
        session.run_many(_message_rounds(12, 2))
        assert len(calls) == 1
        assert session.channel is channel and session.codes is codes

    def test_exhaustive_matrices_built_once(self, monkeypatch):
        topology = Topology(path_graph(4))
        params = SimulationParameters(message_bits=3, max_degree=2, eps=0.0, c=3)
        session = BroadcastSession(
            topology, params, seed=5, policy=CandidatePolicy.EXHAUSTIVE
        )
        messages = [1, 2, 3, 4]
        session.run_round(messages)  # builds both exhaustive matrices

        beep_calls: list[int] = []
        distance_calls: list[int] = []
        original_beep = BeepCode.encode_int
        original_distance = DistanceCode.encode_int

        def counting_beep(self, value):
            beep_calls.append(value)
            return original_beep(self, value)

        def counting_distance(self, value):
            distance_calls.append(value)
            return original_distance(self, value)

        monkeypatch.setattr(BeepCode, "encode_int", counting_beep)
        monkeypatch.setattr(DistanceCode, "encode_int", counting_distance)
        second = session.run_round(messages)
        second_round_beep_calls = len(beep_calls)
        second_round_distance_calls = list(distance_calls)
        reference = simulate_broadcast_round(
            topology,
            messages,
            params,
            seed=5,
            round_offset=2 * session.codes.length,
            policy=CandidatePolicy.EXHAUSTIVE,
        )
        _assert_outcomes_equal(second, reference)
        # r_bits = 9 → 512 phase-1 candidates; message space 8.  A fresh
        # decode would re-encode all of them; the session only encodes the
        # handful of codewords the *schedules and extraction* touch.
        r_space = 1 << params.r_bits
        assert second_round_beep_calls < r_space // 4
        # The phase-2 matrix is reused outright: every distance encode in
        # round 2 came from schedule building (the 4 in-flight messages),
        # not from rebuilding the 8-codeword matrix.
        assert set(second_round_distance_calls) <= set(messages)

    def test_exhaustive_limits_checked_at_construction(self, regular12):
        params = SimulationParameters(message_bits=16, max_degree=3, eps=0.0, c=3)
        with pytest.raises(ConfigurationError):
            BroadcastSession(
                regular12, params, seed=0, policy=CandidatePolicy.EXHAUSTIVE
            )


class TestSessionValidation:
    def test_degree_checked_at_construction(self, star8, small_params):
        with pytest.raises(ConfigurationError):
            BroadcastSession(star8, small_params, seed=0)

    def test_message_count_checked(self, path6, small_params):
        session = BroadcastSession(path6, small_params, seed=0)
        with pytest.raises(ConfigurationError):
            session.run_round([1, 2])

    def test_message_width_checked(self, path6, small_params):
        session = BroadcastSession(path6, small_params, seed=0)
        with pytest.raises(ConfigurationError):
            session.run_round([1 << 20] + [1] * 5)
