"""Tests for the Corollary 12 CONGEST-over-Broadcast-CONGEST wrapper."""

from __future__ import annotations

from typing import Mapping

import pytest

from repro.congest import (
    BroadcastCongestNetwork,
    CongestAlgorithm,
    CongestNetwork,
)
from repro.core import CongestViaBroadcast, congest_payload_bits
from repro.errors import ConfigurationError, ProtocolViolationError
from repro.graphs import Topology, path_graph, random_regular_graph, star_graph


class PerNeighborValues(CongestAlgorithm):
    """Two CONGEST rounds of distinct per-neighbour messages."""

    def __init__(self):
        self.history: list[dict[int, int]] = []

    def send(self, round_index) -> Mapping[int, int]:
        if round_index >= 2:
            return {}
        return {
            u: (self.ctx.node_id * 3 + u + round_index) % 16
            for u in (self.ctx.neighbor_ids or [])
        }

    def receive(self, round_index, messages) -> None:
        self.history.append(dict(messages))

    @property
    def finished(self):
        return len(self.history) >= 2

    def output(self):
        return self.history


def run_wrapped(topology: Topology, message_bits: int = 24, max_bc_rounds: int = 40):
    n = topology.num_nodes
    ids = list(range(n))
    wrapped = [
        CongestViaBroadcast(PerNeighborValues(), ids=ids, message_bits=message_bits)
        for _ in range(n)
    ]
    network = BroadcastCongestNetwork(topology, ids=ids, message_bits=message_bits)
    return network.run(wrapped, max_rounds=max_bc_rounds)


def run_native(topology: Topology):
    n = topology.num_nodes
    return CongestNetwork(topology, message_bits=16).run(
        [PerNeighborValues() for _ in range(n)], max_rounds=5
    )


class TestEquivalenceWithNativeCongest:
    @pytest.mark.parametrize(
        "graph_name",
        ["path", "star", "regular"],
    )
    def test_outputs_match_native(self, graph_name):
        topology = {
            "path": Topology(path_graph(5)),
            "star": Topology(star_graph(5)),
            "regular": Topology(random_regular_graph(8, 3, seed=2)),
        }[graph_name]
        assert run_wrapped(topology).outputs == run_native(topology).outputs

    def test_round_cost_is_one_plus_t_delta(self):
        topology = Topology(random_regular_graph(8, 3, seed=2))
        result = run_wrapped(topology)
        # 1 announcement + 2 CONGEST rounds * Delta slots
        assert result.rounds_used == 1 + 2 * 3
        assert result.finished


class TestPayloadBits:
    def test_formula(self):
        assert congest_payload_bits(24, 5) == 24 - 1 - 10

    def test_too_small_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            congest_payload_bits(10, 5)

    def test_boundary_exactly_one_payload_bit(self):
        # 1 tag + 2*5 id bits + 1 payload bit = 12: the smallest legal budget
        assert congest_payload_bits(12, 5) == 1

    def test_boundary_zero_payload_bits_rejected(self):
        with pytest.raises(ConfigurationError, match="too small"):
            congest_payload_bits(11, 5)

    def test_budget_smaller_than_ids_alone_rejected(self):
        with pytest.raises(ConfigurationError):
            congest_payload_bits(4, 8)

    def test_error_message_names_the_budget(self):
        with pytest.raises(ConfigurationError, match="budget 10"):
            congest_payload_bits(10, 5)

    def test_payload_override_checked(self):
        with pytest.raises(ConfigurationError):
            CongestViaBroadcast(
                PerNeighborValues(), ids=[0, 1], message_bits=24, payload_bits=30
            )

    def test_wrapper_rejects_too_small_budget(self):
        # the wrapper derives id_bits from the id space, then sizes payloads
        with pytest.raises(ConfigurationError):
            CongestViaBroadcast(PerNeighborValues(), ids=[0, 31], message_bits=11)


class TestViolations:
    def test_non_neighbor_destination_detected(self):
        class Stranger(PerNeighborValues):
            def send(self, round_index):
                return {99: 1}

        topology = Topology(path_graph(3))
        ids = [0, 1, 2]
        wrapped = [
            CongestViaBroadcast(Stranger(), ids=ids, message_bits=24)
            for _ in range(3)
        ]
        network = BroadcastCongestNetwork(topology, ids=ids, message_bits=24)
        with pytest.raises(ProtocolViolationError):
            network.run(wrapped, max_rounds=10)

    def test_oversized_payload_detected(self):
        class Chunky(PerNeighborValues):
            def send(self, round_index):
                return {u: 1 << 30 for u in self.ctx.neighbor_ids}

        topology = Topology(path_graph(3))
        ids = [0, 1, 2]
        wrapped = [
            CongestViaBroadcast(Chunky(), ids=ids, message_bits=24)
            for _ in range(3)
        ]
        network = BroadcastCongestNetwork(topology, ids=ids, message_bits=24)
        from repro.errors import MessageSizeError

        with pytest.raises(MessageSizeError):
            network.run(wrapped, max_rounds=10)
