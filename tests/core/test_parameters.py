"""Tests for the Section 3 parameter engine."""

from __future__ import annotations

import pytest

from repro.core import SimulationParameters, paper_strict_c, practical_c
from repro.errors import ConfigurationError


class TestStrictConstants:
    def test_eps_01_value(self):
        # dominated by Lemma 9's 54/((1-2e)^2 e) + 5 term
        assert paper_strict_c(0.1) == 849

    def test_monotone_blowup_near_half(self):
        assert paper_strict_c(0.4) > paper_strict_c(0.3) > 0

    def test_blowup_near_zero(self):
        assert paper_strict_c(0.01) > paper_strict_c(0.1)

    def test_domain_enforced(self):
        for eps in [0.0, 0.5, -0.1]:
            with pytest.raises(ConfigurationError):
                paper_strict_c(eps)

    def test_always_way_above_practical(self):
        for eps in [0.05, 0.1, 0.2, 0.3]:
            assert paper_strict_c(eps) > 10 * practical_c(eps)


class TestPracticalConstants:
    def test_noiseless_minimum(self):
        assert practical_c(0.0) == 3

    def test_monotone_in_eps(self):
        values = [practical_c(eps) for eps in (0.0, 0.05, 0.1, 0.2, 0.3)]
        assert values == sorted(values)

    def test_domain(self):
        with pytest.raises(ConfigurationError):
            practical_c(0.5)


class TestDerivedQuantities:
    def test_paper_lengths(self):
        # B = gamma log n, a = cB, b = c^2 (Delta+1) a = c^3 (Delta+1) B
        params = SimulationParameters(message_bits=7, max_degree=4, eps=0.0, c=3)
        assert params.k == 5
        assert params.r_bits == 21
        assert params.beep_code_length == 27 * 5 * 7
        assert params.beep_codeword_weight == 9 * 7
        assert params.distance_code_length == params.beep_codeword_weight
        assert params.rounds_per_simulated_round == 2 * params.beep_code_length
        assert params.overhead == params.rounds_per_simulated_round

    def test_for_network_derives_message_bits(self):
        params = SimulationParameters.for_network(100, 5, eps=0.0, gamma=2)
        assert params.message_bits == 2 * 7  # ceil(log2 100) = 7
        assert params.max_degree == 5
        assert params.c == practical_c(0.0)

    def test_for_network_strict_mode(self):
        params = SimulationParameters.for_network(64, 3, eps=0.1, strict=True)
        assert params.c == paper_strict_c(0.1)

    def test_for_network_explicit_c(self):
        params = SimulationParameters.for_network(64, 3, eps=0.1, c=7)
        assert params.c == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(message_bits=0, max_degree=2, eps=0.0, c=3)
        with pytest.raises(ConfigurationError):
            SimulationParameters(message_bits=4, max_degree=-1, eps=0.0, c=3)
        with pytest.raises(ConfigurationError):
            SimulationParameters(message_bits=4, max_degree=2, eps=0.5, c=3)
        with pytest.raises(ConfigurationError):
            SimulationParameters(message_bits=4, max_degree=2, eps=0.0, c=2)

    def test_code_builders_consistent(self):
        params = SimulationParameters(message_bits=5, max_degree=3, eps=0.1, c=4)
        combined = params.combined_code(seed=3)
        assert combined.beep_code.length == params.beep_code_length
        assert combined.beep_code.weight == params.beep_codeword_weight
        assert combined.distance_code.length == params.distance_code_length
        assert combined.distance_code.input_bits == params.message_bits

    def test_codes_shared_under_same_seed(self):
        import numpy as np

        params = SimulationParameters(message_bits=5, max_degree=2, eps=0.0, c=3)
        a = params.beep_code(seed=1)
        b = params.beep_code(seed=1)
        assert np.array_equal(a.encode_int(9), b.encode_int(9))

    def test_distance_delta_is_one_third(self):
        params = SimulationParameters(message_bits=5, max_degree=2, eps=0.0, c=3)
        assert params.distance_delta == pytest.approx(1.0 / 3.0)
