"""Tests for the theory calculators and measurement helpers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    SuccessStats,
    fit_linear_factor,
    lemma8_failure_bound,
    lemma9_failure_bound,
    lemma10_failure_bound,
    measure_round_success,
    strict_constraint_table,
    theorem11_failure_bound,
)
from repro.core import SimulationParameters, paper_strict_c
from repro.errors import ConfigurationError
from repro.graphs import Topology, random_regular_graph


class TestFailureBounds:
    def test_lemma8(self):
        assert lemma8_failure_bound(16, 4) == pytest.approx(16.0**-1)

    def test_lemma9_weaker_than_lemma8(self):
        for c in (5, 8, 12):
            assert lemma9_failure_bound(64, c) >= lemma8_failure_bound(64, c)

    def test_lemma10_gamma_dependence(self):
        # n^{gamma + 6 - c gamma}
        assert lemma10_failure_bound(16, 8, gamma=1) == pytest.approx(16.0**-1)
        assert lemma10_failure_bound(16, 8, gamma=2) == pytest.approx(16.0**-8)

    def test_theorem11_union_bound(self):
        single = lemma10_failure_bound(64, 10)
        assert theorem11_failure_bound(64, 10, rounds=7) == pytest.approx(
            min(1.0, 7 * single)
        )

    def test_bounds_capped_at_one(self):
        assert lemma8_failure_bound(16, 3) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lemma8_failure_bound(1, 4)
        with pytest.raises(ConfigurationError):
            theorem11_failure_bound(16, 8, rounds=-1)


class TestStrictConstraintTable:
    def test_max_matches_paper_strict_c(self):
        import math

        for eps in (0.05, 0.1, 0.2):
            values = [value for _, value in strict_constraint_table(eps)]
            assert math.ceil(max(values)) == paper_strict_c(eps)

    def test_six_constraints_listed(self):
        assert len(strict_constraint_table(0.1)) == 6

    def test_domain(self):
        with pytest.raises(ConfigurationError):
            strict_constraint_table(0.0)


class TestMeasurement:
    def test_noiseless_perfect(self):
        topology = Topology(random_regular_graph(10, 3, seed=1))
        params = SimulationParameters(message_bits=5, max_degree=3, eps=0.0, c=3)
        stats = measure_round_success(topology, params, trials=3, seed=0)
        assert stats.success_rate == 1.0
        assert stats.failures == 0
        assert stats.phase1_node_errors == 0

    def test_stats_fields(self):
        stats = SuccessStats(
            trials=10, failures=2, phase1_node_errors=3, phase2_node_errors=1
        )
        assert stats.success_rate == pytest.approx(0.8)

    def test_zero_trials_rejected(self):
        topology = Topology(random_regular_graph(10, 3, seed=1))
        params = SimulationParameters(message_bits=5, max_degree=3, eps=0.0, c=3)
        with pytest.raises(ConfigurationError):
            measure_round_success(topology, params, trials=0)


class TestLinearFit:
    def test_exact_line(self):
        assert fit_linear_factor([1, 2, 3], [2, 4, 6]) == pytest.approx(2.0)

    def test_least_squares(self):
        slope = fit_linear_factor([1, 2], [2.1, 3.9])
        assert 1.9 < slope < 2.1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_linear_factor([], [])
        with pytest.raises(ConfigurationError):
            fit_linear_factor([0, 0], [1, 2])
        with pytest.raises(ConfigurationError):
            fit_linear_factor([1, 2], [1])
