"""Tests for deterministic hierarchical randomness."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.rng import derive_rng, derive_seed, spawn_rngs


class TestDeriveRng:
    def test_same_context_same_stream(self):
        a = derive_rng(42, "x", 1).integers(0, 2**31, size=16)
        b = derive_rng(42, "x", 1).integers(0, 2**31, size=16)
        assert (a == b).all()

    def test_different_context_different_stream(self):
        a = derive_rng(42, "x", 1).integers(0, 2**31, size=16)
        b = derive_rng(42, "x", 2).integers(0, 2**31, size=16)
        assert (a != b).any()

    def test_different_seed_different_stream(self):
        a = derive_rng(1, "x").integers(0, 2**31, size=16)
        b = derive_rng(2, "x").integers(0, 2**31, size=16)
        assert (a != b).any()

    def test_context_types_distinguished(self):
        a = derive_rng(0, 1).integers(0, 2**31, size=8)
        b = derive_rng(0, "1").integers(0, 2**31, size=8)
        assert (a != b).any()

    def test_negative_seed_allowed(self):
        derive_rng(-5, "ctx").random()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 3) == derive_seed(7, "a", 3)

    def test_non_negative_63_bit(self):
        for seed in [0, 1, -9, 2**62]:
            value = derive_seed(seed, "ctx")
            assert 0 <= value < 2**63

    @given(st.integers(-(2**60), 2**60), st.text(max_size=8))
    def test_distinct_contexts_rarely_collide(self, seed, context):
        # Not a collision proof - just that the derivation uses the context.
        assert derive_seed(seed, context, 0) != derive_seed(seed, context, 1)


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(3, 4, "nodes")
        assert len(rngs) == 4
        draws = [rng.integers(0, 2**31, size=4) for rng in rngs]
        assert not all((draws[0] == d).all() for d in draws[1:])

    def test_matches_indexed_derivation(self):
        rngs = spawn_rngs(9, 3, "local")
        direct = derive_rng(9, "local", 1)
        assert (
            rngs[1].integers(0, 2**31, size=8)
            == direct.integers(0, 2**31, size=8)
        ).all()
