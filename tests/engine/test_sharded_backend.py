"""Equivalence and degenerate-shape tests for the sharded backend.

The contract pinned down here is the tentpole invariant: for **every**
shard count ``P``, both local kernels, and every channel shape, the
sharded multi-process engine produces heard matrices **bit-identical**
to the single-process :class:`~repro.engine.DenseBackend` reference —
randomness stays keyed by ``(seed, round, node)``, never by rank or
``P``.  Degenerate partitions (``P > n``, empty shards, zero boundary
edges, ``P = 1`` delegation) are exercised explicitly, as is the
per-worker memory guard's clean :class:`~repro.errors.MemoryBudgetError`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beeping.noise import (
    AdversarialNoise,
    BernoulliNoise,
    NoiselessChannel,
    unreliable_zone,
)
from repro.engine import (
    DenseBackend,
    ShardedBackend,
    with_shards,
)
from repro.errors import ConfigurationError, MemoryBudgetError
from repro.graphs import Topology, gnp_graph, path_graph

DENSE = DenseBackend()


@pytest.fixture(scope="module")
def topology() -> Topology:
    return Topology(gnp_graph(61, 0.1, seed=5))


def schedule_for(topology: Topology, rounds: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((topology.num_nodes, rounds)) < 0.25


def sharded(request, *args, **kwargs) -> ShardedBackend:
    """A ShardedBackend whose worker pool is torn down after the test."""
    backend = ShardedBackend(*args, **kwargs)
    request.addfinalizer(backend.close)
    return backend


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("kernel", ["dense", "bitpacked"])
    def test_run_schedule_matches_dense(self, request, topology, shards, kernel):
        backend = sharded(request, shards, base=kernel)
        schedule = schedule_for(topology, 70)
        for channel, start in (
            (None, 0),
            (NoiselessChannel(), 3),
            (BernoulliNoise(0.1, 42), 11),
            # straddles the 4096-round Philox flip-window boundary
            (BernoulliNoise(0.05, 7), 4090),
        ):
            expected = DENSE.run_schedule(topology, schedule, channel, start)
            actual = backend.run_schedule(topology, schedule, channel, start)
            assert np.array_equal(expected, actual), (channel, start)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_run_schedule_batch_matches_dense(self, request, topology, shards):
        backend = sharded(request, shards)
        rng = np.random.default_rng(9)
        schedules = rng.random((3, topology.num_nodes, 40)) < 0.2
        channels = [
            NoiselessChannel(),
            BernoulliNoise(0.2, 4),
            BernoulliNoise(0.1, 4),
        ]
        starts = [0, 17, 4090]
        expected = DENSE.run_schedule_batch(topology, schedules, channels, starts)
        actual = backend.run_schedule_batch(topology, schedules, channels, starts)
        assert np.array_equal(expected, actual)

    def test_neighbor_or_vector_and_matrix(self, request, topology):
        backend = sharded(request, 3)
        rng = np.random.default_rng(3)
        vector = rng.random(topology.num_nodes) < 0.3
        assert np.array_equal(
            DENSE.neighbor_or(topology, vector),
            backend.neighbor_or(topology, vector),
        )
        matrix = schedule_for(topology, 33, seed=8)
        assert np.array_equal(
            DENSE.neighbor_or(topology, matrix),
            backend.neighbor_or(topology, matrix),
        )

    def test_custom_channel_applied_at_coordinator(self, request, topology):
        # A NoiseModel subclass the workers cannot reconstruct must be
        # applied to the assembled matrix — same values as single-process.
        class StuckBeeps(NoiselessChannel):
            def apply(self, received, start_round=0):
                out = received.copy()
                out[::2] = True
                return out

        backend = sharded(request, 2)
        schedule = schedule_for(topology, 20)
        expected = DENSE.run_schedule(topology, schedule, StuckBeeps(), 5)
        actual = backend.run_schedule(topology, schedule, StuckBeeps(), 5)
        assert np.array_equal(expected, actual)

    def test_identical_across_shard_counts(self, request, topology):
        schedule = schedule_for(topology, 64)
        channel = BernoulliNoise(0.15, 21)
        results = [
            sharded(request, shards).run_schedule(topology, schedule, channel, 2)
            for shards in (1, 2, 3, 4)
        ]
        for other in results[1:]:
            assert np.array_equal(results[0], other)


def scenario_channels(n: int):
    """One instance of every scenario channel the workers reconstruct."""
    return [
        AdversarialNoise(0.1, 17),
        unreliable_zone(n, frac=0.2, eps_hot=0.4, eps_cold=0.02, seed=17),
    ]


class TestScenarioBitIdentity:
    """The new scenario channels stay bit-identical at every shard count.

    The workers rebuild these channels from picklable specs and slice
    their local rows out of the full flip block, so the flips must match
    the single-process reference exactly — including across the Philox
    window boundary and for ``P = 1`` (the no-pool delegation path).
    """

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("kernel", ["dense", "bitpacked"])
    def test_run_schedule_matches_dense(self, request, topology, shards, kernel):
        backend = sharded(request, shards, base=kernel)
        schedule = schedule_for(topology, 60)
        for channel in scenario_channels(topology.num_nodes):
            for start in (0, 4090):
                expected = DENSE.run_schedule(topology, schedule, channel, start)
                actual = backend.run_schedule(topology, schedule, channel, start)
                assert np.array_equal(expected, actual), (channel, start)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_mixed_channel_batch_matches_dense(self, request, topology, shards):
        backend = sharded(request, shards)
        rng = np.random.default_rng(11)
        schedules = rng.random((3, topology.num_nodes, 30)) < 0.2
        channels = [
            BernoulliNoise(0.1, 4),
            *scenario_channels(topology.num_nodes),
        ]
        starts = [0, 17, 4090]
        expected = DENSE.run_schedule_batch(topology, schedules, channels, starts)
        actual = backend.run_schedule_batch(topology, schedules, channels, starts)
        assert np.array_equal(expected, actual)

    def test_identical_across_shard_counts(self, request, topology):
        schedule = schedule_for(topology, 50)
        for channel in scenario_channels(topology.num_nodes):
            results = [
                sharded(request, shards).run_schedule(
                    topology, schedule, channel, 2
                )
                for shards in (1, 2, 4)
            ]
            for other in results[1:]:
                assert np.array_equal(results[0], other)


class TestDegenerateShapes:
    def test_more_shards_than_nodes(self, request):
        topology = Topology(gnp_graph(5, 0.6, seed=2))
        backend = sharded(request, 9)
        schedule = schedule_for(topology, 12)
        assert np.array_equal(
            DENSE.run_schedule(topology, schedule),
            backend.run_schedule(topology, schedule),
        )

    def test_single_node_shards(self, request):
        # n = 3, P = 3: at most one node per shard, every edge boundary.
        topology = Topology(path_graph(3))
        backend = sharded(request, 3)
        schedule = schedule_for(topology, 8)
        assert np.array_equal(
            DENSE.run_schedule(topology, schedule),
            backend.run_schedule(topology, schedule),
        )

    def test_edgeless_graph_zero_boundary(self, request):
        topology = Topology(gnp_graph(10, 0.0, seed=0))
        backend = sharded(request, 4)
        schedule = schedule_for(topology, 16)
        expected = DENSE.run_schedule(topology, schedule, BernoulliNoise(0.3, 5), 1)
        actual = backend.run_schedule(topology, schedule, BernoulliNoise(0.3, 5), 1)
        assert np.array_equal(expected, actual)

    def test_shards_one_delegates_without_spawning(self, topology):
        backend = ShardedBackend(1)
        schedule = schedule_for(topology, 30)
        assert np.array_equal(
            DENSE.run_schedule(topology, schedule),
            backend.run_schedule(topology, schedule),
        )
        assert backend.worker_stats() == []  # no pool was ever spawned
        backend.close()

    def test_zero_rounds_delegates(self, request, topology):
        backend = sharded(request, 2)
        schedule = schedule_for(topology, 0)
        result = backend.run_schedule(topology, schedule)
        assert result.shape == (topology.num_nodes, 0)


class TestMemoryGuard:
    def test_worker_budget_error_reraised(self, topology):
        # ~10 MB cannot hold a worker interpreter: the guard must trip
        # inside the worker and surface as a clean typed error here.
        backend = ShardedBackend(2, memory_budget_bytes=10 << 20)
        schedule = schedule_for(topology, 16)
        try:
            with pytest.raises(MemoryBudgetError, match="shard worker"):
                backend.run_schedule(topology, schedule)
        finally:
            backend.close()

    def test_pool_respawns_after_error(self, request, topology):
        backend = sharded(request, 2, memory_budget_bytes=10 << 20)
        schedule = schedule_for(topology, 16)
        with pytest.raises(MemoryBudgetError):
            backend.run_schedule(topology, schedule)
        # The same instance must recover once the budget allows it.
        backend._budget = None
        assert np.array_equal(
            DENSE.run_schedule(topology, schedule),
            backend.run_schedule(topology, schedule),
        )

    def test_worker_stats_report_peaks(self, request, topology):
        backend = sharded(request, 2)
        backend.run_schedule(topology, schedule_for(topology, 10))
        stats = backend.worker_stats()
        assert [entry["rank"] for entry in stats] == [0, 1]
        assert all(entry["peak_rss"] > 1 << 20 for entry in stats)
        assert sum(entry["local_nodes"] for entry in stats) == topology.num_nodes


class TestConfiguration:
    def test_with_shards_helper(self):
        assert with_shards("dense", 1) == "dense"
        assert with_shards(None, 1) is None
        backend = with_shards("bitpacked", 4)
        assert isinstance(backend, ShardedBackend)
        assert backend.shards == 4
        assert backend.label == "bitpacked-shards4"
        assert with_shards(backend, 4) is backend
        with pytest.raises(ConfigurationError):
            with_shards(backend, 2)
        backend.close()

    @pytest.mark.parametrize("shards", [0, -2, 1.5, True])
    def test_bad_shard_counts_rejected(self, shards):
        with pytest.raises(ConfigurationError):
            ShardedBackend(shards)

    def test_nested_sharding_rejected(self):
        inner = ShardedBackend(2)
        try:
            with pytest.raises(ConfigurationError):
                ShardedBackend(2, base=inner)
        finally:
            inner.close()

    def test_unknown_base_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedBackend(2, base="quantum")
