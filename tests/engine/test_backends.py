"""Tests for the pluggable simulation backends (repro.engine)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.beeping.noise import BernoulliNoise, NoiseModel, NoiselessChannel
from repro.engine import (
    BitpackedBackend,
    DenseBackend,
    available_backends,
    get_backend,
    get_default_backend,
    pack_rows,
    pack_vector,
    resolve_backend,
    set_default_backend,
    unpack_rows,
    words_for,
)
from repro.errors import ConfigurationError
from repro.graphs import (
    Topology,
    complete_graph,
    gnp_graph,
    path_graph,
    star_graph,
)

DENSE = DenseBackend()
PACKED = BitpackedBackend()


class TestPacking:
    @pytest.mark.parametrize(
        "shape", [(1, 1), (5, 63), (5, 64), (5, 65), (3, 130), (0, 7), (4, 0)]
    )
    def test_roundtrip(self, shape):
        rng = np.random.default_rng(sum(shape))
        matrix = rng.random(shape) < 0.5
        packed = pack_rows(matrix)
        assert packed.dtype == np.uint64
        assert packed.shape == (shape[0], words_for(shape[1]))
        assert np.array_equal(unpack_rows(packed, shape[1]), matrix)

    def test_bit_layout(self):
        # round t lives in bit t % 64 of word t // 64
        matrix = np.zeros((1, 130), dtype=bool)
        matrix[0, 0] = matrix[0, 65] = matrix[0, 129] = True
        packed = pack_rows(matrix)
        assert packed[0, 0] == 1
        assert packed[0, 1] == 2
        assert packed[0, 2] == 1 << 1

    def test_pack_vector(self):
        bits = np.zeros(70, dtype=bool)
        bits[64] = True
        words = pack_vector(bits)
        assert words.shape == (2,)
        assert words[1] == 1

    def test_shape_checked(self):
        with pytest.raises(ConfigurationError):
            pack_rows(np.zeros(4, dtype=bool))
        with pytest.raises(ConfigurationError):
            pack_vector(np.zeros((2, 2), dtype=bool))
        with pytest.raises(ConfigurationError):
            unpack_rows(np.zeros((2, 1), dtype=np.uint64), 65)


class TestNeighborOrEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 200), st.integers(2, 80), st.integers(0, 2**16))
    def test_vector_matches_dense(self, graph_seed, n, beep_seed):
        topology = Topology(gnp_graph(n, 0.15, seed=graph_seed))
        rng = np.random.default_rng(beep_seed)
        beeps = rng.random(n) < 0.3
        assert np.array_equal(
            DENSE.neighbor_or(topology, beeps),
            PACKED.neighbor_or(topology, beeps),
        )

    def test_isolated_nodes_hear_nothing(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(6))
        graph.add_edges_from([(0, 1), (3, 4)])  # nodes 2 and 5 isolated
        topology = Topology(graph)
        beeps = np.ones(6, dtype=bool)
        heard = PACKED.neighbor_or(topology, beeps)
        assert not heard[2] and not heard[5]
        assert heard[0] and heard[1] and heard[3] and heard[4]

    def test_edgeless_graph(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        topology = Topology(graph)
        schedule = np.ones((4, 100), dtype=bool)
        heard = PACKED.run_schedule(topology, schedule)
        # everyone beeps, nobody has neighbours: own beep only
        assert np.array_equal(heard, schedule)
        assert not PACKED.neighbor_or(topology, np.ones(4, dtype=bool)).any()

    def test_matrix_form_matches_dense(self):
        topology = Topology(star_graph(9))
        rng = np.random.default_rng(1)
        beeps = rng.random((9, 77)) < 0.4
        assert np.array_equal(
            DENSE.neighbor_or(topology, beeps),
            PACKED.neighbor_or(topology, beeps),
        )

    def test_wrong_length_rejected(self):
        topology = Topology(path_graph(3))
        with pytest.raises(ConfigurationError):
            PACKED.neighbor_or(topology, np.zeros(4, dtype=bool))

    def test_sparse_vector_skips_row_bitmap(self):
        # A long path is far below the density bar: the vector primitive
        # must answer through the CSR path without ever materialising the
        # Theta(n^2 / 8)-byte row bitmap (prohibitive at zoo scale).
        topology = Topology(path_graph(400))
        rng = np.random.default_rng(11)
        beeps = rng.random(400) < 0.3
        heard = PACKED.neighbor_or(topology, beeps)
        assert "packed_adjacency" not in topology.__dict__
        assert np.array_equal(heard, DENSE.neighbor_or(topology, beeps))
        # Once the bitmap exists (a dense-graph caller paid for it), the
        # fast path reuses it — same bits either way.
        _ = topology.packed_adjacency
        assert np.array_equal(heard, PACKED.neighbor_or(topology, beeps))


class _InvertChannel(NoiseModel):
    """A channel the bit-packed backend has no packed fast path for."""

    @property
    def eps(self) -> float:
        return 0.0

    def apply(self, received, round_index):
        return ~np.asarray(received, dtype=bool)


class TestRunScheduleEquivalence:
    def test_complete_graph_noiseless(self):
        topology = Topology(complete_graph(65))  # straddles one word
        rng = np.random.default_rng(0)
        schedule = rng.random((65, 200)) < 0.02
        assert np.array_equal(
            DENSE.run_schedule(topology, schedule),
            PACKED.run_schedule(topology, schedule),
        )

    def test_unknown_channel_falls_back(self):
        topology = Topology(path_graph(5))
        schedule = np.zeros((5, 10), dtype=bool)
        schedule[2, 3] = True
        heard = PACKED.run_schedule(topology, schedule, _InvertChannel())
        assert np.array_equal(
            heard, DENSE.run_schedule(topology, schedule, _InvertChannel())
        )
        # inverted: everything is True except where a beep was received
        assert not heard[2, 3] and not heard[1, 3] and not heard[3, 3]
        assert heard[0, 0]

    def test_zero_rounds(self):
        topology = Topology(path_graph(4))
        for channel in (None, BernoulliNoise(0.2, seed=0)):
            heard = PACKED.run_schedule(
                topology, np.zeros((4, 0), dtype=bool), channel
            )
            assert heard.shape == (4, 0)

    def test_validation_matches_dense(self):
        topology = Topology(path_graph(3))
        for backend in (DENSE, PACKED):
            with pytest.raises(ConfigurationError):
                backend.run_schedule(topology, np.zeros((4, 2), dtype=bool))
            with pytest.raises(ConfigurationError):
                backend.run_schedule(topology, np.zeros(3, dtype=bool))


class TestResolution:
    def test_registry(self):
        assert set(available_backends()) == {"dense", "bitpacked", "native"}
        assert isinstance(get_backend("dense"), DenseBackend)
        assert isinstance(get_backend("bitpacked"), BitpackedBackend)
        assert get_backend("native").name == "native"
        assert get_backend("dense") is get_backend("dense")  # singleton
        with pytest.raises(ConfigurationError):
            get_backend("quantum")

    def test_unknown_backend_message_lists_registry(self):
        with pytest.raises(ConfigurationError, match=r"'native'"):
            get_backend("natve")

    def test_auto_never_picks_native(self):
        # auto's choice must not depend on whether the host has a C
        # compiler, else cached results stop being comparable across hosts.
        topology = Topology(gnp_graph(512, 0.02, seed=0))
        assert resolve_backend("auto", topology=topology, rounds=5000).name != (
            "native"
        )

    def test_instances_pass_through(self):
        assert resolve_backend(PACKED) is PACKED
        assert resolve_backend("bitpacked").name == "bitpacked"

    def test_auto_small_schedules_stay_dense(self):
        topology = Topology(path_graph(4))
        assert resolve_backend("auto", topology=topology, rounds=10).name == "dense"

    def test_auto_large_schedules_go_bitpacked(self):
        topology = Topology(gnp_graph(512, 0.02, seed=0))
        assert (
            resolve_backend("auto", topology=topology, rounds=5000).name
            == "bitpacked"
        )

    def test_auto_dense_neighborhoods_pack_per_round(self):
        sparse = Topology(path_graph(256))  # avg degree ~2 << n/64
        dense_graph = Topology(complete_graph(128))
        assert resolve_backend("auto", topology=sparse).name == "dense"
        assert resolve_backend("auto", topology=dense_graph).name == "bitpacked"

    def test_default_backend_round_trip(self):
        previous = get_default_backend()
        try:
            set_default_backend("bitpacked")
            assert resolve_backend(None, topology=Topology(path_graph(3))).name == (
                "bitpacked"
            )
            with pytest.raises(ConfigurationError):
                set_default_backend("warp-drive")
        finally:
            set_default_backend(previous)
        assert get_default_backend() == previous
