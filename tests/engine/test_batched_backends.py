"""Tests for the replica-batched backend entry point (run_schedule_batch).

The contract under test: for every backend, replica ``r`` of a batched
execution is bit-identical to a standalone ``run_schedule`` call with
replica ``r``'s schedule, channel and start round — for any mix of
channels, for per-replica start rounds (including offsets that straddle
the Philox noise-window boundary), and through the loop-based default
that third-party backends inherit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.beeping.noise import BernoulliNoise, NoiseModel, NoiselessChannel
from repro.engine import (
    BitpackedBackend,
    DenseBackend,
    SimulationBackend,
    normalize_batch_args,
    validate_schedule_batch,
)
from repro.errors import ConfigurationError
from repro.graphs import (
    Topology,
    complete_graph,
    gnp_graph,
    path_graph,
    star_graph,
)

DENSE = DenseBackend()
PACKED = BitpackedBackend()

#: Rounds per noise window (mirrors repro.beeping.noise._WINDOW).
WINDOW = 4096


def batch_reference(backend, topology, schedules, channels, starts):
    """The defining semantics: one run_schedule call per replica."""
    return np.stack(
        [
            backend.run_schedule(topology, schedules[r], channels[r], starts[r])
            for r in range(schedules.shape[0])
        ]
    )


class InvertingChannel(NoiseModel):
    """A custom (non-builtin) channel: flips every heard bit."""

    @property
    def eps(self):
        return 0.5

    def apply(self, received, round_index):
        return ~np.asarray(received, dtype=bool)


class LoopOnlyBackend(SimulationBackend):
    """A third-party backend implementing only the two required primitives."""

    name = "loop-only"

    def run_schedule(self, topology, schedule, channel=None, start_round=0):
        return DENSE.run_schedule(topology, schedule, channel, start_round)

    def neighbor_or(self, topology, beeps):
        return DENSE.neighbor_or(topology, beeps)


@pytest.mark.parametrize("backend", [DENSE, PACKED], ids=["dense", "bitpacked"])
class TestBatchMatchesLoop:
    def test_noiseless(self, backend):
        topology = Topology(gnp_graph(20, 0.2, seed=3))
        rng = np.random.default_rng(0)
        schedules = rng.random((5, 20, 70)) < 0.3
        channels, starts = normalize_batch_args(5, None, 0)
        batched = backend.run_schedule_batch(topology, schedules)
        assert np.array_equal(
            batched, batch_reference(backend, topology, schedules, channels, starts)
        )

    def test_per_replica_channels_and_offsets(self, backend):
        topology = Topology(gnp_graph(15, 0.3, seed=5))
        rng = np.random.default_rng(1)
        schedules = rng.random((4, 15, 90)) < 0.4
        channels = [
            BernoulliNoise(0.1, seed=7),
            NoiselessChannel(),
            BernoulliNoise(0.3, seed=8),
            BernoulliNoise(0.1, seed=7),  # shared stream, different offset
        ]
        starts = [0, 13, 5000, 64]
        batched = backend.run_schedule_batch(topology, schedules, channels, starts)
        assert np.array_equal(
            batched, batch_reference(backend, topology, schedules, channels, starts)
        )

    def test_offsets_straddling_noise_windows(self, backend):
        """Per-replica start rounds around the 4096-round Philox window edge.

        Each replica's noise must come from its own ``(seed, window)``
        blocks even when the batch mixes replicas on both sides of a
        window boundary and replicas whose phase crosses it mid-schedule.
        """
        topology = Topology(star_graph(9))
        rng = np.random.default_rng(2)
        rounds = 120
        schedules = rng.random((4, 9, rounds)) < 0.5
        channels = [BernoulliNoise(0.2, seed=21 + r) for r in range(4)]
        starts = [
            WINDOW - 1,            # crosses the boundary at round 1
            WINDOW - rounds // 2,  # crosses mid-phase
            WINDOW,                # starts exactly on the boundary
            3 * WINDOW - 7,        # a later window, still straddling
        ]
        batched = backend.run_schedule_batch(topology, schedules, channels, starts)
        assert np.array_equal(
            batched, batch_reference(backend, topology, schedules, channels, starts)
        )

    def test_custom_channel_applies_per_replica(self, backend):
        topology = Topology(path_graph(6))
        rng = np.random.default_rng(3)
        schedules = rng.random((3, 6, 40)) < 0.5
        channels = [InvertingChannel(), NoiselessChannel(), BernoulliNoise(0.1, seed=4)]
        starts = [0, 0, 4090]
        batched = backend.run_schedule_batch(topology, schedules, channels, starts)
        assert np.array_equal(
            batched, batch_reference(backend, topology, schedules, channels, starts)
        )

    def test_single_replica_and_degenerate_shapes(self, backend):
        topology = Topology(complete_graph(5))
        rng = np.random.default_rng(4)
        one = rng.random((1, 5, 33)) < 0.5
        assert np.array_equal(
            backend.run_schedule_batch(topology, one)[0],
            backend.run_schedule(topology, one[0]),
        )
        empty_rounds = np.zeros((3, 5, 0), dtype=bool)
        assert backend.run_schedule_batch(topology, empty_rounds).shape == (3, 5, 0)
        empty_batch = np.zeros((0, 5, 9), dtype=bool)
        assert backend.run_schedule_batch(topology, empty_batch).shape == (0, 5, 9)

    @settings(max_examples=25, deadline=None)
    @given(
        graph_seed=st.integers(0, 5),
        replicas=st.integers(1, 4),
        rounds=st.integers(1, 150),
        start=st.integers(0, 2 * WINDOW),
        data_seed=st.integers(0, 2**16),
    )
    def test_property_batch_equals_loop(
        self, backend, graph_seed, replicas, rounds, start, data_seed
    ):
        topology = Topology(gnp_graph(12, 0.3, seed=graph_seed))
        rng = np.random.default_rng(data_seed)
        schedules = rng.random((replicas, 12, rounds)) < 0.35
        channels = [
            BernoulliNoise(0.15, seed=data_seed + r) for r in range(replicas)
        ]
        starts = [start + 17 * r for r in range(replicas)]
        batched = backend.run_schedule_batch(topology, schedules, channels, starts)
        assert np.array_equal(
            batched, batch_reference(backend, topology, schedules, channels, starts)
        )


class TestBackendsAgree:
    def test_dense_and_bitpacked_identical_batches(self):
        topology = Topology(gnp_graph(18, 0.25, seed=9))
        rng = np.random.default_rng(5)
        schedules = rng.random((6, 18, 77)) < 0.3
        channels = [BernoulliNoise(0.2, seed=30 + r) for r in range(6)]
        starts = [WINDOW - 10 + 3 * r for r in range(6)]
        assert np.array_equal(
            DENSE.run_schedule_batch(topology, schedules, channels, starts),
            PACKED.run_schedule_batch(topology, schedules, channels, starts),
        )

    def test_loop_default_inherited_by_third_party_backend(self):
        backend = LoopOnlyBackend()
        topology = Topology(star_graph(7))
        rng = np.random.default_rng(6)
        schedules = rng.random((3, 7, 50)) < 0.5
        channels = [BernoulliNoise(0.1, seed=40 + r) for r in range(3)]
        starts = [0, 4000, 8000]
        assert np.array_equal(
            backend.run_schedule_batch(topology, schedules, channels, starts),
            DENSE.run_schedule_batch(topology, schedules, channels, starts),
        )


class TestValidation:
    def test_batch_shape_checked(self):
        topology = Topology(path_graph(4))
        with pytest.raises(ConfigurationError):
            validate_schedule_batch(topology, np.zeros((4, 5), dtype=bool))
        with pytest.raises(ConfigurationError):
            validate_schedule_batch(topology, np.zeros((2, 5, 3), dtype=bool))

    def test_channel_and_offset_counts_checked(self):
        with pytest.raises(ConfigurationError):
            normalize_batch_args(3, [NoiselessChannel()] * 2, 0)
        with pytest.raises(ConfigurationError):
            normalize_batch_args(3, None, [0, 1])

    def test_broadcast_forms(self):
        shared = BernoulliNoise(0.1, seed=1)
        channels, starts = normalize_batch_args(3, shared, 7)
        assert channels == [shared] * 3
        assert starts == [7, 7, 7]
        channels, starts = normalize_batch_args(2, None, None)
        assert all(isinstance(c, NoiselessChannel) for c in channels)
        assert starts == [0, 0]
