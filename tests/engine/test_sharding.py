"""Partition-layer tests: hash ownership, edge ids, shard reassembly.

The invariants under test are the ones the whole sharded tier rests on:

* :func:`~repro.engine.sharded.owner_of` is a **disjoint cover** — every
  node gets exactly one rank — for every shard count;
* :func:`~repro.engine.sharded.edge_ids` is **symmetric** in its
  endpoints (both owners of a boundary edge agree on its identity) and
  salt-separated from the owner hash;
* the per-rank CSR shards of :func:`~repro.engine.sharded.
  build_shard_plan` **reassemble to the original adjacency** — across
  all sixteen topology-zoo families, every tested shard count, and the
  degenerate shapes (``P > n``, empty ranks, edgeless graphs).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.engine.sharded import (
    build_shard_plan,
    edge_ids,
    hash64,
    owner_of,
)
from repro.errors import ConfigurationError
from repro.graphs import (
    Topology,
    build_family_graph,
    gnp_graph,
    topology_families,
)

FAMILY_NAMES = tuple(family.name for family in topology_families())


def small_topology(family: str, seed: int = 7) -> Topology:
    """A small zoo graph of the given family.

    ``n = 16`` satisfies every family's size constraint at once — a
    power of two (hypercube), a multiple of degree+1 = 4 (expander), a
    perfect square (grid/torus) — except the complete binary ``tree``,
    which needs ``n = 2^k - 1``.
    """
    n = 15 if family == "tree" else 16
    return Topology(build_family_graph(family, n, seed=seed))


class TestHash64:
    @given(st.integers(0, 2**62), st.integers(0, 2**62))
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, value, other):
        assert hash64(value) == hash64(value)
        if value != other:
            # splitmix64 is a bijection per salt: distinct inputs give
            # distinct outputs, so ownership never aliases nodes.
            assert hash64(value) != hash64(other)

    def test_salt_separates_streams(self):
        values = np.arange(64)
        assert not np.array_equal(hash64(values, "owner"), hash64(values, "eid"))

    def test_shapes_preserved(self):
        assert hash64(5).shape == ()
        assert hash64([1, 2, 3]).shape == (3,)
        assert hash64(np.arange(6).reshape(2, 3)).shape == (2, 3)
        assert hash64(np.arange(0)).shape == (0,)


class TestOwnerOf:
    @given(
        st.integers(min_value=1, max_value=11),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=80, deadline=None)
    def test_disjoint_cover_every_p(self, shards, n):
        owner = owner_of(np.arange(n), shards)
        # Cover: every node has an owner in range.  Disjoint: owner_of is
        # a function, so one rank per node by construction — the check
        # that matters is that the rank is always valid.
        assert owner.shape == (n,)
        assert ((owner >= 0) & (owner < shards)).all()

    def test_stable_across_calls_and_shapes(self):
        nodes = np.arange(1000)
        assert np.array_equal(owner_of(nodes, 7), owner_of(nodes, 7))
        scalar = [int(owner_of(v, 7)) for v in range(20)]
        assert scalar == list(owner_of(np.arange(20), 7))

    def test_roughly_balanced(self):
        counts = np.bincount(owner_of(np.arange(100_000), 4), minlength=4)
        assert counts.min() > 20_000  # hash balance, not exact quarters

    @pytest.mark.parametrize("shards", [0, -1])
    def test_invalid_shards_rejected(self, shards):
        with pytest.raises(ConfigurationError):
            owner_of(np.arange(4), shards)


class TestEdgeIds:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=80, deadline=None)
    def test_symmetric(self, u, v):
        assert edge_ids(u, v) == edge_ids(v, u)

    def test_vectorised_symmetry(self):
        rng = np.random.default_rng(0)
        u = rng.integers(0, 1 << 40, size=500)
        v = rng.integers(0, 1 << 40, size=500)
        assert np.array_equal(edge_ids(u, v), edge_ids(v, u))

    def test_distinct_edges_distinct_ids(self):
        n = 60
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        ids = edge_ids([p[0] for p in pairs], [p[1] for p in pairs])
        assert len(np.unique(ids)) == len(pairs)


def reassemble(plan, n: int) -> sp.csr_matrix:
    """Rebuild the global adjacency from a plan's per-rank CSR shards."""
    rows, cols = [], []
    for shard in plan.ranks:
        stacked = np.concatenate([shard.local_nodes, shard.halo_nodes])
        local_rows = np.repeat(shard.local_nodes, np.diff(shard.indptr))
        rows.append(local_rows)
        cols.append(stacked[shard.indices])
    rows = np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
    cols = np.concatenate(cols) if cols else np.zeros(0, dtype=np.int64)
    return sp.csr_matrix(
        (np.ones(rows.shape[0], dtype=bool), (rows, cols)), shape=(n, n)
    )


class TestShardPlan:
    @pytest.mark.parametrize("family", FAMILY_NAMES)
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_zoo_reassembly(self, family, shards):
        # The acid test: for every zoo family, the shards' rows stitched
        # back together are exactly the original adjacency matrix.
        topology = small_topology(family)
        plan = build_shard_plan(topology, shards)
        rebuilt = reassemble(plan, topology.num_nodes)
        assert (rebuilt != topology.adjacency).nnz == 0

    @given(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_graph_reassembly(self, n, shards, p, seed):
        topology = Topology(gnp_graph(n, p, seed=seed))
        plan = build_shard_plan(topology, shards)
        rebuilt = reassemble(plan, n)
        assert (rebuilt != topology.adjacency).nnz == 0

    def test_partition_is_disjoint_cover(self):
        topology = small_topology("expander")
        plan = build_shard_plan(topology, 3)
        all_locals = np.concatenate([s.local_nodes for s in plan.ranks])
        assert sorted(all_locals) == list(range(topology.num_nodes))
        for shard in plan.ranks:
            assert np.array_equal(plan.owner[shard.local_nodes], [shard.rank] * shard.num_local)

    def test_more_shards_than_nodes(self):
        topology = Topology(gnp_graph(5, 0.5, seed=1))
        plan = build_shard_plan(topology, 9)
        assert len(plan.ranks) == 9
        assert sum(shard.num_local for shard in plan.ranks) == 5
        assert any(shard.num_local == 0 for shard in plan.ranks)
        rebuilt = reassemble(plan, 5)
        assert (rebuilt != topology.adjacency).nnz == 0

    def test_edgeless_graph_has_no_boundaries(self):
        topology = Topology(gnp_graph(12, 0.0, seed=0))
        plan = build_shard_plan(topology, 4)
        for shard in plan.ranks:
            assert shard.num_halo == 0
            assert not shard.send_rows
            assert not shard.recv_slots
            assert not shard.boundary_fingerprints

    def test_halo_is_foreign_and_sorted(self):
        topology = small_topology("powerlaw")
        plan = build_shard_plan(topology, 4)
        for shard in plan.ranks:
            assert (plan.owner[shard.halo_nodes] != shard.rank).all()
            assert np.array_equal(shard.halo_nodes, np.sort(shard.halo_nodes))
            assert np.array_equal(shard.local_nodes, np.sort(shard.local_nodes))

    def test_exchange_maps_are_consistent(self):
        # What rank r sends to s (by global id) must be exactly what s
        # expects from r, in the same ascending order.
        topology = small_topology("gnp")
        plan = build_shard_plan(topology, 4)
        for sender in plan.ranks:
            for peer, rows in sender.send_rows.items():
                sent_globals = sender.local_nodes[rows]
                receiver = plan.ranks[peer]
                slots = receiver.recv_slots[sender.rank]
                expected_globals = receiver.halo_nodes[slots]
                assert np.array_equal(sent_globals, expected_globals)

    def test_boundary_fingerprints_symmetric(self):
        topology = small_topology("expander")
        plan = build_shard_plan(topology, 4)
        seen_any = False
        for shard in plan.ranks:
            for peer, fingerprint in shard.boundary_fingerprints.items():
                seen_any = True
                assert plan.ranks[peer].boundary_fingerprints[shard.rank] == fingerprint
        assert seen_any

    def test_plan_cached_on_topology(self):
        topology = small_topology("cycle")
        assert topology.shard_plan(3) is topology.shard_plan(3)
        assert topology.shard_plan(3) is not topology.shard_plan(2)

    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            build_shard_plan(small_topology("path"), 0)
