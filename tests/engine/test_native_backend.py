"""Bit-identity, fallback, and cache-hygiene tests for the native tier.

The native backend's contract is the engine invariant extended to a
compiled kernel: for every topology family, channel, ``start_round``
offset (including Philox window straddles) and replica batch, its heard
matrices are **bit-identical** to :class:`~repro.engine.DenseBackend`
and :class:`~repro.engine.BitpackedBackend`.  Hosts without a C compiler
must degrade to the bit-packed backend with a single
:class:`RuntimeWarning` — never an exception — and the on-disk ``.so``
cache must stay bounded and self-repair corrupt entries.

Equivalence tests are skipped (not failed) where the kernel cannot be
built, so tier-1 stays green on compiler-less hosts; the fallback tests
run everywhere because they monkeypatch the compiler probe themselves.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.beeping.noise import (
    AdversarialNoise,
    BernoulliNoise,
    HeterogeneousNoise,
    NoiselessChannel,
)
from repro.engine import (
    BitpackedBackend,
    DenseBackend,
    NativeBackend,
    get_backend,
)
from repro.engine.native import backend as native_backend_module
from repro.engine.native import build as native_build
from repro.engine.native.build import (
    NativeUnavailableError,
    kernel_source_hash,
    load_kernel,
    native_availability,
    prune_cache,
)
from repro.errors import ConfigurationError
from repro.graphs import (
    Topology,
    cycle_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)

DENSE = DenseBackend()
PACKED = BitpackedBackend()
NATIVE = NativeBackend()


def _kernel_available() -> bool:
    try:
        load_kernel()
    except NativeUnavailableError:
        return False
    return True


needs_kernel = pytest.mark.skipif(
    not _kernel_available(),
    reason="native kernel cannot be built here (no C compiler)",
)

#: Topology builders spanning the zoo's structure space: sparse chains,
#: hubs, lattices, regular expanders, and random graphs.
FAMILIES = {
    "cycle": lambda n: Topology(cycle_graph(n)),
    "path": lambda n: Topology(path_graph(n)),
    "star": lambda n: Topology(star_graph(n - 1)),
    "grid": lambda n: Topology(
        grid_graph(max(2, int(n**0.5)), max(2, int(n**0.5)))
    ),
    "regular": lambda n: Topology(random_regular_graph(n + (n % 2), 4, seed=3)),
    "gnp": lambda n: Topology(gnp_graph(n, 0.15, seed=7)),
}

#: Offsets straddling word boundaries and the 4096-round Philox window.
STRADDLE_STARTS = (0, 17, 63, 64, 4000, 4090, 4096)


def _channel(kind: str, n: int, seed: int):
    if kind == "none":
        return None
    if kind == "noiseless":
        return NoiselessChannel()
    if kind == "bernoulli":
        return BernoulliNoise(0.15, seed)
    if kind == "adversarial":
        return AdversarialNoise(0.2, seed)
    rng = np.random.default_rng(seed)
    return HeterogeneousNoise(rng.uniform(0.0, 0.4, size=n), seed)


@needs_kernel
class TestBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        family=st.sampled_from(sorted(FAMILIES)),
        n=st.integers(8, 80),
        rounds=st.sampled_from((0, 1, 7, 63, 64, 65, 130)),
        start=st.sampled_from(STRADDLE_STARTS),
        kind=st.sampled_from(
            ("none", "noiseless", "bernoulli", "heterogeneous", "adversarial")
        ),
        seed=st.integers(0, 2**16),
    )
    def test_run_schedule_matches_dense_and_bitpacked(
        self, family, n, rounds, start, kind, seed
    ):
        topology = FAMILIES[family](n)
        rng = np.random.default_rng(seed)
        schedule = rng.random((topology.num_nodes, rounds)) < 0.3
        channel = _channel(kind, topology.num_nodes, seed)
        expected = DENSE.run_schedule(topology, schedule, channel, start)
        assert np.array_equal(
            expected, PACKED.run_schedule(topology, schedule, channel, start)
        )
        assert np.array_equal(
            expected, NATIVE.run_schedule(topology, schedule, channel, start)
        )

    def test_long_schedule_beyond_fused_limit(self):
        # rounds > 64 * max_fused_words exercises the separate
        # pack/OR/XOR/unpack path instead of the fused kernel.
        kernel = load_kernel()
        rounds = 64 * int(kernel.repro_max_fused_words()) + 70
        topology = FAMILIES["gnp"](24)
        rng = np.random.default_rng(2)
        schedule = rng.random((topology.num_nodes, rounds)) < 0.01
        channel = BernoulliNoise(0.05, 9)
        assert np.array_equal(
            PACKED.run_schedule(topology, schedule, channel, 4090),
            NATIVE.run_schedule(topology, schedule, channel, 4090),
        )

    def test_batch_matches_serial_and_dense(self):
        topology = FAMILIES["regular"](48)
        n = topology.num_nodes
        rng = np.random.default_rng(5)
        schedules = rng.random((5, n, 70)) < 0.25
        channels = [
            NoiselessChannel(),
            BernoulliNoise(0.1, 11),
            _channel("heterogeneous", n, 13),
            AdversarialNoise(0.3, 17),
            BernoulliNoise(0.2, 11),
        ]
        starts = [0, 17, 63, 4090, 4096]
        batch = NATIVE.run_schedule_batch(topology, schedules, channels, starts)
        assert np.array_equal(
            batch, DENSE.run_schedule_batch(topology, schedules, channels, starts)
        )
        for r in range(5):
            assert np.array_equal(
                batch[r],
                NATIVE.run_schedule(topology, schedules[r], channels[r], starts[r]),
            ), r

    def test_empty_batch(self):
        topology = FAMILIES["path"](6)
        schedules = np.zeros((0, 6, 9), dtype=bool)
        heard = NATIVE.run_schedule_batch(topology, schedules)
        assert heard.shape == (0, 6, 9)

    def test_unknown_channel_falls_through_to_apply(self):
        class InvertChannel(NoiselessChannel):
            def apply(self, received, start_round=0):
                return ~np.asarray(received, dtype=bool)

        topology = FAMILIES["star"](10)
        rng = np.random.default_rng(4)
        schedule = rng.random((topology.num_nodes, 33)) < 0.2
        assert np.array_equal(
            DENSE.run_schedule(topology, schedule, InvertChannel(), 2),
            NATIVE.run_schedule(topology, schedule, InvertChannel(), 2),
        )
        schedules = schedule[np.newaxis].repeat(3, axis=0)
        assert np.array_equal(
            DENSE.run_schedule_batch(topology, schedules, InvertChannel()),
            NATIVE.run_schedule_batch(topology, schedules, InvertChannel()),
        )

    def test_neighbor_or_vector_and_matrix(self):
        topology = FAMILIES["gnp"](70)
        rng = np.random.default_rng(8)
        vector = rng.random(topology.num_nodes) < 0.3
        assert np.array_equal(
            DENSE.neighbor_or(topology, vector),
            NATIVE.neighbor_or(topology, vector),
        )
        matrix = rng.random((topology.num_nodes, 77)) < 0.3
        assert np.array_equal(
            DENSE.neighbor_or(topology, matrix),
            NATIVE.neighbor_or(topology, matrix),
        )

    def test_neighbor_or_wrong_length_rejected(self):
        topology = FAMILIES["path"](5)
        with pytest.raises(ConfigurationError):
            NATIVE.neighbor_or(topology, np.zeros(6, dtype=bool))

    def test_validation_matches_other_backends(self):
        topology = FAMILIES["path"](3)
        with pytest.raises(ConfigurationError):
            NATIVE.run_schedule(topology, np.zeros((4, 2), dtype=bool))
        with pytest.raises(ConfigurationError):
            NATIVE.run_schedule_batch(topology, np.zeros((2, 4, 2), dtype=bool))


@needs_kernel
class TestShardedComposition:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_native_matches_dense(self, request, shards):
        from repro.engine import ShardedBackend, with_shards

        backend = with_shards("native", shards)
        if isinstance(backend, ShardedBackend):
            request.addfinalizer(backend.close)
        else:
            backend = get_backend(backend)
        topology = FAMILIES["gnp"](61)
        rng = np.random.default_rng(6)
        schedule = rng.random((topology.num_nodes, 70)) < 0.25
        for channel, start in (
            (None, 0),
            (BernoulliNoise(0.1, 42), 11),
            (BernoulliNoise(0.05, 7), 4090),
        ):
            assert np.array_equal(
                DENSE.run_schedule(topology, schedule, channel, start),
                backend.run_schedule(topology, schedule, channel, start),
            ), (shards, channel, start)


@pytest.fixture
def clean_native_state(monkeypatch, tmp_path):
    """Isolated build-module state: fresh cache dir, no memoized loads."""
    cache = tmp_path / "native-cache"
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(cache))
    monkeypatch.setattr(native_build, "_LOADED", {})
    monkeypatch.setattr(native_build, "_FAILED_REASON", None)
    monkeypatch.setattr(native_backend_module, "_WARNED_FALLBACK", False)
    return cache


class TestFallback:
    def test_no_compiler_warns_once_and_matches_bitpacked(
        self, clean_native_state, monkeypatch
    ):
        monkeypatch.setattr(native_build, "compiler_path", lambda: None)
        topology = Topology(gnp_graph(30, 0.2, seed=1))
        rng = np.random.default_rng(0)
        schedule = rng.random((30, 70)) < 0.3
        channel = BernoulliNoise(0.1, 3)
        backend = NativeBackend()
        with pytest.warns(RuntimeWarning, match="falling back to the bit-packed"):
            heard = backend.run_schedule(topology, schedule, channel, 5)
        assert np.array_equal(
            heard, PACKED.run_schedule(topology, schedule, channel, 5)
        )
        # Warn-once: subsequent calls stay silent and keep working.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = backend.run_schedule_batch(
                topology, schedule[np.newaxis], channel, start_rounds=5
            )
        assert np.array_equal(again[0], heard)
        assert not os.path.exists(clean_native_state) or not list(
            clean_native_state.glob("*.so")
        )

    def test_availability_reports_missing_compiler(
        self, clean_native_state, monkeypatch
    ):
        monkeypatch.setattr(native_build, "compiler_path", lambda: None)
        ok, reason = native_availability()
        assert not ok and "no C compiler" in reason

    def test_unknown_backend_error_notes_native_fallback(
        self, clean_native_state, monkeypatch
    ):
        monkeypatch.setattr(native_build, "compiler_path", lambda: None)
        with pytest.raises(
            ConfigurationError, match="native falls back to bitpacked"
        ):
            get_backend("bogus")

    def test_compile_failure_is_sticky_and_typed(
        self, clean_native_state, monkeypatch
    ):
        calls = []

        def broken_compile(compiler, so_path):
            calls.append(so_path)
            raise NativeUnavailableError("native kernel compile failed (exit 1)")

        monkeypatch.setattr(native_build, "_compile", broken_compile)
        with pytest.raises(NativeUnavailableError):
            native_build.load_kernel()
        with pytest.raises(NativeUnavailableError):
            native_build.load_kernel()
        assert len(calls) == 1  # memoized failure, no re-probe per call
        ok, reason = native_availability()
        assert not ok and "compile failed" in reason


class TestCacheHygiene:
    def test_prune_bounds_entries_lru(self, tmp_path):
        for index in range(12):
            path = tmp_path / f"kernel-{index:016x}.so"
            path.write_bytes(b"x")
            os.utime(path, (1000 + index, 1000 + index))
        evicted = prune_cache(tmp_path, limit=8)
        assert sorted(evicted) == [f"kernel-{i:016x}.so" for i in range(4)]
        survivors = sorted(p.name for p in tmp_path.glob("kernel-*.so"))
        assert survivors == [f"kernel-{i:016x}.so" for i in range(4, 12)]

    def test_prune_missing_directory_is_noop(self, tmp_path):
        assert prune_cache(tmp_path / "absent") == []

    def test_prune_ignores_foreign_files(self, tmp_path):
        (tmp_path / "NOTES.txt").write_text("keep me")
        for index in range(3):
            (tmp_path / f"kernel-{index:016x}.so").write_bytes(b"x")
        assert prune_cache(tmp_path, limit=2)
        assert (tmp_path / "NOTES.txt").exists()

    @needs_kernel
    def test_corrupt_entry_deleted_and_rebuilt(self, clean_native_state):
        so_path = clean_native_state / f"kernel-{kernel_source_hash()}.so"
        so_path.parent.mkdir(parents=True)
        so_path.write_bytes(b"this is not a shared library")
        kernel = native_build.load_kernel()
        assert kernel.repro_native_abi() == native_build.KERNEL_ABI
        # The garbage entry was replaced by a real library.
        assert so_path.stat().st_size > 1000

    @needs_kernel
    def test_truncated_entry_deleted_and_rebuilt(self, tmp_path, monkeypatch):
        # Build a donor library in one directory, then plant a truncated
        # copy in a second, never-loaded cache: overwriting a dlopen'd
        # (mmapped) file in place would corrupt the live mapping instead
        # of testing the repair path.
        monkeypatch.setattr(native_build, "_LOADED", {})
        monkeypatch.setattr(native_build, "_FAILED_REASON", None)
        donor = tmp_path / "donor"
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(donor))
        real = native_build.load_kernel()
        assert real.repro_native_abi() == native_build.KERNEL_ABI
        so_name = f"kernel-{kernel_source_hash()}.so"
        payload = (donor / so_name).read_bytes()

        cache = tmp_path / "cache"
        cache.mkdir()
        (cache / so_name).write_bytes(payload[:128])
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(cache))
        native_build._LOADED.clear()
        kernel = native_build.load_kernel()
        assert kernel.repro_native_abi() == native_build.KERNEL_ABI
        assert (cache / so_name).stat().st_size > 128

    @needs_kernel
    def test_load_touches_mtime_for_lru_recency(self, clean_native_state):
        native_build.load_kernel()
        so_path = clean_native_state / f"kernel-{kernel_source_hash()}.so"
        os.utime(so_path, (1000, 1000))
        native_build._LOADED.clear()
        native_build.load_kernel()
        assert so_path.stat().st_mtime > 1000


class TestBuildIdentity:
    def test_source_hash_is_short_stable_hex(self):
        first = kernel_source_hash()
        assert first == kernel_source_hash()
        assert len(first) == 16
        int(first, 16)

    @needs_kernel
    def test_availability_reports_loaded(self):
        load_kernel()
        ok, reason = native_availability()
        assert ok and reason == "loaded"
