"""Tests for the dir-backed job store: durability, recovery, events."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.service import DirJobStore, JobSpec
from repro.service.events import EventLog


def make_spec(seed: int = 0) -> JobSpec:
    """A tiny canonical experiment spec for store tests."""
    return JobSpec.normalize(
        {"kind": "experiment", "ids": ["e01"], "seed": seed}
    )


@pytest.fixture
def store(tmp_path) -> DirJobStore:
    """A fresh dir-backed store."""
    return DirJobStore(tmp_path / "store")


class TestLifecycle:
    def test_create_then_get_round_trips(self, store):
        spec = make_spec()
        record = store.create(spec, spec.identity_key())
        loaded = store.get(record.job_id)
        assert loaded.spec == spec
        assert loaded.state == "queued"
        assert loaded.key == spec.identity_key()
        assert loaded.result_ref is None

    def test_unknown_id_raises_key_error(self, store):
        with pytest.raises(KeyError):
            store.get("nope")

    def test_set_state_stamps_lifecycle_times(self, store):
        record = store.create(make_spec(), "k1")
        running = store.set_state(record.job_id, "running")
        assert running.started is not None and running.finished is None
        done = store.set_state(record.job_id, "done", result_ref="results/k1.json")
        assert done.finished is not None
        assert done.result_ref == "results/k1.json"

    def test_failed_state_records_error_and_event(self, store):
        record = store.create(make_spec(), "k1")
        failed = store.set_state(
            record.job_id,
            "failed",
            error={"type": "BoomError", "message": "kaboom"},
        )
        assert failed.error == {"type": "BoomError", "message": "kaboom"}
        last = store.events(record.job_id).read()[-1]
        assert last.kind == "state"
        assert last.message == "failed: BoomError: kaboom"

    def test_unknown_state_rejected(self, store):
        record = store.create(make_spec(), "k1")
        with pytest.raises(ConfigurationError):
            store.set_state(record.job_id, "zombie")

    def test_list_jobs_oldest_first_and_skips_debris(self, store):
        first = store.create(make_spec(0), "a")
        second = store.create(make_spec(1), "b")
        # A half-created dir from a crash mid-submit must not break listing.
        (store.root / "jobs" / "torn").mkdir()
        listed = [record.job_id for record in store.list_jobs()]
        assert listed == [first.job_id, second.job_id]

    def test_counts_by_state(self, store):
        a = store.create(make_spec(0), "a")
        store.create(make_spec(1), "b")
        store.set_state(a.job_id, "running")
        assert store.counts() == {
            "queued": 1, "running": 1, "done": 0, "failed": 0,
        }


class TestResultsAndIndex:
    def test_results_are_shared_per_key(self, store):
        ref = store.put_result("k1", '{"answer": 42}')
        assert store.has_result("k1")
        assert not store.has_result("k2")
        assert store.load_result(ref) == '{"answer": 42}'
        assert ref == store.result_ref("k1")

    def test_bind_and_find(self, store):
        assert store.find_by_key("k1") is None
        store.bind_key("k1", "job-a")
        assert store.find_by_key("k1") == "job-a"
        store.bind_key("k1", "job-b")  # rebind (e.g. retry after failure)
        assert store.find_by_key("k1") == "job-b"

    def test_state_writes_are_atomic(self, store):
        record = store.create(make_spec(), "k1")
        state_path = store.root / "jobs" / record.job_id / "state.json"
        # No .tmp litter once the write completes, and valid JSON on disk.
        assert not list(state_path.parent.glob("*.tmp"))
        assert json.loads(state_path.read_text())["state"] == "queued"


class TestRecovery:
    def test_orphaned_running_job_is_requeued(self, store):
        record = store.create(make_spec(), "k1")
        store.set_state(record.job_id, "running")
        to_enqueue = store.recover()
        assert to_enqueue == [record.job_id]
        assert store.get(record.job_id).state == "queued"

    def test_running_job_with_result_is_completed(self, store):
        record = store.create(make_spec(), "k1")
        store.set_state(record.job_id, "running")
        store.put_result("k1", "[]")
        assert store.recover() == []
        recovered = store.get(record.job_id)
        assert recovered.state == "done"
        assert recovered.result_ref == store.result_ref("k1")

    def test_queued_jobs_are_re_enqueued(self, store):
        record = store.create(make_spec(), "k1")
        assert store.recover() == [record.job_id]
        assert store.get(record.job_id).state == "queued"

    def test_terminal_jobs_are_untouched(self, store):
        done = store.create(make_spec(0), "a")
        store.set_state(done.job_id, "done", result_ref=store.put_result("a", "[]"))
        failed = store.create(make_spec(1), "b")
        store.set_state(
            failed.job_id, "failed", error={"type": "X", "message": "y"}
        )
        assert store.recover() == []
        assert store.get(done.job_id).state == "done"
        assert store.get(failed.job_id).state == "failed"

    def test_no_running_jobs_survive_recovery(self, store):
        for seed in range(3):
            record = store.create(make_spec(seed), f"k{seed}")
            store.set_state(record.job_id, "running")
        store.put_result("k1", "[]")
        store.recover()
        states = {record.state for record in store.list_jobs()}
        assert "running" not in states


class TestStoreErrors:
    def test_unusable_root_is_a_configuration_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(ConfigurationError, match="cannot initialise"):
            DirJobStore(blocker)


class TestEventLog:
    def test_append_read_round_trip(self, tmp_path):
        log = EventLog(tmp_path / "events.ndjson")
        log.append("state", "queued")
        log.append("progress", "halfway")
        events = log.read()
        assert [(e.kind, e.message) for e in events] == [
            ("state", "queued"), ("progress", "halfway"),
        ]
        assert [e.seq for e in events] == [1, 2]

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "events.ndjson"
        log = EventLog(path)
        log.append("state", "queued")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "time": 1.0, "ki')  # crash mid-append
        assert [e.message for e in log.read()] == ["queued"]
        # The next append starts a fresh line and the log keeps working.
        EventLog(path).append("state", "running")
        assert [e.message for e in EventLog(path).read()] == ["queued", "running"]

    def test_read_after_cursor(self, tmp_path):
        log = EventLog(tmp_path / "events.ndjson")
        for n in range(4):
            log.append("progress", f"step {n}")
        assert [e.message for e in log.read(after_seq=2)] == ["step 2", "step 3"]

    def test_follow_stops_when_finished_and_drained(self, tmp_path):
        log = EventLog(tmp_path / "events.ndjson")
        log.append("state", "queued")
        log.append("state", "done")
        seen = [e.message for e in log.follow(finished=lambda: True)]
        assert seen == ["queued", "done"]
