"""End-to-end tests for the HTTP job service: a live server per test.

Everything here drives a real ``ThreadingHTTPServer`` on an ephemeral
port through plain :mod:`urllib` — the same wire a curl user sees.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments import api
from repro.service import DirJobStore, InlineExecutor, JobSpec
from repro.service.jobs import JobFailure, execute_spec, render_csv

from svc_util import ServiceClient, make_service

EXPERIMENT_JOB = {"kind": "experiment", "ids": ["e01"], "profile": "quick", "seed": 5}

SWEEP_GRID = {
    "topologies": ["expander"],
    "sizes": [16],
    "noises": [0.0, 0.05],
    "seeds": [0, 1],
    "rounds": 2,
    "params": {"expander": {"degree": 3}},
}


class CountingExecutor:
    """An inline executor that counts executions (the dedupe spy)."""

    def __init__(self, cache_dir=None) -> None:
        """Wrap an :class:`InlineExecutor`; executions are counted."""
        self._inner = InlineExecutor(cache_dir)
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, spec, emit):
        """Count, then delegate."""
        with self._lock:
            self.calls += 1
        return self._inner(spec, emit)


class TestRoundTrip:
    def test_submit_poll_result(self, live_service):
        status, submitted = live_service.post_json("/v1/jobs", EXPERIMENT_JOB)
        assert status == 200
        assert submitted["kind"] == "experiment"
        assert submitted["deduped"] is False
        state = live_service.wait(submitted["job_id"])
        assert state["state"] == "done"
        assert state["error"] is None
        assert state["result_ref"]
        status, body = live_service.get(
            f"/v1/jobs/{submitted['job_id']}/result"
        )
        assert status == 200
        [entry] = json.loads(body)
        assert entry["experiment_id"] == "e01"
        assert entry["seed"] == 5

    def test_result_bytes_match_programmatic_api(self, tmp_path):
        # Cold over HTTP, then replay locally through the server's own
        # cache: elapsed replays from the shared entry, so the two
        # serializations must agree byte for byte.
        service = make_service(tmp_path / "store")
        client = ServiceClient(service)
        try:
            _, submitted = client.post_json("/v1/jobs", EXPERIMENT_JOB)
            client.wait(submitted["job_id"])
            _, served = client.get(f"/v1/jobs/{submitted['job_id']}/result")
        finally:
            service.shutdown()
        results = api.run(
            ["e01"], seed=5, cache_dir=tmp_path / "store" / "cache"
        )
        assert all(result.cached for result in results)
        expected = json.dumps([r.to_dict() for r in results], indent=2)
        assert served.decode("utf-8") == expected

    def test_csv_format_matches_render(self, live_service):
        _, submitted = live_service.post_json("/v1/jobs", EXPERIMENT_JOB)
        live_service.wait(submitted["job_id"])
        job = f"/v1/jobs/{submitted['job_id']}"
        _, document = live_service.get(f"{job}/result")
        status, csv = live_service.get(f"{job}/result?format=csv")
        assert status == 200
        assert csv.decode("utf-8") == render_csv(
            "experiment", document.decode("utf-8")
        )
        assert csv.startswith(b"# table: e01")

    def test_sweep_round_trip_matches_warm_local_run(self, tmp_path):
        from repro import sweeps

        cache = tmp_path / "store" / "cache"
        # Warm the shared point cache, then capture a fully-replayed local
        # document; the server's execution over the same cache replays
        # every point too, so the bytes must match exactly.
        sweeps.run(SWEEP_GRID, cache_dir=cache)
        expected = sweeps.run(SWEEP_GRID, cache_dir=cache).to_json()
        service = make_service(tmp_path / "store")
        client = ServiceClient(service)
        try:
            _, submitted = client.post_json(
                "/v1/jobs", {"kind": "sweep", "grid": SWEEP_GRID}
            )
            state = client.wait(submitted["job_id"])
            assert state["state"] == "done"
            _, served = client.get(f"/v1/jobs/{submitted['job_id']}/result")
        finally:
            service.shutdown()
        assert served.decode("utf-8") == expected
        assert len(json.loads(served)["points"]) == 4

    def test_health_and_listing(self, live_service):
        status, health = live_service.get_json("/v1/health")
        assert status == 200 and health["status"] == "ok"
        _, submitted = live_service.post_json("/v1/jobs", EXPERIMENT_JOB)
        live_service.wait(submitted["job_id"])
        _, listing = live_service.get_json("/v1/jobs")
        assert [job["job_id"] for job in listing["jobs"]] == [
            submitted["job_id"]
        ]
        _, health = live_service.get_json("/v1/health")
        assert health["jobs"]["done"] == 1


class TestEvents:
    def test_snapshot_stream_is_ordered_ndjson(self, live_service):
        _, submitted = live_service.post_json("/v1/jobs", EXPERIMENT_JOB)
        live_service.wait(submitted["job_id"])
        status, body = live_service.get(
            f"/v1/jobs/{submitted['job_id']}/events?follow=0"
        )
        assert status == 200
        events = [json.loads(line) for line in body.decode().splitlines()]
        messages = [event["message"] for event in events]
        assert messages[0] == "queued"
        assert messages[-1] == "done"
        assert "e01: combined-code layout assembled" in messages
        assert [event["seq"] for event in events] == list(
            range(1, len(events) + 1)
        )

    def test_follow_stream_closes_at_terminal_state(self, live_service):
        _, submitted = live_service.post_json("/v1/jobs", EXPERIMENT_JOB)
        url = f"{live_service.base}/v1/jobs/{submitted['job_id']}/events"
        messages = []
        with urllib.request.urlopen(url, timeout=30) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            for raw in response:  # server closes after the final event
                messages.append(json.loads(raw)["message"])
        assert messages[0] == "queued"
        assert messages[-1] == "done"

    def test_resume_cursor_skips_replayed_events(self, live_service):
        _, submitted = live_service.post_json("/v1/jobs", EXPERIMENT_JOB)
        live_service.wait(submitted["job_id"])
        _, body = live_service.get(
            f"/v1/jobs/{submitted['job_id']}/events?follow=0&after=2"
        )
        events = [json.loads(line) for line in body.decode().splitlines()]
        assert events and all(event["seq"] > 2 for event in events)


class TestDedupe:
    def test_concurrent_identical_submissions_execute_once(self, tmp_path):
        spy = CountingExecutor(tmp_path / "store" / "cache")
        service = make_service(tmp_path / "store", executor=spy)
        client = ServiceClient(service)
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                replies = list(
                    pool.map(
                        lambda _: client.post_json("/v1/jobs", EXPERIMENT_JOB),
                        range(8),
                    )
                )
            job_ids = {reply["job_id"] for _, reply in replies}
            assert len(job_ids) == 1  # everyone attached to one job
            assert sum(not reply["deduped"] for _, reply in replies) == 1
            (job_id,) = job_ids
            client.wait(job_id)
            bodies = {
                client.get(f"/v1/jobs/{job_id}/result")[1] for _ in range(3)
            }
            assert len(bodies) == 1  # byte-identical for every client
        finally:
            service.shutdown()
        assert spy.calls == 1  # the single-flight guarantee

    def test_resubmit_after_done_attaches_without_execution(self, tmp_path):
        spy = CountingExecutor(tmp_path / "store" / "cache")
        service = make_service(tmp_path / "store", executor=spy)
        client = ServiceClient(service)
        try:
            _, first = client.post_json("/v1/jobs", EXPERIMENT_JOB)
            client.wait(first["job_id"])
            _, second = client.post_json("/v1/jobs", EXPERIMENT_JOB)
            assert second["deduped"] is True
            assert second["job_id"] == first["job_id"]
        finally:
            service.shutdown()
        assert spy.calls == 1

    def test_different_payloads_do_not_collide(self, tmp_path):
        spy = CountingExecutor(tmp_path / "store" / "cache")
        service = make_service(tmp_path / "store", executor=spy)
        client = ServiceClient(service)
        try:
            _, a = client.post_json("/v1/jobs", EXPERIMENT_JOB)
            _, b = client.post_json(
                "/v1/jobs", {**EXPERIMENT_JOB, "seed": 6}
            )
            assert a["job_id"] != b["job_id"]
            client.wait(a["job_id"])
            client.wait(b["job_id"])
        finally:
            service.shutdown()
        assert spy.calls == 2

    def test_replay_from_result_store_bypasses_the_queue(self, tmp_path):
        # Pre-seed the shared result store under the spec's key, with no
        # job bound to it: submission completes instantly, zero executions.
        store = DirJobStore(tmp_path / "store")
        spec = JobSpec.normalize(EXPERIMENT_JOB)
        store.put_result(spec.identity_key(), '[{"stub": true}]')
        spy = CountingExecutor(tmp_path / "store" / "cache")
        service = make_service(tmp_path / "store", executor=spy)
        client = ServiceClient(service)
        try:
            _, submitted = client.post_json("/v1/jobs", EXPERIMENT_JOB)
            state = client.wait(submitted["job_id"])
            assert state["state"] == "done"
            _, body = client.get(f"/v1/jobs/{submitted['job_id']}/result")
            assert json.loads(body) == [{"stub": True}]
        finally:
            service.shutdown()
        assert spy.calls == 0


class FailingExecutor:
    """An executor that always raises — the failed-job path."""

    def __call__(self, spec, emit):
        """Report some progress, then fail with a typed error."""
        emit("about to explode")
        raise JobFailure("ReactorMeltdown", "core temperature exceeded")


class TestFailures:
    def test_failed_job_payload_and_result_conflict(self, tmp_path):
        service = make_service(tmp_path / "store", executor=FailingExecutor())
        client = ServiceClient(service)
        try:
            _, submitted = client.post_json("/v1/jobs", EXPERIMENT_JOB)
            state = client.wait(submitted["job_id"])
            assert state["state"] == "failed"
            assert state["error"] == {
                "type": "ReactorMeltdown",
                "message": "core temperature exceeded",
            }
            status, body = client.get_json(
                f"/v1/jobs/{submitted['job_id']}/result"
            )
            assert status == 409
            assert body["error"]["type"] == "ReactorMeltdown"
        finally:
            service.shutdown()

    def test_failed_job_is_retried_on_resubmit(self, tmp_path):
        service = make_service(tmp_path / "store", executor=FailingExecutor())
        client = ServiceClient(service)
        try:
            _, first = client.post_json("/v1/jobs", EXPERIMENT_JOB)
            client.wait(first["job_id"])
            _, second = client.post_json("/v1/jobs", EXPERIMENT_JOB)
            # A failed job never satisfies dedupe: a fresh attempt runs.
            assert second["deduped"] is False
            assert second["job_id"] != first["job_id"]
        finally:
            service.shutdown()

    def test_malformed_submissions_are_400(self, live_service):
        status, body = live_service.post_json(
            "/v1/jobs", {"kind": "experiment", "ids": ["zz99"]}
        )
        assert status == 400
        assert body["error"]["type"] == "ConfigurationError"
        assert "zz99" in body["error"]["message"]
        status, body = live_service.post_json("/v1/jobs", "not an object")
        assert status == 400

    def test_unknown_routes_and_jobs_are_404(self, live_service):
        assert live_service.get("/v1/nope")[0] == 404
        assert live_service.get("/v1/jobs/feedbeef")[0] == 404
        assert live_service.get("/v1/jobs/feedbeef/result")[0] == 404
        assert live_service.get("/v1/jobs/feedbeef/events")[0] == 404

    def test_result_before_done_is_409_not_ready(self, tmp_path):
        gate = threading.Event()

        class GatedExecutor:
            """Blocks until the test opens the gate."""

            def __call__(self, spec, emit):
                """Wait, then return a stub document."""
                assert gate.wait(timeout=30)
                return "[]"

        service = make_service(tmp_path / "store", executor=GatedExecutor())
        client = ServiceClient(service)
        try:
            _, submitted = client.post_json("/v1/jobs", EXPERIMENT_JOB)
            status, body = client.get_json(
                f"/v1/jobs/{submitted['job_id']}/result"
            )
            assert status == 409
            assert body["error"]["type"] == "NotReady"
            gate.set()
            client.wait(submitted["job_id"])
        finally:
            gate.set()
            service.shutdown()

    def test_unknown_result_format_is_400(self, live_service):
        _, submitted = live_service.post_json("/v1/jobs", EXPERIMENT_JOB)
        live_service.wait(submitted["job_id"])
        status, body = live_service.get_json(
            f"/v1/jobs/{submitted['job_id']}/result?format=xml"
        )
        assert status == 400
        assert "xml" in body["error"]["message"]


class TestRecovery:
    def test_restart_repairs_orphans_and_reruns_lost_work(self, tmp_path):
        # Simulate a server that died mid-flight: one job still queued,
        # one orphaned as running without a result, one running whose
        # result document landed just before the crash.
        store = DirJobStore(tmp_path / "store")
        specs = [
            JobSpec.normalize({**EXPERIMENT_JOB, "seed": seed})
            for seed in (1, 2, 3)
        ]
        queued = store.create(specs[0], specs[0].identity_key())
        store.bind_key(specs[0].identity_key(), queued.job_id)
        orphan = store.create(specs[1], specs[1].identity_key())
        store.bind_key(specs[1].identity_key(), orphan.job_id)
        store.set_state(orphan.job_id, "running")
        landed = store.create(specs[2], specs[2].identity_key())
        store.bind_key(specs[2].identity_key(), landed.job_id)
        store.set_state(landed.job_id, "running")
        store.put_result(specs[2].identity_key(), '[{"landed": true}]')

        spy = CountingExecutor(tmp_path / "store" / "cache")
        service = make_service(tmp_path / "store", executor=spy)
        client = ServiceClient(service)
        try:
            for record in (queued, orphan, landed):
                state = client.wait(record.job_id)
                assert state["state"] == "done"
            _, health = client.get_json("/v1/health")
            # No orphaned running jobs after recovery — the acceptance bar.
            assert health["jobs"]["running"] == 0
            assert health["jobs"]["queued"] == 0
            assert health["jobs"]["done"] == 3
        finally:
            service.shutdown()
        # The queued and orphaned jobs re-ran; the landed one replayed.
        assert spy.calls == 2


class TestSubprocessExecutorPath:
    def test_spawn_worker_round_trip(self, tmp_path):
        # The production path once: a real spawn worker process relays
        # progress over the queue and returns the document.
        from repro.service import JobService, ServiceConfig

        service = JobService(
            ServiceConfig(
                host="127.0.0.1",
                port=0,
                store_dir=tmp_path / "store",
                jobs=1,
                inline=False,
            )
        )
        service.start()
        service.start_background()
        client = ServiceClient(service)
        try:
            _, submitted = client.post_json("/v1/jobs", EXPERIMENT_JOB)
            state = client.wait(submitted["job_id"], timeout=120)
            assert state["state"] == "done"
            _, body = client.get(
                f"/v1/jobs/{submitted['job_id']}/events?follow=0"
            )
            messages = [
                json.loads(line)["message"]
                for line in body.decode().splitlines()
            ]
            assert "e01: combined-code layout assembled" in messages
            _, document = client.get(f"/v1/jobs/{submitted['job_id']}/result")
            expected = execute_spec(
                JobSpec.normalize(EXPERIMENT_JOB),
                cache_dir=str(tmp_path / "store" / "cache"),
            )
            assert document.decode("utf-8") == expected
        finally:
            service.shutdown()
