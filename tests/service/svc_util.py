"""Service-test helpers: a live background server and a urllib client.

Kept in a uniquely named module (not ``conftest``) so test files can
import the helpers directly without colliding with the suite-level
``tests/conftest.py``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.service import JobService, ServiceConfig


class ServiceClient:
    """A minimal urllib-based client for one live :class:`JobService`."""

    def __init__(self, service: JobService) -> None:
        """Wrap ``service`` (already started in the background)."""
        self.service = service
        self.base = service.url

    def get(self, path: str) -> "tuple[int, bytes]":
        """``GET path`` → (status, body bytes); HTTP errors are returned."""
        try:
            with urllib.request.urlopen(self.base + path) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def get_json(self, path: str) -> "tuple[int, dict]":
        """``GET path`` decoded as JSON."""
        status, body = self.get(path)
        return status, json.loads(body)

    def post_json(self, path: str, payload: object) -> "tuple[int, dict]":
        """``POST path`` with a JSON body, decoded JSON response."""
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def wait(self, job_id: str, timeout: float = 30.0) -> dict:
        """Poll ``/v1/jobs/<id>`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, state = self.get_json(f"/v1/jobs/{job_id}")
            assert status == 200, state
            if state["state"] in ("done", "failed"):
                return state
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def make_service(store_dir, *, jobs: int = 2, executor=None) -> JobService:
    """Start a background service on an ephemeral port; caller shuts down.

    With no explicit ``executor`` the service builds its own
    :class:`~repro.service.app.InlineExecutor` over the store's shared
    cache — the production wiring, minus the process hop.
    """
    config = ServiceConfig(
        host="127.0.0.1", port=0, store_dir=store_dir, jobs=jobs, inline=True
    )
    service = JobService(config, executor=executor)
    service.start()
    service.start_background()
    return service
