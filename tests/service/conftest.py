"""Shared fixtures for the service-layer tests: a live HTTP server.

The ``live_service`` fixture boots a real :class:`JobService` on an
ephemeral port with the in-thread ``InlineExecutor`` (fast, and it lets
tests wrap the executor with counting spies); the helper client speaks
plain :mod:`urllib`, so the tests add no dependencies.
"""

from __future__ import annotations

import pytest

from svc_util import ServiceClient, make_service


@pytest.fixture
def live_service(tmp_path):
    """A started service + client over a fresh store; torn down after."""
    service = make_service(tmp_path / "store")
    yield ServiceClient(service)
    service.shutdown()
