"""Tests for job-spec normalization, identity keys, and execution."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import api
from repro.service import JobSpec
from repro.service.jobs import execute_spec, render_csv


def normalize(**payload):
    """Shorthand: normalize one raw submission body."""
    return JobSpec.normalize(payload)


class TestNormalizeExperiment:
    def test_defaults_made_explicit(self):
        spec = normalize(kind="experiment", ids=["e01"])
        assert spec.kind == "experiment"
        assert spec.payload == {
            "ids": ["e01"],
            "profile": "quick",
            "seed": 0,
            "backend": None,
            "runtime": None,
            "shards": 1,
        }

    def test_ids_resolved_through_registry(self):
        spec = normalize(kind="experiment", ids=["E03", "e03", "e01"])
        assert spec.payload["ids"] == ["e03", "e01"]  # case-folded, deduped

    def test_tags_select_experiments(self):
        tagged = normalize(kind="experiment", tags=["codes"])
        assert tagged.payload["ids"] == api.resolve_ids(None, tags=["codes"])

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            normalize(kind="experiment", ids=["zz99"])

    def test_empty_selection_rejected(self):
        with pytest.raises(ConfigurationError, match="selects no experiments"):
            normalize(kind="experiment", ids=[])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="job kind"):
            normalize(kind="banana")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            JobSpec.normalize(["not", "a", "dict"])

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment-job"):
            normalize(kind="experiment", ids=["e01"], speed="ludicrous")

    @pytest.mark.parametrize(
        "field,value",
        [("seed", -1), ("seed", "7"), ("shards", 0), ("shards", True)],
    )
    def test_bad_integers_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            normalize(kind="experiment", ids=["e01"], **{field: value})

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            normalize(kind="experiment", ids=["e01"], backend="quantum")

    def test_unknown_runtime_rejected_at_submit(self):
        with pytest.raises(ConfigurationError):
            normalize(kind="experiment", ids=["e01"], runtime="warp")

    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigurationError, match="profile"):
            normalize(kind="experiment", ids=["e01"], profile="")


GRID = {
    "topologies": ["expander"],
    "sizes": [16],
    "noises": [0.0],
    "seeds": [0],
    "rounds": 2,
    "params": {"expander": {"degree": 3}},
}


class TestNormalizeSweep:
    def test_grid_expanded_to_document_form(self):
        spec = normalize(kind="sweep", grid=GRID)
        assert spec.kind == "sweep"
        assert spec.payload["grid"]["grid"]["topologies"] == ["expander"]
        assert spec.payload["profile"] == "quick"

    def test_backend_override_folds_into_axis(self):
        spec = normalize(kind="sweep", grid=GRID, backend="auto")
        assert spec.payload["grid"]["grid"]["backends"] == ["auto"]
        assert "backend" not in spec.payload  # folded, not carried

    def test_missing_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="'grid' table"):
            normalize(kind="sweep")

    def test_bad_grid_key_rejected(self):
        bad = dict(GRID)
        bad["flavors"] = ["sour"]
        with pytest.raises(ConfigurationError, match="unknown grid key"):
            normalize(kind="sweep", grid=bad)


class TestIdentity:
    def test_identical_payloads_share_a_key(self):
        a = normalize(kind="experiment", ids=["e01"], seed=3)
        b = normalize(kind="experiment", ids=["e01"], seed=3)
        assert a.identity_key() == b.identity_key()

    def test_runtime_is_excluded_from_identity(self):
        # Runtimes are bit-identical per seed, so they share one result.
        a = normalize(kind="experiment", ids=["e14"], runtime="vectorized")
        b = normalize(kind="experiment", ids=["e14"], runtime="reference")
        assert a.identity_key() == b.identity_key()

    @pytest.mark.parametrize(
        "variant",
        [
            {"seed": 1},
            {"profile": "full"},
            {"shards": 2},
            {"ids": ["e03"]},
        ],
    )
    def test_result_shaping_fields_change_the_key(self, variant):
        base = normalize(kind="experiment", ids=["e01"])
        other = normalize(kind="experiment", **{"ids": ["e01"], **variant})
        assert base.identity_key() != other.identity_key()

    def test_sweep_key_stable_and_seed_sensitive(self):
        a = normalize(kind="sweep", grid=GRID)
        b = normalize(kind="sweep", grid=json.loads(json.dumps(GRID)))
        assert a.identity_key() == b.identity_key()
        shifted = dict(GRID, seeds=[1])
        assert (
            normalize(kind="sweep", grid=shifted).identity_key()
            != a.identity_key()
        )

    def test_round_trips_through_the_store_form(self):
        spec = normalize(kind="experiment", ids=["e01"], seed=5)
        clone = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.identity_key() == spec.identity_key()


class TestExecute:
    def test_experiment_document_matches_api_serialization(self, tmp_path):
        spec = normalize(kind="experiment", ids=["e01"], seed=4)
        document = execute_spec(spec, cache_dir=str(tmp_path))
        # Replaying through the same cache reproduces the bytes exactly
        # (elapsed replays from the cache entry, so nothing re-times).
        results = api.run(["e01"], seed=4, cache_dir=tmp_path)
        expected = json.dumps([r.to_dict() for r in results], indent=2)
        assert document == expected

    def test_experiment_csv_matches_result_csv(self, tmp_path):
        spec = normalize(kind="experiment", ids=["e01", "e03"])
        document = execute_spec(spec, cache_dir=str(tmp_path))
        results = api.run(["e01", "e03"], cache_dir=tmp_path)
        assert render_csv("experiment", document) == "".join(
            r.to_csv() for r in results
        )

    def test_progress_reaches_the_callback(self, tmp_path):
        messages: list[str] = []
        spec = normalize(kind="experiment", ids=["e01"])
        execute_spec(spec, cache_dir=str(tmp_path), progress=messages.append)
        assert any("combined-code layout assembled" in m for m in messages)

    def test_sweep_document_and_csv(self, tmp_path):
        from repro import sweeps

        spec = normalize(kind="sweep", grid=GRID)
        sweeps.run(GRID, cache_dir=tmp_path)  # warm the point cache
        document = execute_spec(spec, cache_dir=str(tmp_path))
        warm = sweeps.run(GRID, cache_dir=tmp_path)  # all points replayed
        assert document == warm.to_json()
        csv = render_csv("sweep", document)
        assert csv.startswith("# table: sweep / points\n")
        assert "# table: sweep / cells\n" in csv
