"""NodeStreams must be bit-identical to the reference per-node streams.

The vectorized runtime's whole bit-identity promise rests on
:class:`repro.rng_philox.NodeStreams` reproducing, draw by draw, what
the reference engine gets from ``random_bits(derive_rng(seed,
"node-local", v), bits)`` — including numpy's ``Generator.bytes``
consumption semantics (whole 32-bit words, truncation discards).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import derive_rng, random_bits
from repro.rng_philox import NodeStreams, words_for_bits


def as_int(words: np.ndarray) -> int:
    return sum(int(word) << (64 * j) for j, word in enumerate(words))


class TestDrawEquality:
    @pytest.mark.parametrize(
        "bits", [1, 5, 8, 13, 20, 31, 32, 40, 52, 63, 64, 65, 90, 128, 130, 200]
    )
    def test_matches_reference_streams_across_widths(self, bits):
        seed, count = 1234, 7
        streams = NodeStreams(seed, count, "node-local")
        rngs = [derive_rng(seed, "node-local", v) for v in range(count)]
        patterns = [
            [0, 0, 0, 2, 5, 5, 6],
            [1, 2, 2, 2, 5],
            [0, 3, 4, 5, 6, 6, 6, 6],
        ]
        for pattern in patterns:
            drawn = streams.draw(np.array(pattern), bits)
            assert drawn.shape == (len(pattern), words_for_bits(bits))
            expected = [random_bits(rngs[v], bits) for v in pattern]
            assert [as_int(row) for row in drawn] == expected

    def test_interleaved_widths_share_one_stream(self):
        # The reference consumes one byte stream per node regardless of
        # the width of each draw; NodeStreams must track it identically.
        seed = 9
        streams = NodeStreams(seed, 3, "node-local")
        rng = derive_rng(seed, "node-local", 1)
        for bits in (20, 90, 7, 64, 130):
            [drawn] = streams.draw(np.array([1]), bits)
            assert as_int(np.atleast_1d(drawn)) == random_bits(rng, bits)

    def test_truncation_burns_whole_words(self):
        # bytes(3) consumes 4 bytes of stream: two 20-bit draws must not
        # equal the first 40 bits of one contiguous byte read.
        seed = 4
        streams = NodeStreams(seed, 1, "node-local")
        first = as_int(streams.draw(np.array([0]), 20)[0])
        second = as_int(streams.draw(np.array([0]), 20)[0])
        rng = derive_rng(seed, "node-local", 0)
        assert first == random_bits(rng, 20)
        assert second == random_bits(rng, 20)

    def test_context_selects_distinct_streams(self):
        a = NodeStreams(0, 2, "node-local")
        b = NodeStreams(0, 2, "other-context")
        assert not np.array_equal(
            a.draw(np.array([0]), 64), b.draw(np.array([0]), 64)
        )

    def test_instances_do_not_share_positions(self):
        # The key cache is shared; the stream positions must not be.
        a = NodeStreams(3, 2, "node-local")
        b = NodeStreams(3, 2, "node-local")
        first_a = a.draw(np.array([0]), 64)
        assert np.array_equal(b.draw(np.array([0]), 64), first_a)

    def test_unsorted_nodes_rejected(self):
        streams = NodeStreams(0, 3, "node-local")
        with pytest.raises(ValueError):
            streams.draw(np.array([2, 0]), 8)

    def test_empty_draw(self):
        streams = NodeStreams(0, 3, "node-local")
        assert streams.draw(np.array([], dtype=np.int64), 90).shape == (0, 2)

    def test_words_for_bits_validates(self):
        with pytest.raises(ValueError):
            words_for_bits(0)
        assert words_for_bits(64) == 1
        assert words_for_bits(65) == 2
