"""Tests for the greedy distance-2 colouring."""

from __future__ import annotations

import pytest

from repro.baselines import greedy_distance2_coloring
from repro.graphs import (
    Topology,
    complete_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    star_graph,
)


def assert_distance2(topology: Topology, colors: list[int]) -> None:
    for v in range(topology.num_nodes):
        for u in topology.neighbors[v]:
            u = int(u)
            assert colors[u] != colors[v], f"edge ({v},{u}) monochromatic"
            for w in topology.neighbors[u]:
                w = int(w)
                if w != v:
                    assert colors[w] != colors[v], f"{v} and {w} share {u}"


class TestGreedyDistance2:
    @pytest.mark.parametrize(
        "topology_factory",
        [
            lambda: Topology(path_graph(10)),
            lambda: Topology(star_graph(7)),
            lambda: Topology(grid_graph(4, 5)),
            lambda: Topology(complete_graph(6)),
            lambda: Topology(gnp_graph(25, 0.2, seed=3)),
        ],
    )
    def test_validity(self, topology_factory):
        topology = topology_factory()
        colors = greedy_distance2_coloring(topology)
        assert_distance2(topology, colors)

    def test_color_count_bound(self):
        topology = Topology(gnp_graph(30, 0.15, seed=5))
        colors = greedy_distance2_coloring(topology)
        delta = topology.max_degree
        assert max(colors) + 1 <= delta * delta + 1

    def test_path_uses_three_colors(self):
        topology = Topology(path_graph(9))
        colors = greedy_distance2_coloring(topology)
        assert max(colors) + 1 == 3

    def test_star_needs_n_colors(self):
        # all leaves are within distance 2 of each other
        topology = Topology(star_graph(6))
        colors = greedy_distance2_coloring(topology)
        assert len(set(colors)) == 6

    def test_edgeless_graph_single_color(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(5))
        colors = greedy_distance2_coloring(Topology(graph))
        assert set(colors) == {0}
