"""Tests for the colour-class TDMA baseline simulator."""

from __future__ import annotations

import pytest

from repro.baselines import (
    greedy_distance2_coloring,
    simulate_round_naive,
    simulate_round_tdma,
    tdma_round_length,
)
from repro.beeping import BernoulliNoise
from repro.errors import ConfigurationError
from repro.graphs import Topology, gnp_graph, path_graph, star_graph


class TestNoiselessTDMA:
    def test_round_delivers_all_messages(self, sparse20):
        colors = greedy_distance2_coloring(sparse20)
        messages = [(v * 5 + 1) % 64 for v in range(20)]
        outcome = simulate_round_tdma(sparse20, messages, colors, message_bits=6)
        assert outcome.success

    def test_round_length_formula(self, sparse20):
        colors = greedy_distance2_coloring(sparse20)
        outcome = simulate_round_tdma(
            sparse20, [1] * 20, colors, message_bits=6
        )
        assert outcome.beep_rounds_used == tdma_round_length(
            max(colors) + 1, 6, 1
        )

    def test_silent_nodes_skipped(self):
        t = Topology(path_graph(4))
        colors = greedy_distance2_coloring(t)
        messages = [7, None, 9, None]
        outcome = simulate_round_tdma(t, messages, colors, message_bits=4)
        assert outcome.success
        assert outcome.decoded[1] == [7, 9]
        assert outcome.decoded[0] == []

    def test_zero_message_distinguished_from_silence(self):
        t = Topology(path_graph(3))
        colors = greedy_distance2_coloring(t)
        outcome = simulate_round_tdma(t, [0, None, 0], colors, message_bits=4)
        assert outcome.success
        assert outcome.decoded[1] == [0, 0]

    def test_invalid_coloring_rejected(self, sparse20):
        with pytest.raises(ConfigurationError):
            simulate_round_tdma(sparse20, [1] * 20, [0] * 20, message_bits=4)

    def test_bad_repetitions_rejected(self, sparse20):
        colors = greedy_distance2_coloring(sparse20)
        with pytest.raises(ConfigurationError):
            simulate_round_tdma(
                sparse20, [1] * 20, colors, message_bits=4, repetitions=0
            )


class TestNoisyTDMA:
    def test_repetition_defeats_mild_noise(self, sparse20):
        colors = greedy_distance2_coloring(sparse20)
        messages = [(v * 3) % 16 for v in range(20)]
        outcome = simulate_round_tdma(
            sparse20,
            messages,
            colors,
            message_bits=4,
            channel=BernoulliNoise(0.1, seed=1),
            repetitions=21,
        )
        assert outcome.success

    def test_no_repetition_fails_under_noise(self, sparse20):
        colors = greedy_distance2_coloring(sparse20)
        messages = [(v * 3) % 16 for v in range(20)]
        failures = sum(
            not simulate_round_tdma(
                sparse20,
                messages,
                colors,
                message_bits=4,
                channel=BernoulliNoise(0.2, seed=s),
                repetitions=1,
            ).success
            for s in range(5)
        )
        assert failures >= 4


class TestNaiveBaseline:
    def test_delivers_all_messages(self, sparse20):
        messages = [(v * 5 + 1) % 64 for v in range(20)]
        outcome = simulate_round_naive(sparse20, messages, message_bits=6)
        assert outcome.success
        assert outcome.beep_rounds_used == 20 * 7

    def test_linear_in_n_not_delta(self):
        # naive cost is n slots even on a path
        t = Topology(path_graph(30))
        outcome = simulate_round_naive(t, [1] * 30, message_bits=4)
        assert outcome.beep_rounds_used == 30 * 5

    def test_silent_nodes(self):
        t = Topology(star_graph(4))
        outcome = simulate_round_naive(t, [None, 3, None, 5], message_bits=4)
        assert outcome.success
        assert outcome.decoded[0] == [3, 5]

    def test_noise_with_repetition(self, sparse20):
        outcome = simulate_round_naive(
            sparse20,
            [(v * 3) % 16 for v in range(20)],
            message_bits=4,
            channel=BernoulliNoise(0.1, seed=2),
            repetitions=21,
        )
        assert outcome.success
