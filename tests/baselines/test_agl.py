"""Tests for the AGL-style full TDMA simulator and overhead formulas."""

from __future__ import annotations

import pytest

from repro.baselines import (
    TDMABroadcastSimulator,
    agl_overhead,
    agl_repetitions,
    agl_setup,
    beauquier_overhead,
    beauquier_setup,
    ours_broadcast_overhead,
    ours_congest_overhead,
)
from repro.errors import ConfigurationError
from repro.graphs import Topology, random_regular_graph
from tests.core.test_transpiler import GossipSum


class TestRepetitions:
    def test_noiseless_is_one(self):
        assert agl_repetitions(100, 0.0) == 1

    def test_noisy_scales_with_log_n(self):
        assert agl_repetitions(256, 0.1) == 4 * 8

    def test_beta_scales(self):
        assert agl_repetitions(256, 0.1, beta=2) == 16


class TestSimulator:
    def test_matches_native_execution(self, regular12):
        from repro.congest import BroadcastCongestNetwork

        native = BroadcastCongestNetwork(regular12, message_bits=6).run(
            [GossipSum() for _ in range(12)], max_rounds=10
        )
        simulator = TDMABroadcastSimulator(
            regular12, message_bits=6, eps=0.0, seed=1
        )
        simulated = simulator.run_broadcast_congest(
            [GossipSum() for _ in range(12)], max_rounds=10
        )
        assert simulated.outputs == native.outputs
        assert simulated.stats.failed_rounds == 0

    def test_noisy_with_repetition(self, regular12):
        simulator = TDMABroadcastSimulator(
            regular12, message_bits=6, eps=0.1, seed=1
        )
        result = simulator.run_broadcast_congest(
            [GossipSum() for _ in range(12)], max_rounds=10
        )
        assert result.finished
        assert result.stats.failed_rounds == 0

    def test_overhead_property(self, regular12):
        simulator = TDMABroadcastSimulator(
            regular12, message_bits=6, eps=0.0, seed=1
        )
        assert simulator.overhead == simulator.num_colors * 7
        result = simulator.run_broadcast_congest(
            [GossipSum(horizon=2) for _ in range(12)], max_rounds=10
        )
        assert result.stats.overhead == simulator.overhead

    def test_too_small_rejected(self):
        from repro.graphs import path_graph

        with pytest.raises(ConfigurationError):
            TDMABroadcastSimulator(Topology(path_graph(1)), message_bits=4)


class TestFormulas:
    def test_values_at_reference_point(self):
        # n = 256 (log n = 8), Delta = 16
        assert beauquier_setup(256, 16) == 16**6
        assert beauquier_overhead(256, 16) == 16**4 * 8
        assert agl_setup(256, 16) == 16**4 * 8
        assert agl_overhead(256, 16) == 16 * 8 * 256  # min{n, 256} = n
        assert ours_broadcast_overhead(256, 16) == 16 * 8
        assert ours_congest_overhead(256, 16) == 256 * 8

    def test_min_term_switches(self):
        # for Delta^2 < n, the min picks Delta^2
        assert agl_overhead(2**12, 16) == 16 * 12 * 256

    def test_improvement_factor(self):
        # paper: Theta(min{n/Delta, Delta}) improvement over [4]
        n, delta = 2**12, 16
        assert agl_overhead(n, delta) / ours_congest_overhead(n, delta) == delta

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ours_broadcast_overhead(1, 4)
        with pytest.raises(ConfigurationError):
            agl_overhead(16, 0)
