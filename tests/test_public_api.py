"""Public-API surface tests: import integrity and documentation coverage.

These guard the deliverable contract: every name exported through
``__all__`` exists, and every public module, class, and function in the
library carries a docstring.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.graphs",
    "repro.codes",
    "repro.beeping",
    "repro.congest",
    "repro.core",
    "repro.baselines",
    "repro.algorithms",
    "repro.lower_bounds",
    "repro.analysis",
    "repro.experiments",
]


def _all_modules() -> list[str]:
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            if not info.name.startswith("_"):
                names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        assert exported, f"{package_name} should declare __all__"
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    @pytest.mark.parametrize("module_name", _all_modules())
    def test_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", _all_modules())
    def test_public_members_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue
            if getattr(member, "__module__", None) != module_name:
                continue  # re-export; documented at its home
            assert member.__doc__ and member.__doc__.strip(), (
                f"{module_name}.{name} lacks a docstring"
            )
            if inspect.isclass(member):
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if method.__doc__ and method.__doc__.strip():
                        continue
                    # overrides inherit the contract documentation from a
                    # documented base-class method
                    inherited = any(
                        getattr(base, method_name, None) is not None
                        and getattr(base, method_name).__doc__
                        for base in member.__mro__[1:]
                    )
                    assert inherited, (
                        f"{module_name}.{name}.{method_name} lacks a docstring"
                    )
