"""Tests for channel noise models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.beeping import BernoulliNoise, NoiselessChannel
from repro.errors import ConfigurationError


class TestNoiselessChannel:
    def test_identity(self):
        channel = NoiselessChannel()
        received = np.array([True, False, True])
        heard = channel.apply(received, 0)
        assert np.array_equal(heard, received)

    def test_returns_copy(self):
        channel = NoiselessChannel()
        received = np.array([True, False])
        heard = channel.apply(received, 0)
        heard[0] = False
        assert received[0]

    def test_eps_zero(self):
        assert NoiselessChannel().eps == 0.0


class TestBernoulliNoise:
    def test_eps_range_enforced(self):
        for eps in [0.0, 0.5, 0.9, -0.1]:
            with pytest.raises(ConfigurationError):
                BernoulliNoise(eps, seed=0)

    def test_flip_rate_close_to_eps(self):
        channel = BernoulliNoise(0.2, seed=1)
        zeros = np.zeros((40, 5000), dtype=bool)
        heard = channel.apply(zeros, 0)
        assert abs(heard.mean() - 0.2) < 0.01

    def test_deterministic_per_round(self):
        a = BernoulliNoise(0.3, seed=5)
        b = BernoulliNoise(0.3, seed=5)
        received = np.zeros(64, dtype=bool)
        assert np.array_equal(a.apply(received, 17), b.apply(received, 17))

    def test_different_rounds_differ(self):
        channel = BernoulliNoise(0.3, seed=5)
        received = np.zeros(256, dtype=bool)
        assert not np.array_equal(
            channel.apply(received, 0), channel.apply(received, 1)
        )

    def test_different_seeds_differ(self):
        received = np.zeros(256, dtype=bool)
        a = BernoulliNoise(0.3, seed=1).apply(received, 0)
        b = BernoulliNoise(0.3, seed=2).apply(received, 0)
        assert not np.array_equal(a, b)

    def test_flips_symmetric_on_ones(self):
        channel = BernoulliNoise(0.25, seed=3)
        ones = np.ones((30, 4000), dtype=bool)
        heard = channel.apply(ones, 0)
        assert abs((~heard).mean() - 0.25) < 0.015

    def test_rejects_3d_input(self):
        channel = BernoulliNoise(0.1, seed=0)
        with pytest.raises(ConfigurationError):
            channel.apply(np.zeros((2, 2, 2), dtype=bool), 0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(0, 2**16),
        st.integers(1, 30),
        st.integers(1, 40),
    )
    def test_batch_equals_per_round_property(self, start, n, rounds):
        """The core determinism contract: flips depend only on (seed, round, n)."""
        channel = BernoulliNoise(0.2, seed=9)
        fresh = BernoulliNoise(0.2, seed=9)
        received = np.zeros((n, rounds), dtype=bool)
        block = channel.apply(received, start)
        columns = np.stack(
            [fresh.apply(received[:, i], start + i) for i in range(rounds)],
            axis=1,
        )
        assert np.array_equal(block, columns)

    def test_window_boundary_consistency(self):
        """Blocks spanning the 4096-round window boundary stay consistent."""
        channel = BernoulliNoise(0.2, seed=2)
        received = np.zeros((8, 100), dtype=bool)
        block = channel.apply(received, 4096 - 50)
        left = BernoulliNoise(0.2, seed=2).apply(received[:, :50], 4096 - 50)
        right = BernoulliNoise(0.2, seed=2).apply(received[:, 50:], 4096)
        assert np.array_equal(block, np.concatenate([left, right], axis=1))
