"""Failure injection: adversarial channels and graceful degradation.

The decoders must *detect and record* failure (wrong decodings flagged in
the outcome, executions diverging like a real network would) rather than
crash, even under channels far outside the model's ε < 1/2 assumption.
"""

from __future__ import annotations

import numpy as np

from repro.beeping.noise import NoiseModel
from repro.core import SimulationParameters, simulate_broadcast_round
from repro.core.transpiler import BeepSimulator
from repro.graphs import Topology, random_regular_graph
from tests.core.test_transpiler import GossipSum


class AllFlipChannel(NoiseModel):
    """Deterministically inverts every heard bit (ε = 1 — worse than the
    model ever allows)."""

    @property
    def eps(self) -> float:
        return 0.49  # reported rate; actual behaviour is total inversion

    def apply(self, received: np.ndarray, round_index: int) -> np.ndarray:
        return ~np.asarray(received, dtype=bool)


class SilenceChannel(NoiseModel):
    """Erases everything: devices hear permanent silence."""

    @property
    def eps(self) -> float:
        return 0.0

    def apply(self, received: np.ndarray, round_index: int) -> np.ndarray:
        return np.zeros_like(np.asarray(received, dtype=bool))


class TestAdversarialChannels:
    def test_total_inversion_fails_cleanly(self, regular12):
        params = SimulationParameters(message_bits=6, max_degree=3, eps=0.1, c=5)
        outcome = simulate_broadcast_round(
            regular12,
            [v % 64 for v in range(12)],
            params,
            seed=0,
            channel=AllFlipChannel(),
        )
        # no exception; failure is visible in the outcome
        assert not outcome.success
        assert outcome.phase1_errors > 0

    def test_total_silence_decodes_nothing(self, regular12):
        params = SimulationParameters(message_bits=6, max_degree=3, eps=0.1, c=5)
        outcome = simulate_broadcast_round(
            regular12,
            [v % 64 for v in range(12)],
            params,
            seed=0,
            channel=SilenceChannel(),
        )
        assert not outcome.success
        # silence carries no codeword: nothing should be accepted
        assert all(len(s) == 0 for s in outcome.accepted_sets)

    def test_transpiler_keeps_running_through_failures(self, regular12):
        """Under a hostile channel the simulated execution diverges from
        the native one (wrong deliveries), but the engine completes and
        accounts every failed round."""
        params = SimulationParameters(message_bits=6, max_degree=3, eps=0.1, c=5)
        simulator = BeepSimulator(
            regular12, params=params, seed=0, channel=AllFlipChannel()
        )
        result = simulator.run_broadcast_congest(
            [GossipSum(horizon=3) for _ in range(12)], max_rounds=5
        )
        assert result.finished
        assert result.stats.failed_rounds == result.stats.simulated_rounds
        assert result.stats.success_rate == 0.0


class TestMarginalNoise:
    def test_noise_just_under_half_mostly_fails(self, regular12):
        """ε → 1/2 carries almost no information; at fixed practical c the
        success rate should collapse — evidence the eps-threshold coupling
        in the decoder is real, not vestigial."""
        from repro.beeping.noise import BernoulliNoise

        params = SimulationParameters(message_bits=6, max_degree=3, eps=0.45, c=8)
        failures = 0
        for seed in range(4):
            outcome = simulate_broadcast_round(
                regular12,
                [v % 64 for v in range(12)],
                params,
                seed=seed,
                channel=BernoulliNoise(0.45, seed=seed),
            )
            failures += not outcome.success
        assert failures >= 2
