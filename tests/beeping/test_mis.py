"""Tests for the native beeping-model MIS (Section 7 / Afek et al. [1])."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import check_mis
from repro.beeping import BeepingMISProtocol, beeping_mis
from repro.errors import ConfigurationError
from repro.graphs import (
    Topology,
    complete_graph,
    cycle_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)
from repro.rng import derive_rng


GRAPHS = [
    ("path", lambda: Topology(path_graph(10))),
    ("cycle", lambda: Topology(cycle_graph(11))),
    ("star", lambda: Topology(star_graph(9))),
    ("complete", lambda: Topology(complete_graph(8))),
    ("grid", lambda: Topology(grid_graph(4, 5))),
    ("gnp", lambda: Topology(gnp_graph(36, 0.15, seed=4))),
    ("regular", lambda: Topology(random_regular_graph(28, 5, seed=5))),
]


class TestValidity:
    @pytest.mark.parametrize("name,factory", GRAPHS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_output_is_valid_mis(self, name, factory, seed):
        topology = factory()
        result = beeping_mis(topology, seed=seed)
        assert all(value is not None for value in result.in_mis), name
        ok, reason = check_mis(topology, result.in_mis)
        assert ok, f"{name}: {reason}"

    def test_isolated_nodes_join(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        result = beeping_mis(Topology(graph), seed=0)
        assert result.in_mis[2] and result.in_mis[3]

    def test_empty_network(self):
        import networkx as nx

        result = beeping_mis(Topology(nx.Graph()), seed=0)
        assert result.in_mis == []
        assert result.rounds_used == 0

    def test_complete_graph_exactly_one(self):
        topology = Topology(complete_graph(9))
        result = beeping_mis(topology, seed=3)
        assert sum(bool(v) for v in result.in_mis) == 1


class TestComplexity:
    def test_rounds_stay_within_polylog_budget_across_delta(self):
        """The Section 7 contrast: native MIS stays within its O(log^2 n)
        budget at every density, where matching costs Omega(Delta log n)
        (denser graphs may take a couple more knockout phases, but the
        phase count is bounded by O(log n) independent of Delta)."""
        log_n = math.ceil(math.log2(20))
        for delta in (3, 6, 9):
            topology = Topology(random_regular_graph(20, delta, seed=1))
            result = beeping_mis(topology, seed=1)
            ok, _ = check_mis(topology, result.in_mis)
            assert ok
            assert result.phases_used <= 2 * log_n

    def test_phase_budget_generous(self):
        topology = Topology(gnp_graph(64, 0.1, seed=2))
        result = beeping_mis(topology, seed=2)
        log_n = math.ceil(math.log2(64))
        assert result.phases_used <= 8 * log_n + 8

    def test_deterministic_under_seed(self):
        topology = Topology(gnp_graph(24, 0.2, seed=1))
        a = beeping_mis(topology, seed=9)
        b = beeping_mis(topology, seed=9)
        assert a.in_mis == b.in_mis
        assert a.rounds_used == b.rounds_used


class TestProtocolUnit:
    def test_rank_bits_validated(self):
        with pytest.raises(ConfigurationError):
            BeepingMISProtocol(0, derive_rng(0, "x"))

    def test_lone_node_decides_true(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0)
        result = beeping_mis(Topology(graph), seed=0)
        assert result.in_mis == [True]

    def test_custom_rank_bits(self):
        topology = Topology(path_graph(6))
        result = beeping_mis(topology, seed=0, rank_bits=20)
        ok, _ = check_mis(topology, result.in_mis)
        assert ok
