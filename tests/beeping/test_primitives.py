"""Tests for beep-wave broadcast (the O(D + b) primitive of Section 1.2)."""

from __future__ import annotations

import pytest

from repro import bitstrings as bs
from repro.beeping import BernoulliNoise, beep_wave_broadcast
from repro.errors import ConfigurationError
from repro.graphs import Topology, grid_graph, path_graph, star_graph
import networkx as nx


class TestNoiselessWaves:
    def test_path_delivers_and_measures_distance(self):
        t = Topology(path_graph(8))
        message = bs.from_bits([1, 0, 1, 1, 0, 0, 1])
        result = beep_wave_broadcast(t, 0, message)
        assert result.all_correct(message, set(range(8)))
        assert result.distances == list(range(8))

    def test_mid_path_source(self):
        t = Topology(path_graph(7))
        message = bs.from_bits([1, 1, 0, 1])
        result = beep_wave_broadcast(t, 3, message)
        assert result.all_correct(message, set(range(7)))
        assert result.distances == [3, 2, 1, 0, 1, 2, 3]

    def test_grid(self):
        t = Topology(grid_graph(4, 5))
        message = bs.from_bits([0, 1, 1, 0, 1])
        result = beep_wave_broadcast(t, 0, message)
        assert result.all_correct(message, set(range(20)))

    def test_star(self):
        t = Topology(star_graph(6))
        message = bs.from_bits([1, 0, 1])
        result = beep_wave_broadcast(t, 0, message)
        assert result.all_correct(message, set(range(6)))

    def test_all_zero_message(self):
        t = Topology(path_graph(5))
        message = bs.zeros(4)
        result = beep_wave_broadcast(t, 0, message)
        assert result.all_correct(message, set(range(5)))

    def test_disconnected_nodes_report_unreached(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        t = Topology(graph)
        message = bs.from_bits([1, 0])
        result = beep_wave_broadcast(t, 0, message)
        assert result.decoded[1] is not None
        assert result.decoded[2] is None
        assert result.distances[2] == -1

    def test_rounds_are_o_of_d_plus_b(self):
        t = Topology(path_graph(10))
        message = bs.from_bits([1] * 6)
        result = beep_wave_broadcast(t, 0, message)
        # 3(b+1) + ecc + 2 = 21 + 9 + 2
        assert result.rounds_used == 3 * 7 + 9 + 2


class TestValidation:
    def test_bad_source_rejected(self):
        t = Topology(path_graph(3))
        with pytest.raises(ConfigurationError):
            beep_wave_broadcast(t, 5, bs.from_bits([1]))

    def test_bad_repetitions_rejected(self):
        t = Topology(path_graph(3))
        with pytest.raises(ConfigurationError):
            beep_wave_broadcast(t, 0, bs.from_bits([1]), repetitions=0)


class TestNoisyWaves:
    def test_mild_noise_with_repetition_usually_works(self):
        t = Topology(path_graph(5))
        message = bs.from_bits([1, 0, 1])
        successes = 0
        for seed in range(8):
            result = beep_wave_broadcast(
                t,
                0,
                message,
                channel=BernoulliNoise(0.01, seed=seed),
                repetitions=15,
            )
            successes += result.all_correct(message, set(range(5)))
        assert successes >= 5

    def test_heavy_noise_breaks_waves(self):
        """Documented limitation: spurious beeps cascade into false waves —
        exactly the failure mode that motivates the paper's coded approach."""
        t = Topology(path_graph(6))
        message = bs.from_bits([1, 0, 1, 1, 0])
        failures = 0
        for seed in range(6):
            result = beep_wave_broadcast(
                t,
                0,
                message,
                channel=BernoulliNoise(0.1, seed=seed),
                repetitions=9,
            )
            failures += not result.all_correct(message, set(range(6)))
        assert failures >= 3
