"""Tests for the vectorised schedule executor, including the bit-exact
equivalence with the per-round engine (the contract DESIGN.md promises)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.beeping import (
    BeepingNetwork,
    BernoulliNoise,
    ScheduledProtocol,
    run_schedule,
)
from repro.errors import ConfigurationError
from repro.graphs import Topology, gnp_graph, path_graph, star_graph


class TestRunSchedule:
    def test_shapes(self):
        t = Topology(path_graph(4))
        heard = run_schedule(t, np.zeros((4, 9), dtype=bool))
        assert heard.shape == (4, 9)

    def test_own_beep_heard(self):
        t = Topology(path_graph(3))
        schedule = np.zeros((3, 1), dtype=bool)
        schedule[1, 0] = True
        heard = run_schedule(t, schedule)
        assert heard[1, 0] and heard[0, 0] and heard[2, 0]

    def test_out_of_range_silent(self):
        t = Topology(star_graph(4))
        schedule = np.zeros((4, 2), dtype=bool)
        schedule[3, 0] = True  # a leaf
        heard = run_schedule(t, schedule)
        # other leaves don't hear a sibling leaf
        assert not heard[1, 0] and not heard[2, 0]
        assert heard[0, 0]  # hub does

    def test_row_count_checked(self):
        t = Topology(path_graph(3))
        with pytest.raises(ConfigurationError):
            run_schedule(t, np.zeros((4, 2), dtype=bool))

    def test_one_dim_rejected(self):
        t = Topology(path_graph(3))
        with pytest.raises(ConfigurationError):
            run_schedule(t, np.zeros(3, dtype=bool))


class TestEngineEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(0, 500),
        st.integers(0, 2**16),
        st.integers(1, 24),
    )
    def test_batch_equals_engine_noisy(self, graph_seed, start_round, rounds):
        """run_schedule == BeepingNetwork on identical schedules and noise."""
        t = Topology(gnp_graph(8, 0.35, seed=graph_seed))
        rng = np.random.default_rng(graph_seed + 1)
        schedule = rng.random((8, rounds)) < 0.3

        channel_batch = BernoulliNoise(0.2, seed=5)
        heard_batch = run_schedule(t, schedule, channel_batch, start_round=start_round)

        channel_engine = BernoulliNoise(0.2, seed=5)
        protocols = [
            ScheduledProtocol(schedule[v], start_round=start_round)
            for v in range(8)
        ]
        BeepingNetwork(t, channel_engine).run(
            protocols,
            max_rounds=rounds,
            start_round=start_round,
            stop_when_finished=False,
        )
        for v in range(8):
            assert np.array_equal(heard_batch[v], protocols[v].heard), f"node {v}"

    def test_batch_equals_engine_noiseless(self):
        t = Topology(gnp_graph(10, 0.3, seed=3))
        rng = np.random.default_rng(0)
        schedule = rng.random((10, 30)) < 0.25
        heard_batch = run_schedule(t, schedule)
        protocols = [ScheduledProtocol(schedule[v]) for v in range(10)]
        BeepingNetwork(t).run(protocols, max_rounds=30, stop_when_finished=False)
        for v in range(10):
            assert np.array_equal(heard_batch[v], protocols[v].heard)


#: Mirrors repro.beeping.noise._WINDOW — start offsets are drawn around
#: multiples of it so phases straddle noise-window boundaries.
_NOISE_WINDOW = 4096


class TestBackendEquivalence:
    """DenseBackend and BitpackedBackend hear bit-identical matrices.

    The offsets are drawn both uniformly and clustered around noise-window
    boundaries, and the round counts are long enough that phases straddle
    windows — the regime where the packed flip words must reproduce the
    windowed Philox stream exactly.
    """

    @settings(max_examples=30, deadline=None)
    @given(
        graph_seed=st.integers(0, 500),
        start_round=st.one_of(
            st.integers(0, 3 * _NOISE_WINDOW),
            st.integers(_NOISE_WINDOW - 100, _NOISE_WINDOW + 100),
            st.integers(2 * _NOISE_WINDOW - 70, 2 * _NOISE_WINDOW + 70),
        ),
        rounds=st.integers(1, 200),
        density=st.floats(0.05, 0.9),
    )
    def test_bitpacked_equals_dense_noisy(
        self, graph_seed, start_round, rounds, density
    ):
        t = Topology(gnp_graph(9, density, seed=graph_seed))
        rng = np.random.default_rng(graph_seed + 1)
        schedule = rng.random((9, rounds)) < 0.3
        channel = BernoulliNoise(0.2, seed=5)
        heard_dense = run_schedule(
            t, schedule, channel, start_round=start_round, backend="dense"
        )
        heard_packed = run_schedule(
            t, schedule, channel, start_round=start_round, backend="bitpacked"
        )
        assert np.array_equal(heard_dense, heard_packed)

    @settings(max_examples=15, deadline=None)
    @given(
        graph_seed=st.integers(0, 500),
        rounds=st.integers(1, 150),
    )
    def test_bitpacked_equals_dense_noiseless(self, graph_seed, rounds):
        t = Topology(gnp_graph(11, 0.3, seed=graph_seed))
        rng = np.random.default_rng(graph_seed)
        schedule = rng.random((11, rounds)) < 0.25
        assert np.array_equal(
            run_schedule(t, schedule, backend="dense"),
            run_schedule(t, schedule, backend="bitpacked"),
        )

    @settings(max_examples=10, deadline=None)
    @given(
        start_round=st.integers(0, 2 * _NOISE_WINDOW),
        phase_lengths=st.lists(st.integers(1, 120), min_size=2, max_size=5),
    )
    def test_chained_phases_match_across_backends(
        self, start_round, phase_lengths
    ):
        """Phase chaining (as Algorithm 1 does between its two phases)
        stays bit-identical when the backends differ per phase."""
        t = Topology(gnp_graph(8, 0.35, seed=2))
        rng = np.random.default_rng(7)
        channel = BernoulliNoise(0.15, seed=11)
        offset = start_round
        for length in phase_lengths:
            schedule = rng.random((8, length)) < 0.3
            heard_dense = run_schedule(
                t, schedule, channel, start_round=offset, backend="dense"
            )
            heard_packed = run_schedule(
                t, schedule, channel, start_round=offset, backend="bitpacked"
            )
            assert np.array_equal(heard_dense, heard_packed)
            offset += length

    @settings(max_examples=10, deadline=None)
    @given(
        graph_seed=st.integers(0, 100),
        start_round=st.integers(0, 2**16),
        rounds=st.integers(1, 24),
    )
    def test_bitpacked_equals_per_round_engine(
        self, graph_seed, start_round, rounds
    ):
        """The packed path also matches the per-round engine directly."""
        t = Topology(gnp_graph(8, 0.35, seed=graph_seed))
        rng = np.random.default_rng(graph_seed + 1)
        schedule = rng.random((8, rounds)) < 0.3
        heard = run_schedule(
            t,
            schedule,
            BernoulliNoise(0.2, seed=5),
            start_round=start_round,
            backend="bitpacked",
        )
        protocols = [
            ScheduledProtocol(schedule[v], start_round=start_round)
            for v in range(8)
        ]
        BeepingNetwork(t, BernoulliNoise(0.2, seed=5), backend="bitpacked").run(
            protocols,
            max_rounds=rounds,
            start_round=start_round,
            stop_when_finished=False,
        )
        for v in range(8):
            assert np.array_equal(heard[v], protocols[v].heard), f"node {v}"
