"""Scenario-layer tests: heterogeneous, adversarial, and dynamic networks.

Pins the window contract for every noise model — flips for round ``t``
are a pure function of ``(seed, t, n)``, never of batching, backend, or
replica grouping — plus the :class:`DynamicTopology` epoch-mask
semantics and the grid-facing noise-model registry.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.beeping import run_schedule, run_schedule_batch
from repro.beeping.noise import (
    AdversarialNoise,
    BernoulliNoise,
    DynamicTopology,
    HeterogeneousNoise,
    NoiselessChannel,
    make_noise_model,
    noise_model_names,
    parse_noise_model,
    unreliable_zone,
    zone_rates,
)
from repro.engine import get_backend
from repro.errors import ConfigurationError
from repro.graphs import Topology, gnp_graph, path_graph
from repro.rng import derive_seed

_WINDOW = 4096


def _channels(n: int, seed: int = 7):
    """One instance of every windowed channel, pinned to ``n`` nodes."""
    return [
        BernoulliNoise(0.2, seed),
        AdversarialNoise(0.1, seed),
        unreliable_zone(n, frac=0.25, eps_hot=0.4, eps_cold=0.05, seed=seed),
    ]


class TestWindowContractProperty:
    """apply per round == flip_block batched, for every model, any offset."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(0, 3 * _WINDOW),
        st.integers(1, 24),
        st.integers(1, 32),
        st.integers(0, 2),
    )
    def test_batch_equals_per_round(self, start, n, rounds, which):
        channel = _channels(n)[which]
        fresh = _channels(n)[which]
        received = np.zeros((n, rounds), dtype=bool)
        block = channel.apply(received, start)
        columns = np.stack(
            [fresh.apply(received[:, i], start + i) for i in range(rounds)],
            axis=1,
        )
        assert np.array_equal(block, columns)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 64), st.integers(0, 2))
    def test_window_straddle_equals_concatenation(self, n, rounds, which):
        start = _WINDOW - rounds // 2 - 1
        block = _channels(n)[which].flip_block(start, rounds, n)
        split = min(rounds, _WINDOW - start)
        fresh = _channels(n)[which]
        left = fresh.flip_block(start, split, n)
        parts = [left]
        if split < rounds:
            parts.append(fresh.flip_block(start + split, rounds - split, n))
        assert np.array_equal(block, np.concatenate(parts, axis=1))

    @pytest.mark.parametrize("which", [0, 1, 2])
    def test_flips_never_depend_on_input(self, which):
        # XOR semantics: heard ^ received must be the same flip pattern
        # whatever was transmitted (the adversary cannot read the bits).
        n = 12
        channel = _channels(n)[which]
        zeros = np.zeros((n, 30), dtype=bool)
        ones = np.ones((n, 30), dtype=bool)
        from_zeros = channel.apply(zeros, 100)
        from_ones = channel.apply(ones, 100)
        assert np.array_equal(from_zeros, ~from_ones)


class TestWindowCacheKey:
    """Regression: the window cache keys on (window, n), and eviction
    replays identical flips — one channel shared across two graph sizes
    can never cross-contaminate."""

    def test_interleaved_sizes_match_fresh_channels(self):
        shared = BernoulliNoise(0.3, seed=11)
        small = BernoulliNoise(0.3, seed=11).flip_block(0, 40, 8)
        large = BernoulliNoise(0.3, seed=11).flip_block(0, 40, 13)
        for _ in range(3):  # alternate sizes against the one instance
            assert np.array_equal(shared.flip_block(0, 40, 8), small)
            assert np.array_equal(shared.flip_block(0, 40, 13), large)

    @pytest.mark.parametrize("which", [0, 1, 2])
    def test_eviction_regenerates_identical_flips(self, which):
        n = 9
        channel = _channels(n)[which]
        first = channel.flip_block(0, 16, n).copy()
        # Touch enough distinct windows to evict window 0 from the LRU.
        for window in range(1, 8):
            channel.flip_block(window * _WINDOW, 4, n)
        assert (0, n) not in channel._window_cache
        assert np.array_equal(channel.flip_block(0, 16, n), first)

    def test_heterogeneous_rejects_foreign_width(self):
        channel = unreliable_zone(
            10, frac=0.3, eps_hot=0.4, eps_cold=0.01, seed=3
        )
        with pytest.raises(ConfigurationError, match="built for 10"):
            channel.flip_block(0, 5, 11)


class TestHeterogeneousNoise:
    def test_validation(self):
        for bad in (np.zeros((2, 2)), np.array([]), [0.1, 0.5], [-0.01]):
            with pytest.raises(ConfigurationError):
                HeterogeneousNoise(bad, seed=0)

    def test_eps_is_mean_and_vector_read_only(self):
        channel = HeterogeneousNoise([0.1, 0.3], seed=0)
        assert channel.eps == pytest.approx(0.2)
        assert channel.num_nodes == 2
        with pytest.raises(ValueError):
            channel.eps_vector[0] = 0.4

    def test_per_node_rates_realised(self):
        vector = np.array([0.0, 0.05, 0.45])
        channel = HeterogeneousNoise(vector, seed=5)
        flips = channel.flip_block(0, _WINDOW, 3)
        rates = flips.mean(axis=1)
        assert rates[0] == 0.0
        assert abs(rates[1] - 0.05) < 0.02
        assert abs(rates[2] - 0.45) < 0.03


class TestAdversarialNoise:
    def test_validation(self):
        for eps in (0.0, 0.5, -0.1, 0.9):
            with pytest.raises(ConfigurationError):
                AdversarialNoise(eps, seed=0)

    def test_budget_spent_exactly(self):
        n = 20
        eps = 0.05
        channel = AdversarialNoise(eps, seed=1)
        flips = channel.flip_block(0, _WINDOW, n)
        assert int(flips.sum()) == int(eps * _WINDOW * n)

    def test_bursts_are_whole_rounds_plus_one_partial(self):
        n = 7
        channel = AdversarialNoise(0.1, seed=2)
        per_round = channel.flip_block(0, _WINDOW, n).sum(axis=0)
        full = int(0.1 * _WINDOW * n) // n
        assert int((per_round == n).sum()) == full
        partial = per_round[(per_round > 0) & (per_round < n)]
        assert partial.size <= 1

    def test_tiny_budget_rounds_to_zero(self):
        channel = AdversarialNoise(1e-7, seed=0)
        assert not channel.flip_block(0, 64, 3).any()


class TestUnreliableZone:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            unreliable_zone(0, frac=0.5, eps_hot=0.1, eps_cold=0.0, seed=0)
        with pytest.raises(ConfigurationError):
            unreliable_zone(8, frac=1.5, eps_hot=0.1, eps_cold=0.0, seed=0)
        with pytest.raises(ConfigurationError):
            unreliable_zone(8, frac=0.5, eps_hot=0.5, eps_cold=0.0, seed=0)

    def test_hot_count_and_rates(self):
        channel = unreliable_zone(
            20, frac=0.25, eps_hot=0.4, eps_cold=0.01, seed=9
        )
        vector = channel.eps_vector
        assert int((vector == 0.4).sum()) == 5
        assert int((vector == 0.01).sum()) == 15

    def test_zone_is_seeded_and_deterministic(self):
        a = unreliable_zone(16, frac=0.5, eps_hot=0.3, eps_cold=0.0, seed=4)
        b = unreliable_zone(16, frac=0.5, eps_hot=0.3, eps_cold=0.0, seed=4)
        c = unreliable_zone(16, frac=0.5, eps_hot=0.3, eps_cold=0.0, seed=5)
        assert np.array_equal(a.eps_vector, b.eps_vector)
        assert not np.array_equal(a.eps_vector, c.eps_vector)

    def test_frac_zero_is_all_cold(self):
        channel = unreliable_zone(
            6, frac=0.0, eps_hot=0.4, eps_cold=0.02, seed=0
        )
        assert np.all(channel.eps_vector == 0.02)


class TestZoneRates:
    def test_mean_stays_on_budget(self):
        for n, frac, eps in ((16, 0.25, 0.05), (40, 0.1, 0.1), (9, 0.5, 0.02)):
            hot_count, eps_hot, eps_cold = zone_rates(n, frac, eps)
            mean = (hot_count * eps_hot + (n - hot_count) * eps_cold) / n
            assert mean <= eps + 1e-12
            assert eps_hot >= eps >= eps_cold

    def test_full_zone_degenerates_to_uniform(self):
        assert zone_rates(8, 1.0, 0.05) == (8, 0.05, 0.05)


class TestRegistry:
    def test_names_listed(self):
        assert noise_model_names() == ("bernoulli", "adversarial", "zone:<frac>")

    def test_parse_forms(self):
        assert parse_noise_model("bernoulli") == ("bernoulli",)
        assert parse_noise_model("adversarial") == ("adversarial",)
        assert parse_noise_model("zone:0.25") == ("zone", 0.25)

    @pytest.mark.parametrize("name", ["bogus", "zone:", "zone:x", 7])
    def test_unknown_rejected_one_line_listing_known(self, name):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_noise_model(name)
        message = str(excinfo.value)
        assert "\n" not in message
        assert "bernoulli" in message and "adversarial" in message

    @pytest.mark.parametrize("name", ["zone:0", "zone:1.5", "zone:-0.1"])
    def test_zone_fraction_out_of_range_one_line(self, name):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_noise_model(name)
        message = str(excinfo.value)
        assert "\n" not in message and "zone fraction" in message

    def test_bernoulli_matches_historical_default_channel(self):
        # make_noise_model derives the channel seed from the session seed
        # exactly like the historical make_channel_for path, so cached
        # sweep results from earlier schema versions replay bit-for-bit.
        session_seed = 42
        channel = make_noise_model("bernoulli", 0.1, session_seed, 8)
        legacy = BernoulliNoise(0.1, derive_seed(session_seed, "channel"))
        assert np.array_equal(
            channel.flip_block(0, 200, 8), legacy.flip_block(0, 200, 8)
        )

    @pytest.mark.parametrize("name", ["bernoulli", "adversarial", "zone:0.5"])
    def test_eps_zero_is_noiseless_for_every_model(self, name):
        assert isinstance(make_noise_model(name, 0.0, 1, 8), NoiselessChannel)

    def test_model_types(self):
        assert isinstance(make_noise_model("adversarial", 0.1, 1, 8), AdversarialNoise)
        zone = make_noise_model("zone:0.25", 0.05, 1, 8)
        assert isinstance(zone, HeterogeneousNoise)
        assert zone.num_nodes == 8


class TestDynamicTopology:
    def _base(self, n: int = 20) -> Topology:
        return Topology(gnp_graph(n, 0.3, seed=1))

    def test_validation(self):
        base = self._base()
        with pytest.raises(ConfigurationError):
            DynamicTopology(base, period=0, churn=0.1)
        with pytest.raises(ConfigurationError):
            DynamicTopology(base, period=True, churn=0.1)
        with pytest.raises(ConfigurationError):
            DynamicTopology(base, period=4, churn=1.0)
        with pytest.raises(ConfigurationError):
            DynamicTopology(base, period=4, edge_failure=-0.1)
        wrapped = DynamicTopology(base, period=4, churn=0.1)
        with pytest.raises(ConfigurationError, match="wrap another"):
            DynamicTopology(wrapped, period=4)

    def test_properties_delegate_to_base(self):
        base = self._base()
        dynamic = DynamicTopology(base, period=8, churn=0.3, seed=2)
        assert dynamic.base is base
        assert dynamic.num_nodes == base.num_nodes
        assert dynamic.num_edges == base.num_edges
        assert dynamic.max_degree == base.max_degree

    def test_segments_cover_span_epoch_aligned(self):
        dynamic = DynamicTopology(self._base(), period=3, churn=0.1)
        assert list(dynamic.segments(2, 10)) == [(2, 3), (3, 6), (6, 9), (9, 12)]
        assert list(dynamic.segments(0, 0)) == []
        for start, stop in dynamic.segments(5, 100):
            assert dynamic.epoch_of(start) == dynamic.epoch_of(stop - 1)

    def test_masks_are_seeded_and_cached(self):
        base = self._base()
        dynamic = DynamicTopology(base, period=4, churn=0.4, seed=7)
        twin = DynamicTopology(base, period=4, churn=0.4, seed=7)
        first = dynamic.topology_at(0)
        assert dynamic.topology_at(3) is first  # same epoch, cached
        assert sorted(first.graph.edges) == sorted(twin.topology_at(0).graph.edges)
        other = DynamicTopology(base, period=4, churn=0.4, seed=8)
        epochs_differ = any(
            sorted(dynamic.topology_at(e * 4).graph.edges)
            != sorted(other.topology_at(e * 4).graph.edges)
            for e in range(4)
        )
        assert epochs_differ

    def test_mask_removes_edges_never_nodes(self):
        base = self._base()
        dynamic = DynamicTopology(
            base, period=2, churn=0.5, edge_failure=0.3, seed=3
        )
        base_edges = set(map(tuple, map(sorted, base.graph.edges)))
        for epoch in range(5):
            masked = dynamic.topology_at(epoch * 2)
            assert masked.num_nodes == base.num_nodes
            masked_edges = set(map(tuple, map(sorted, masked.graph.edges)))
            assert masked_edges <= base_edges

    def test_zero_rates_keep_full_graph(self):
        base = self._base()
        dynamic = DynamicTopology(base, period=4, seed=0)
        masked = dynamic.topology_at(0)
        assert masked.num_edges == base.num_edges

    def test_edgeless_base(self):
        base = Topology(gnp_graph(5, 0.0, seed=0))
        dynamic = DynamicTopology(base, period=2, churn=0.5, seed=1)
        assert dynamic.topology_at(0).num_edges == 0


class TestDynamicExecution:
    """run_schedule / run_schedule_batch over a DynamicTopology."""

    def _setup(self, n: int = 24, rounds: int = 40):
        base = Topology(gnp_graph(n, 0.25, seed=2))
        dynamic = DynamicTopology(base, period=7, churn=0.2, seed=5)
        schedule = np.random.default_rng(0).random((n, rounds)) < 0.25
        return base, dynamic, schedule

    def test_matches_manual_segmentation(self):
        _, dynamic, schedule = self._setup()
        channel = BernoulliNoise(0.1, 3)
        heard = run_schedule(dynamic, schedule, channel, 4)
        manual = np.empty_like(schedule)
        backend = get_backend("dense")
        for start, stop in dynamic.segments(4, schedule.shape[1]):
            lo, hi = start - 4, stop - 4
            manual[:, lo:hi] = backend.run_schedule(
                dynamic.topology_at(start), schedule[:, lo:hi], channel, start
            )
        assert np.array_equal(heard, manual)

    @pytest.mark.parametrize("which", [0, 1, 2])
    def test_dense_and_bitpacked_identical(self, which):
        _, dynamic, schedule = self._setup()
        channel = _channels(dynamic.num_nodes)[which]
        dense = run_schedule(dynamic, schedule, channel, 11, backend="dense")
        packed = run_schedule(
            dynamic, schedule, channel, 11, backend="bitpacked"
        )
        assert np.array_equal(dense, packed)

    def test_batch_equal_starts_matches_solo(self):
        _, dynamic, schedule = self._setup()
        n = dynamic.num_nodes
        rng = np.random.default_rng(4)
        schedules = rng.random((3, n, 40)) < 0.25
        channels = _channels(n)
        starts = [9, 9, 9]
        batched = run_schedule_batch(dynamic, schedules, channels, starts)
        for index in range(3):
            solo = run_schedule(
                dynamic, schedules[index], channels[index], starts[index]
            )
            assert np.array_equal(batched[index], solo)

    def test_batch_differing_starts_matches_solo(self):
        _, dynamic, _ = self._setup()
        n = dynamic.num_nodes
        rng = np.random.default_rng(6)
        schedules = rng.random((3, n, 25)) < 0.25
        channels = _channels(n)
        starts = [0, 13, 4090]
        batched = run_schedule_batch(dynamic, schedules, channels, starts)
        for index in range(3):
            solo = run_schedule(
                dynamic, schedules[index], channels[index], starts[index]
            )
            assert np.array_equal(batched[index], solo)

    def test_batch_shape_validation(self):
        _, dynamic, schedule = self._setup()
        with pytest.raises(ValueError):
            run_schedule_batch(dynamic, schedule, [None], [0])
        with pytest.raises(ValueError):
            run_schedule_batch(
                dynamic, schedule[None], [None, None], [0]
            )

    def test_dynamic_rejects_1d_schedule(self):
        _, dynamic, _ = self._setup()
        with pytest.raises(ValueError):
            run_schedule(dynamic, np.zeros(dynamic.num_nodes, dtype=bool))


class TestCrossBackendIdentity:
    """Every scenario channel is bit-identical across static backends."""

    @pytest.mark.parametrize("which", [0, 1, 2])
    @pytest.mark.parametrize("start", [0, 4090])
    def test_run_schedule_dense_vs_bitpacked(self, which, start):
        topology = Topology(path_graph(17))
        schedule = np.random.default_rng(1).random((17, 50)) < 0.3
        channel = _channels(17)[which]
        dense = get_backend("dense").run_schedule(
            topology, schedule, channel, start
        )
        packed = get_backend("bitpacked").run_schedule(
            topology, schedule, channel, start
        )
        assert np.array_equal(dense, packed)

    @pytest.mark.parametrize("backend", ["dense", "bitpacked"])
    def test_replica_batch_matches_solo(self, backend):
        topology = Topology(gnp_graph(15, 0.3, seed=3))
        rng = np.random.default_rng(2)
        schedules = rng.random((3, 15, 30)) < 0.25
        channels = _channels(15)
        starts = [5, 4090, 0]
        resolved = get_backend(backend)
        batched = resolved.run_schedule_batch(
            topology, schedules, channels, starts
        )
        for index in range(3):
            solo = resolved.run_schedule(
                topology, schedules[index], channels[index], starts[index]
            )
            assert np.array_equal(batched[index], solo)
