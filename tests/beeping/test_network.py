"""Tests for the round-by-round beeping engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beeping import (
    Action,
    BeepingNetwork,
    BernoulliNoise,
    ScheduledProtocol,
)
from repro.beeping.node import BeepingProtocol
from repro.errors import ConfigurationError, ProtocolViolationError
from repro.graphs import Topology, path_graph, star_graph


class _AlwaysBeep(BeepingProtocol):
    def act(self, round_index):
        return Action.BEEP

    def observe(self, round_index, heard):
        pass


class _Listener(BeepingProtocol):
    def __init__(self):
        self.heard = []

    def act(self, round_index):
        return Action.LISTEN

    def observe(self, round_index, heard):
        self.heard.append(heard)


class _BadProtocol(BeepingProtocol):
    def act(self, round_index):
        return "beep"  # not an Action

    def observe(self, round_index, heard):
        pass


class TestEngineSemantics:
    def test_listener_hears_neighbor_beep(self, path6):
        protocols = [_Listener() for _ in range(6)]
        protocols[0] = _AlwaysBeep()
        BeepingNetwork(path6).run(protocols, max_rounds=1, stop_when_finished=False)
        assert protocols[1].heard == [True]
        assert protocols[2].heard == [False]

    def test_beeper_observes_own_beep(self):
        t = Topology(path_graph(2))
        record = []

        class Recorder(BeepingProtocol):
            def act(self, round_index):
                return Action.BEEP

            def observe(self, round_index, heard):
                record.append(heard)

        BeepingNetwork(t).run(
            [Recorder(), _Listener()], max_rounds=1, stop_when_finished=False
        )
        assert record == [True]

    def test_or_semantics_multiple_beepers(self):
        t = Topology(star_graph(4))
        hub = _Listener()
        protocols = [hub, _AlwaysBeep(), _AlwaysBeep(), _Listener()]
        BeepingNetwork(t).run(protocols, max_rounds=1, stop_when_finished=False)
        assert hub.heard == [True]
        # leaves hear only the hub (silent), not each other
        assert protocols[3].heard == [False]

    def test_silence_everywhere(self, path6):
        protocols = [_Listener() for _ in range(6)]
        BeepingNetwork(path6).run(protocols, max_rounds=3, stop_when_finished=False)
        assert all(p.heard == [False] * 3 for p in protocols)

    def test_protocol_count_checked(self, path6):
        with pytest.raises(ConfigurationError):
            BeepingNetwork(path6).run([_Listener()], max_rounds=1)

    def test_bad_action_rejected(self, path6):
        protocols = [_BadProtocol() for _ in range(6)]
        with pytest.raises(ProtocolViolationError):
            BeepingNetwork(path6).run(protocols, max_rounds=1)

    def test_negative_rounds_rejected(self, path6):
        with pytest.raises(ConfigurationError):
            BeepingNetwork(path6).run(
                [_Listener() for _ in range(6)], max_rounds=-1
            )


class TestScheduledProtocol:
    def test_follows_schedule_and_records(self):
        t = Topology(path_graph(2))
        schedule = np.array([True, False, True])
        sender = ScheduledProtocol(schedule)
        receiver = ScheduledProtocol(np.zeros(3, dtype=bool))
        BeepingNetwork(t).run([sender, receiver], max_rounds=3)
        assert np.array_equal(receiver.heard, schedule)
        # sender hears its own beeps
        assert np.array_equal(sender.heard, schedule)

    def test_finished_after_schedule(self):
        protocol = ScheduledProtocol(np.zeros(2, dtype=bool))
        assert not protocol.finished
        protocol.observe(0, False)
        protocol.observe(1, False)
        assert protocol.finished

    def test_listens_beyond_schedule(self):
        protocol = ScheduledProtocol(np.array([True]))
        assert protocol.act(5) is Action.LISTEN

    def test_rejects_2d_schedule(self):
        with pytest.raises(ConfigurationError):
            ScheduledProtocol(np.zeros((2, 2), dtype=bool))


class TestTraceAndStopping:
    def test_trace_records_matrices(self, path6):
        protocols = [ScheduledProtocol(np.zeros(4, dtype=bool)) for _ in range(6)]
        trace = BeepingNetwork(path6).run(protocols, max_rounds=4, trace=True)
        assert trace.rounds_used == 4
        assert trace.beeps.shape == (6, 4)
        assert trace.heard.shape == (6, 4)

    def test_trace_matches_schedule_with_early_stop(self, path6):
        """Equivalence regression for the preallocated trace matrices.

        The trace must equal the executed schedule column for column,
        and an early stop must trim the preallocated budget back to
        ``rounds_used`` columns.
        """
        schedules = [
            np.array([bool((node + r) % 2) for r in range(3)])
            for node in range(6)
        ]
        protocols = [ScheduledProtocol(schedule) for schedule in schedules]
        trace = BeepingNetwork(path6).run(protocols, max_rounds=50, trace=True)
        assert trace.rounds_used == 3
        assert trace.beeps.shape == (6, 3)
        assert np.array_equal(trace.beeps, np.stack(schedules))
        # heard = own beep OR any neighbour's beep (noiseless path graph)
        expected_heard = np.stack(
            [protocol.heard for protocol in protocols]
        )
        assert np.array_equal(trace.heard, expected_heard)

    def test_trace_memory_is_one_owned_allocation(self, path6):
        """Memory regression: no per-round column lists, no budget-sized
        views kept alive after an early stop."""
        protocols = [ScheduledProtocol(np.zeros(2, dtype=bool)) for _ in range(6)]
        trace = BeepingNetwork(path6).run(protocols, max_rounds=500, trace=True)
        assert trace.rounds_used == 2
        for matrix in (trace.beeps, trace.heard):
            assert matrix.shape == (6, 2)
            # the trimmed matrix owns its data (not a view over the
            # 500-round preallocation) ...
            assert matrix.base is None
        # ... and the historical per-round column accumulators are gone.
        assert not hasattr(trace, "_beep_columns")

    def test_trace_full_budget_uses_preallocation_directly(self, path6):
        protocols = [ScheduledProtocol(np.zeros(4, dtype=bool)) for _ in range(6)]
        trace = BeepingNetwork(path6).run(protocols, max_rounds=4, trace=True)
        assert trace.beeps.shape == (6, 4)
        assert trace.beeps.base is None

    def test_trace_capacity_grows_past_initial_chunk(self, path6, monkeypatch):
        """Huge budgets must not preallocate budget-sized matrices; the
        capacity grows geometrically only as rounds actually execute."""
        from repro.beeping.network import ExecutionTrace

        monkeypatch.setattr(ExecutionTrace, "_INITIAL_CAPACITY", 2)
        schedules = [
            np.array([bool((node + r) % 2) for r in range(5)])
            for node in range(6)
        ]
        protocols = [ScheduledProtocol(schedule) for schedule in schedules]
        trace = BeepingNetwork(path6).run(
            protocols, max_rounds=10_000, trace=True
        )
        assert trace.rounds_used == 5
        assert trace.beeps.shape == (6, 5)
        assert np.array_equal(trace.beeps, np.stack(schedules))

    def test_trace_with_zero_rounds_keeps_none(self, path6):
        protocols = [ScheduledProtocol(np.zeros(2, dtype=bool)) for _ in range(6)]
        trace = BeepingNetwork(path6).run(protocols, max_rounds=0, trace=True)
        assert trace.rounds_used == 0
        assert trace.beeps is None and trace.heard is None

    def test_early_stop_when_finished(self, path6):
        protocols = [ScheduledProtocol(np.zeros(2, dtype=bool)) for _ in range(6)]
        trace = BeepingNetwork(path6).run(protocols, max_rounds=100)
        assert trace.rounds_used == 2

    def test_noise_applied_with_start_round(self):
        t = Topology(path_graph(2))
        channel = BernoulliNoise(0.4, seed=7)
        listeners = [_Listener(), _Listener()]
        BeepingNetwork(t, channel).run(
            listeners, max_rounds=64, start_round=100, stop_when_finished=False
        )
        # silence + noise -> some flips should appear
        assert any(listeners[0].heard)
