"""GridSpec validation and expansion: everything fails fast and listed."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sweeps import GridSpec, load_grid

MINIMAL = {"topologies": ["cycle"], "sizes": [8], "noises": [0.0]}


def spec(**overrides) -> GridSpec:
    payload = {**MINIMAL, **overrides}
    return GridSpec.from_dict(payload)


class TestValidation:
    def test_minimal_flat_dict(self):
        grid = spec()
        assert grid.topologies == ("cycle",)
        assert grid.backends == ("auto",)
        assert grid.seeds == (0,)

    def test_toml_shaped_dict(self):
        grid = GridSpec.from_dict(
            {"grid": MINIMAL, "params": {"cycle": {}}}
        )
        assert grid.sizes == (8,)

    def test_unknown_topology_lists_known(self):
        with pytest.raises(ConfigurationError) as excinfo:
            spec(topologies=["cycle", "quantum-foam"])
        message = str(excinfo.value)
        assert "unknown topology family 'quantum-foam'" in message
        assert "expander" in message and "\n" not in message

    def test_unknown_grid_key_lists_known(self):
        with pytest.raises(ConfigurationError) as excinfo:
            spec(sizs=[8])
        message = str(excinfo.value)
        assert "'sizs'" in message and "sizes" in message
        assert "\n" not in message

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            GridSpec.from_dict({"grid": MINIMAL, "grids": {}})
        assert "'grids'" in str(excinfo.value)

    def test_missing_required_keys_listed(self):
        with pytest.raises(ConfigurationError) as excinfo:
            GridSpec.from_dict({"topologies": ["cycle"]})
        message = str(excinfo.value)
        assert "'sizes'" in message and "'noises'" in message

    @pytest.mark.parametrize(
        "overrides",
        [
            {"sizes": [1]},
            {"sizes": [8.5]},
            {"sizes": [True]},
            {"sizes": []},
            {"sizes": 8},
            {"noises": [0.5]},
            {"noises": [-0.1]},
            {"noises": ["low"]},
            {"backends": ["quantum"]},
            {"seeds": [-1]},
            {"rounds": 0},
            {"gamma": 0},
            {"topologies": "cycle"},
            {"topologies": [7]},
        ],
    )
    def test_malformed_values_rejected_one_line(self, overrides):
        with pytest.raises(ConfigurationError) as excinfo:
            spec(**overrides)
        assert "\n" not in str(excinfo.value)

    def test_family_params_validated_eagerly(self):
        with pytest.raises(ConfigurationError) as excinfo:
            spec(
                topologies=["expander"],
                params={"expander": {"diameter": 2}},
            )
        assert "no parameter 'diameter'" in str(excinfo.value)

    def test_params_for_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(params={"quantum-foam": {"p": 1}})

    def test_int_noise_accepted_as_float(self):
        grid = spec(noises=[0])
        assert grid.noises == (0.0,)

    def test_infeasible_family_size_rejected_eagerly(self):
        # feasibility is part of construction — a campaign must never
        # fail (discarding completed points) halfway through execution
        for topologies, sizes in (
            (["cycle", "hypercube"], [12]),
            (["tree"], [16]),
            (["expander"], [9]),
        ):
            with pytest.raises(ConfigurationError) as excinfo:
                spec(topologies=topologies, sizes=sizes)
            message = str(excinfo.value)
            assert "grid infeasible" in message and "\n" not in message


class TestExpansion:
    def test_cartesian_product_order(self):
        grid = spec(
            topologies=["cycle", "path"],
            sizes=[8, 12],
            noises=[0.0, 0.1],
            seeds=[0, 1],
        )
        points = grid.expand()
        assert len(points) == 2 * 2 * 2 * 2
        # family-major, seed-minor order
        assert [p.family for p in points[:8]] == ["cycle"] * 8
        assert [p.seed for p in points[:2]] == [0, 1]

    def test_backend_override_replaces_axis(self):
        grid = spec(backends=["dense", "bitpacked"])
        assert len(grid.expand()) == 2
        points = grid.expand(backend="dense")
        assert len(points) == 1 and points[0].backend == "dense"

    def test_profile_scales_rounds(self):
        grid = spec(rounds=2)
        assert grid.expand(profile="quick")[0].rounds == 2
        assert grid.expand(profile="full")[0].rounds == 6  # default 3x
        assert grid.expand(profile="smoke")[0].rounds == 2

    def test_explicit_full_rounds(self):
        grid = spec(rounds=2, full_rounds=11)
        assert grid.expand(profile="full")[0].rounds == 11

    def test_points_carry_resolved_params(self):
        grid = spec(topologies=["expander"])
        [point] = grid.expand()
        assert dict(point.params)["degree"] == 3  # schema default

    def test_slug_is_filesystem_safe_and_distinct(self):
        grid = spec(
            topologies=["expander", "torus"],
            sizes=[12, 16],
            noises=[0.0, 0.05],
        )
        slugs = [point.slug() for point in grid.expand()]
        assert len(set(slugs)) == len(slugs)
        for slug in slugs:
            assert slug == slug.strip("-")
            assert all(c.isalnum() or c in "-_.=" for c in slug)

    def test_slug_keeps_full_float_precision(self):
        # %g-style truncation would collide distinct noise rates onto
        # one cache key and replay the wrong cached numbers
        a = spec(noises=[0.1234567]).expand()[0].slug()
        b = spec(noises=[0.1234568]).expand()[0].slug()
        assert a != b

    def test_params_label_matches_slug_rendering(self):
        [point] = spec(topologies=["expander"]).expand()
        assert point.params_label() == "degree=3"
        assert point.params_label() in point.slug()


class TestScenarioAxes:
    """The noise_models / churns axes: validation, expansion, identity."""

    def test_defaults_reproduce_legacy_grid(self):
        grid = spec()
        assert grid.noise_models == ("bernoulli",)
        assert grid.churns == (0.0,)
        [point] = grid.expand()
        assert point.noise_model == "bernoulli"
        assert point.churn == 0.0

    @pytest.mark.parametrize(
        "overrides",
        [
            {"noise_models": ["quantum"]},
            {"noise_models": ["zone:0"]},
            {"noise_models": ["zone:1.5"]},
            {"noise_models": [7]},
            {"noise_models": []},
            {"noise_models": "bernoulli"},
            {"churns": [1.0]},
            {"churns": [-0.1]},
            {"churns": ["high"]},
            {"churns": []},
        ],
    )
    def test_malformed_axes_rejected_one_line(self, overrides):
        with pytest.raises(ConfigurationError) as excinfo:
            spec(**overrides)
        assert "\n" not in str(excinfo.value)

    def test_unknown_noise_model_lists_known(self):
        with pytest.raises(ConfigurationError) as excinfo:
            spec(noise_models=["bernoulli", "quantum"])
        message = str(excinfo.value)
        assert "unknown noise model 'quantum'" in message
        assert "adversarial" in message and "zone:<frac>" in message

    def test_expansion_multiplies_axes(self):
        grid = spec(
            noise_models=["bernoulli", "adversarial", "zone:0.25"],
            churns=[0.0, 0.2],
            noises=[0.05],
        )
        points = grid.expand()
        assert len(points) == 3 * 2
        assert {p.noise_model for p in points} == {
            "bernoulli", "adversarial", "zone:0.25"
        }
        assert {p.churn for p in points} == {0.0, 0.2}

    def test_identity_and_slug_distinguish_axes(self):
        grid = spec(
            noise_models=["bernoulli", "adversarial"],
            churns=[0.0, 0.15],
            noises=[0.05],
        )
        points = grid.expand()
        assert len({p.identity() for p in points}) == len(points)
        assert len({p.slug() for p in points}) == len(points)
        for point in points:
            assert f"model={point.noise_model}" in point.identity()
            assert f"churn={point.churn!r}" in point.identity()

    def test_default_point_slug_is_unchanged(self):
        # cached results from schema-4 campaigns must replay: the default
        # bernoulli/zero-churn point's slug cannot grow new components
        [point] = spec(noises=[0.05]).expand()
        assert "bernoulli" not in point.slug()
        assert "churn" not in point.slug()

    def test_churn_float_precision_kept_distinct(self):
        a = spec(churns=[0.1234567]).expand()[0].slug()
        b = spec(churns=[0.1234568]).expand()[0].slug()
        assert a != b

    def test_to_dict_round_trips_axes(self):
        grid = spec(
            noise_models=["adversarial", "zone:0.5"],
            churns=[0.0, 0.3],
        )
        restored = GridSpec.from_dict(grid.to_dict())
        assert restored == grid
        assert restored.noise_models == ("adversarial", "zone:0.5")
        assert restored.churns == (0.0, 0.3)

    def test_from_toml_round_trips_axes(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            "[grid]\n"
            'topologies = ["cycle"]\n'
            "sizes = [8]\n"
            "noises = [0.05]\n"
            'noise_models = ["bernoulli", "zone:0.25"]\n'
            "churns = [0.0, 0.15]\n"
        )
        grid = GridSpec.from_toml(path)
        assert grid.noise_models == ("bernoulli", "zone:0.25")
        assert grid.churns == (0.0, 0.15)
        assert GridSpec.from_dict(grid.to_dict()) == grid


class TestLoading:
    def test_from_toml_round_trip(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            '[grid]\ntopologies = ["cycle"]\nsizes = [8]\nnoises = [0.0]\n'
            "[params.cycle]\n"
        )
        grid = GridSpec.from_toml(path)
        assert grid.topologies == ("cycle",)

    def test_invalid_toml_one_line(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text("[grid\n")
        with pytest.raises(ConfigurationError) as excinfo:
            GridSpec.from_toml(path)
        assert "invalid TOML" in str(excinfo.value)
        assert "\n" not in str(excinfo.value)

    def test_missing_file_one_line(self, tmp_path):
        with pytest.raises(ConfigurationError) as excinfo:
            GridSpec.from_toml(tmp_path / "nope.toml")
        assert "cannot read grid file" in str(excinfo.value)

    def test_load_grid_coercions(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            '[grid]\ntopologies = ["cycle"]\nsizes = [8]\nnoises = [0.0]\n'
        )
        from_path = load_grid(path)
        from_str = load_grid(str(path))
        from_dict = load_grid(MINIMAL)
        assert from_path == from_str == from_dict
        assert load_grid(from_path) is from_path

    def test_load_grid_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            load_grid(42)

    def test_to_dict_round_trips(self):
        grid = spec(
            topologies=["expander"],
            sizes=[10],
            params={"expander": {"degree": 4}},
            full_rounds=9,
        )
        assert GridSpec.from_dict(grid.to_dict()) == grid
