"""End-to-end sweep engine tests: backends agree, cache replays, math holds."""

from __future__ import annotations

import math

import pytest

from repro import sweeps
from repro.errors import ConfigurationError
from repro.experiments import api
from repro.sweeps import GridSpec, SweepResult
from repro.sweeps.engine import execute_batch, execute_point
from repro.sweeps.result import CELL_KEY, POINT_FIELDS

#: The acceptance-criteria grid: >= 3 families x >= 2 sizes x >= 2 noises.
ACCEPTANCE_GRID = {
    "topologies": ["cycle", "path", "caterpillar"],
    "sizes": [8, 12],
    "noises": [0.0, 0.05],
    "seeds": [0, 1],
    "rounds": 1,
}


def _without_backend(cells: list[dict]) -> list[dict]:
    return [
        {key: value for key, value in cell.items() if key != "backend"}
        for cell in cells
    ]


class TestEndToEnd:
    def test_dense_and_bitpacked_identical_aggregates_and_cache(self, tmp_path):
        cache = tmp_path / "cache"
        dense = sweeps.run(ACCEPTANCE_GRID, backend="dense", cache_dir=cache)
        packed = sweeps.run(ACCEPTANCE_GRID, backend="bitpacked", cache_dir=cache)
        assert len(dense.points) == 3 * 2 * 2 * 2
        assert not any(point["cached"] for point in dense.points)
        # the engine invariant, surfaced at campaign scale: identical
        # aggregate tables (and identical simulated numbers point by
        # point), with only the backend label and timing differing
        assert _without_backend(dense.cells()) == _without_backend(packed.cells())
        timing_free = ("backend", "elapsed", "cached")
        assert [
            {k: v for k, v in point.items() if k not in timing_free}
            for point in dense.points
        ] == [
            {k: v for k, v in point.items() if k not in timing_free}
            for point in packed.points
        ]
        # second runs replay entirely from the on-disk cache
        dense_again = sweeps.run(ACCEPTANCE_GRID, backend="dense", cache_dir=cache)
        assert all(point["cached"] for point in dense_again.points)
        assert _without_backend(dense_again.cells()) == _without_backend(
            dense.cells()
        )

    def test_parallel_matches_serial(self):
        grid = {
            "topologies": ["cycle", "torus"],
            "sizes": [9],
            "noises": [0.0],
            "seeds": [0, 1],
            "rounds": 1,
        }
        serial = sweeps.run(grid)
        parallel = sweeps.run(grid, jobs=3)
        assert serial.cells() == parallel.cells()

    def test_progress_reports_every_point(self):
        messages = []
        sweeps.run(
            {**ACCEPTANCE_GRID, "topologies": ["cycle"], "seeds": [0]},
            progress=messages.append,
        )
        assert len(messages) == 4  # 1 family x 2 sizes x 2 noises x 1 seed
        assert all("cycle broadcast n=" in message for message in messages)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            sweeps.run(ACCEPTANCE_GRID, jobs=0)

    def test_invalid_backend_override_rejected_eagerly(self):
        with pytest.raises(ConfigurationError) as excinfo:
            sweeps.run(ACCEPTANCE_GRID, backend="densse")
        assert "unknown backend 'densse'" in str(excinfo.value)

    def test_backend_override_recorded_in_grid_metadata(self):
        result = sweeps.run(
            {"topologies": ["cycle"], "sizes": [8], "noises": [0.0], "rounds": 1},
            backend="bitpacked",
        )
        # the serialized grid must describe the run that made the points
        assert result.grid["grid"]["backends"] == ["bitpacked"]
        assert sweeps.load_grid(result.grid).backends == ("bitpacked",)

    def test_records_have_exact_schema(self):
        result = sweeps.run(
            {"topologies": ["cycle"], "sizes": [8], "noises": [0.0], "rounds": 1}
        )
        [record] = result.points
        assert tuple(record) == POINT_FIELDS
        assert record["family"] == "cycle"
        assert record["rounds"] == 1
        assert 0.0 <= record["success_rate"] <= 1.0
        assert record["beep_rounds_per_round"] > 0


class TestExecutePoint:
    def test_deterministic_and_backend_independent(self):
        grid = GridSpec.from_dict(
            {"topologies": ["expander"], "sizes": [8], "noises": [0.05], "rounds": 2}
        )
        [dense_point] = grid.expand(backend="dense")
        [packed_point] = grid.expand(backend="bitpacked")
        first = execute_point(dense_point)
        second = execute_point(dense_point)
        packed = execute_point(packed_point)

        def rows(result):
            return result.tables[0].rows

        assert rows(first) == rows(second)
        # identical except the backend label column
        patched = [
            "dense" if value == "bitpacked" else value
            for value in rows(packed)[0]
        ]
        assert patched == list(rows(first)[0])

    def test_result_metadata(self):
        grid = GridSpec.from_dict(
            {"topologies": ["torus"], "sizes": [9], "noises": [0.0], "rounds": 1}
        )
        [point] = grid.expand()
        result = execute_point(point, profile="smoke")
        assert result.profile == "smoke"
        assert result.tags == ("sweep", "torus", "broadcast")
        assert result.experiment_id == point.slug()
        assert result.elapsed > 0


class TestSweepResult:
    def test_aggregation_math(self):
        template = {
            field: 0 for field in POINT_FIELDS
        }
        points = []
        for seed, rate in ((0, 1.0), (1, 0.5), (2, 0.0)):
            record = dict(
                template,
                family="cycle",
                params="",
                n=8,
                eps=0.0,
                backend="auto",
                seed=seed,
                success_rate=rate,
                delta=2,
                cached=False,
            )
            points.append(record)
        result = SweepResult(profile="quick", grid={}, points=points)
        [cell] = result.cells()
        assert cell["seeds"] == 3
        assert cell["success_mean"] == pytest.approx(0.5)
        assert cell["success_std"] == pytest.approx(
            math.sqrt(((0.5) ** 2 + 0 + (0.5) ** 2) / 3)
        )
        assert cell["success_min"] == 0.0
        assert cell["success_max"] == 1.0
        assert cell["delta_mean"] == 2

    def test_cells_group_by_key(self):
        template = {field: 0 for field in POINT_FIELDS}
        points = [
            dict(template, family="cycle", params="", n=8, eps=0.0,
                 backend="auto", seed=seed, success_rate=1.0, cached=False)
            for seed in (0, 1)
        ] + [
            dict(template, family="cycle", params="", n=12, eps=0.0,
                 backend="auto", seed=0, success_rate=1.0, cached=False)
        ]
        result = SweepResult(profile="quick", grid={}, points=points)
        cells = result.cells()
        assert len(cells) == 2
        assert [cell["seeds"] for cell in cells] == [2, 1]
        assert tuple(cells[0])[: len(CELL_KEY)] == CELL_KEY

    def test_malformed_record_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepResult(profile="quick", grid={}, points=[{"family": "x"}])

    def test_json_round_trip(self):
        result = sweeps.run(
            {"topologies": ["cycle"], "sizes": [8], "noises": [0.0], "rounds": 1}
        )
        restored = SweepResult.from_json(result.to_json())
        assert restored.points == result.points
        assert restored.cells() == result.cells()
        assert restored.grid == result.grid

    def test_bad_schema_version_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepResult.from_dict({"schema_version": 99})

    def test_csv_exports(self):
        result = sweeps.run(
            {"topologies": ["cycle"], "sizes": [8], "noises": [0.0], "rounds": 1}
        )
        points_csv = result.points_csv()
        assert points_csv.splitlines()[0] == ",".join(POINT_FIELDS)
        assert len(points_csv.splitlines()) == 2
        cells_csv = result.cells_csv()
        assert cells_csv.startswith("family,")


def _timing_free(result: SweepResult) -> list[dict]:
    return [
        {k: v for k, v in point.items() if k not in ("elapsed", "cached")}
        for point in result.points
    ]


class TestReplicaBatching:
    """The seed axis auto-batches without changing a single number."""

    def test_batched_equals_per_seed_reference(self):
        batched = sweeps.run(ACCEPTANCE_GRID, batch_replicas=True)
        reference = sweeps.run(ACCEPTANCE_GRID, batch_replicas=False)
        assert _timing_free(batched) == _timing_free(reference)
        assert batched.cells_csv() == reference.cells_csv()

    @pytest.mark.parametrize("backend", ["dense", "bitpacked"])
    def test_batched_equals_per_seed_both_backends(self, backend):
        grid = {**ACCEPTANCE_GRID, "sizes": [8]}
        batched = sweeps.run(grid, backend=backend, batch_replicas=True)
        reference = sweeps.run(grid, backend=backend, batch_replicas=False)
        assert _timing_free(batched) == _timing_free(reference)

    def test_randomised_families_fall_back_to_singletons(self):
        # expander graphs re-randomise per seed, so replica groups within
        # a cell are singletons — results must still match the reference.
        grid = {
            "topologies": ["expander"],
            "sizes": [8],
            "noises": [0.0],
            "seeds": [0, 1, 2],
            "rounds": 1,
        }
        batched = sweeps.run(grid, batch_replicas=True)
        reference = sweeps.run(grid, batch_replicas=False)
        assert _timing_free(batched) == _timing_free(reference)

    def test_parallel_batched_matches_serial(self):
        parallel = sweeps.run(ACCEPTANCE_GRID, jobs=3)
        serial = sweeps.run(ACCEPTANCE_GRID)
        assert _timing_free(parallel) == _timing_free(serial)

    def test_execute_batch_rejects_mixed_cells(self):
        spec = sweeps.load_grid(ACCEPTANCE_GRID)
        points = spec.expand()
        mixed = [points[0], points[-1]]  # different family/size/noise
        with pytest.raises(ConfigurationError):
            execute_batch(mixed)

    def test_execute_batch_empty(self):
        assert execute_batch([]) == []

    def test_execute_point_is_a_batch_of_one(self):
        spec = sweeps.load_grid({**ACCEPTANCE_GRID, "seeds": [0]})
        point = spec.expand()[0]
        single = execute_point(point)
        [batched] = execute_batch([point])
        assert single.tables[0].rows == batched.tables[0].rows


#: A scenario grid crossing every noise model with churn on both backends.
SCENARIO_GRID = {
    "topologies": ["cycle"],
    "sizes": [8],
    "noises": [0.05],
    "noise_models": ["bernoulli", "adversarial", "zone:0.25"],
    "churns": [0.0, 0.2],
    "seeds": [0, 1],
    "rounds": 1,
}


class TestScenarioSweeps:
    """The noise_model / churn axes through the full sweep engine."""

    def test_points_carry_axes_and_csv_round_trips(self):
        result = sweeps.run(SCENARIO_GRID)
        assert len(result.points) == 3 * 2 * 2
        for record in result.points:
            assert tuple(record) == POINT_FIELDS
            assert record["noise_model"] in SCENARIO_GRID["noise_models"]
            assert record["churn"] in SCENARIO_GRID["churns"]
        header = result.points_csv().splitlines()[0].split(",")
        assert "noise_model" in header and "churn" in header
        cells_header = result.cells_csv().splitlines()[0].split(",")
        assert "noise_model" in cells_header and "churn" in cells_header
        # one aggregate cell per (model, churn) pair — both join the key
        assert len(result.cells()) == 3 * 2
        restored = SweepResult.from_json(result.to_json())
        assert restored.points == result.points
        assert restored.cells_csv() == result.cells_csv()

    def test_dense_and_bitpacked_identical(self):
        dense = sweeps.run(SCENARIO_GRID, backend="dense")
        packed = sweeps.run(SCENARIO_GRID, backend="bitpacked")
        assert _without_backend(dense.cells()) == _without_backend(packed.cells())

    def test_default_axes_reproduce_legacy_numbers(self):
        # schema 5 must not perturb a schema-4-shaped campaign's numbers:
        # the explicit default axes and their omission give equal points
        base = {k: v for k, v in SCENARIO_GRID.items()
                if k not in ("noise_models", "churns")}
        explicit = sweeps.run(
            {**base, "noise_models": ["bernoulli"], "churns": [0.0]}
        )
        omitted = sweeps.run(base)
        assert _timing_free(explicit) == _timing_free(omitted)

    def test_churned_batched_equals_per_seed_reference(self):
        # churn forces singleton replica groups (each point's dynamic
        # mask derives from its own session seed) — numbers must match
        # the unbatched reference exactly.
        batched = sweeps.run(SCENARIO_GRID, batch_replicas=True)
        reference = sweeps.run(SCENARIO_GRID, batch_replicas=False)
        assert _timing_free(batched) == _timing_free(reference)

    def test_noise_model_changes_numbers(self):
        cells = sweeps.run(SCENARIO_GRID).cells()
        by_model = {}
        for cell in cells:
            if cell["churn"] == 0.0:
                by_model[cell["noise_model"]] = cell["success_mean"]
        assert len(set(by_model.values())) > 1  # the axis is not cosmetic


class TestCacheIdentity:
    """Regression: the point cache must key on the full GridPoint identity."""

    BASE = {
        "topologies": ["cycle"],
        "sizes": [8],
        "noises": [0.0],
        "seeds": [0],
        "rounds": 1,
        "gamma": 1,
    }

    def test_gamma_edit_misses_cache(self, tmp_path):
        cache = tmp_path / "cache"
        sweeps.run(self.BASE, cache_dir=cache)
        replay = sweeps.run(self.BASE, cache_dir=cache)
        assert all(point["cached"] for point in replay.points)
        edited = sweeps.run({**self.BASE, "gamma": 2}, cache_dir=cache)
        assert not any(point["cached"] for point in edited.points)
        assert edited.points[0]["gamma"] == 2
        assert edited.points[0]["message_bits"] == 6

    def test_rounds_edit_misses_cache(self, tmp_path):
        cache = tmp_path / "cache"
        sweeps.run(self.BASE, cache_dir=cache)
        edited = sweeps.run({**self.BASE, "rounds": 2}, cache_dir=cache)
        assert not any(point["cached"] for point in edited.points)
        assert edited.points[0]["rounds"] == 2

    def test_family_params_edit_misses_cache(self, tmp_path):
        cache = tmp_path / "cache"
        grid = {
            "topologies": ["expander"],
            "sizes": [8],
            "noises": [0.0],
            "seeds": [0],
            "rounds": 1,
            "params": {"expander": {"degree": 3}},
        }
        sweeps.run(grid, cache_dir=cache)
        edited = sweeps.run(
            {**grid, "params": {"expander": {"degree": 7}}}, cache_dir=cache
        )
        assert not any(point["cached"] for point in edited.points)
        assert "degree=7" in edited.points[0]["params"]

    def test_noise_model_edit_misses_cache(self, tmp_path):
        cache = tmp_path / "cache"
        base = {**self.BASE, "noises": [0.05]}
        sweeps.run(base, cache_dir=cache)
        replay = sweeps.run(base, cache_dir=cache)
        assert all(point["cached"] for point in replay.points)
        edited = sweeps.run(
            {**base, "noise_models": ["adversarial"]}, cache_dir=cache
        )
        assert not any(point["cached"] for point in edited.points)
        assert edited.points[0]["noise_model"] == "adversarial"

    def test_churn_edit_misses_cache(self, tmp_path):
        cache = tmp_path / "cache"
        sweeps.run(self.BASE, cache_dir=cache)
        edited = sweeps.run({**self.BASE, "churns": [0.2]}, cache_dir=cache)
        assert not any(point["cached"] for point in edited.points)
        assert edited.points[0]["churn"] == 0.2

    def test_forged_noise_model_entry_is_rejected(self, tmp_path):
        # the slug-collision scenario for the new identity columns: a
        # bernoulli result planted under the adversarial point's cache
        # name must be detected by the stored-identity check, not replayed
        cache = tmp_path / "cache"
        base = {**self.BASE, "noises": [0.05]}
        sweeps.run(base, cache_dir=cache)
        other = {**base, "noise_models": ["adversarial"]}
        point = sweeps.load_grid(base).expand()[0]
        other_point = sweeps.load_grid(other).expand()[0]
        source = api.cache_path(
            cache, point.slug(), profile="quick", seed=0, backend="auto"
        )
        target = api.cache_path(
            cache, other_point.slug(), profile="quick", seed=0, backend="auto"
        )
        target.write_text(
            source.read_text().replace(point.slug(), other_point.slug())
        )
        forged = sweeps.run(other, cache_dir=cache)
        assert not any(point["cached"] for point in forged.points)
        assert forged.points[0]["noise_model"] == "adversarial"

    def test_forged_entry_with_matching_name_is_rejected(self, tmp_path):
        """A cache file whose *name* matches but whose stored identity does
        not (the slug-sanitisation collision scenario) must be a miss."""
        cache = tmp_path / "cache"
        sweeps.run(self.BASE, cache_dir=cache)
        other = {**self.BASE, "gamma": 2}
        point = sweeps.load_grid(self.BASE).expand()[0]
        other_point = sweeps.load_grid(other).expand()[0]
        source = api.cache_path(
            cache, point.slug(), profile="quick", seed=0, backend="auto"
        )
        target = api.cache_path(
            cache, other_point.slug(), profile="quick", seed=0, backend="auto"
        )
        # Forge: the gamma=1 result planted under the gamma=2 name, with
        # the stored experiment_id rewritten to match the file name (what
        # a sanitisation collision would produce).
        target.write_text(
            source.read_text().replace(point.slug(), other_point.slug())
        )
        forged = sweeps.run(other, cache_dir=cache)
        assert not any(point["cached"] for point in forged.points)
        assert forged.points[0]["gamma"] == 2
