"""End-to-end sweep engine tests: backends agree, cache replays, math holds."""

from __future__ import annotations

import math

import pytest

from repro import sweeps
from repro.errors import ConfigurationError
from repro.sweeps import GridSpec, SweepResult
from repro.sweeps.engine import execute_point
from repro.sweeps.result import CELL_KEY, POINT_FIELDS

#: The acceptance-criteria grid: >= 3 families x >= 2 sizes x >= 2 noises.
ACCEPTANCE_GRID = {
    "topologies": ["cycle", "path", "caterpillar"],
    "sizes": [8, 12],
    "noises": [0.0, 0.05],
    "seeds": [0, 1],
    "rounds": 1,
}


def _without_backend(cells: list[dict]) -> list[dict]:
    return [
        {key: value for key, value in cell.items() if key != "backend"}
        for cell in cells
    ]


class TestEndToEnd:
    def test_dense_and_bitpacked_identical_aggregates_and_cache(self, tmp_path):
        cache = tmp_path / "cache"
        dense = sweeps.run(ACCEPTANCE_GRID, backend="dense", cache_dir=cache)
        packed = sweeps.run(ACCEPTANCE_GRID, backend="bitpacked", cache_dir=cache)
        assert len(dense.points) == 3 * 2 * 2 * 2
        assert not any(point["cached"] for point in dense.points)
        # the engine invariant, surfaced at campaign scale: identical
        # aggregate tables (and identical simulated numbers point by
        # point), with only the backend label and timing differing
        assert _without_backend(dense.cells()) == _without_backend(packed.cells())
        timing_free = ("backend", "elapsed", "cached")
        assert [
            {k: v for k, v in point.items() if k not in timing_free}
            for point in dense.points
        ] == [
            {k: v for k, v in point.items() if k not in timing_free}
            for point in packed.points
        ]
        # second runs replay entirely from the on-disk cache
        dense_again = sweeps.run(ACCEPTANCE_GRID, backend="dense", cache_dir=cache)
        assert all(point["cached"] for point in dense_again.points)
        assert _without_backend(dense_again.cells()) == _without_backend(
            dense.cells()
        )

    def test_parallel_matches_serial(self):
        grid = {
            "topologies": ["cycle", "torus"],
            "sizes": [9],
            "noises": [0.0],
            "seeds": [0, 1],
            "rounds": 1,
        }
        serial = sweeps.run(grid)
        parallel = sweeps.run(grid, jobs=3)
        assert serial.cells() == parallel.cells()

    def test_progress_reports_every_point(self):
        messages = []
        sweeps.run(
            {**ACCEPTANCE_GRID, "topologies": ["cycle"], "seeds": [0]},
            progress=messages.append,
        )
        assert len(messages) == 4  # 1 family x 2 sizes x 2 noises x 1 seed
        assert all("cycle n=" in message for message in messages)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            sweeps.run(ACCEPTANCE_GRID, jobs=0)

    def test_invalid_backend_override_rejected_eagerly(self):
        with pytest.raises(ConfigurationError) as excinfo:
            sweeps.run(ACCEPTANCE_GRID, backend="densse")
        assert "unknown backend 'densse'" in str(excinfo.value)

    def test_backend_override_recorded_in_grid_metadata(self):
        result = sweeps.run(
            {"topologies": ["cycle"], "sizes": [8], "noises": [0.0], "rounds": 1},
            backend="bitpacked",
        )
        # the serialized grid must describe the run that made the points
        assert result.grid["grid"]["backends"] == ["bitpacked"]
        assert sweeps.load_grid(result.grid).backends == ("bitpacked",)

    def test_records_have_exact_schema(self):
        result = sweeps.run(
            {"topologies": ["cycle"], "sizes": [8], "noises": [0.0], "rounds": 1}
        )
        [record] = result.points
        assert tuple(record) == POINT_FIELDS
        assert record["family"] == "cycle"
        assert record["rounds"] == 1
        assert 0.0 <= record["success_rate"] <= 1.0
        assert record["beep_rounds_per_round"] > 0


class TestExecutePoint:
    def test_deterministic_and_backend_independent(self):
        grid = GridSpec.from_dict(
            {"topologies": ["expander"], "sizes": [8], "noises": [0.05], "rounds": 2}
        )
        [dense_point] = grid.expand(backend="dense")
        [packed_point] = grid.expand(backend="bitpacked")
        first = execute_point(dense_point)
        second = execute_point(dense_point)
        packed = execute_point(packed_point)

        def rows(result):
            return result.tables[0].rows

        assert rows(first) == rows(second)
        # identical except the backend label column
        patched = [
            "dense" if value == "bitpacked" else value
            for value in rows(packed)[0]
        ]
        assert patched == list(rows(first)[0])

    def test_result_metadata(self):
        grid = GridSpec.from_dict(
            {"topologies": ["torus"], "sizes": [9], "noises": [0.0], "rounds": 1}
        )
        [point] = grid.expand()
        result = execute_point(point, profile="smoke")
        assert result.profile == "smoke"
        assert result.tags == ("sweep", "torus")
        assert result.experiment_id == point.slug()
        assert result.elapsed > 0


class TestSweepResult:
    def test_aggregation_math(self):
        template = {
            field: 0 for field in POINT_FIELDS
        }
        points = []
        for seed, rate in ((0, 1.0), (1, 0.5), (2, 0.0)):
            record = dict(
                template,
                family="cycle",
                params="",
                n=8,
                eps=0.0,
                backend="auto",
                seed=seed,
                success_rate=rate,
                delta=2,
                cached=False,
            )
            points.append(record)
        result = SweepResult(profile="quick", grid={}, points=points)
        [cell] = result.cells()
        assert cell["seeds"] == 3
        assert cell["success_mean"] == pytest.approx(0.5)
        assert cell["success_std"] == pytest.approx(
            math.sqrt(((0.5) ** 2 + 0 + (0.5) ** 2) / 3)
        )
        assert cell["success_min"] == 0.0
        assert cell["success_max"] == 1.0
        assert cell["delta_mean"] == 2

    def test_cells_group_by_key(self):
        template = {field: 0 for field in POINT_FIELDS}
        points = [
            dict(template, family="cycle", params="", n=8, eps=0.0,
                 backend="auto", seed=seed, success_rate=1.0, cached=False)
            for seed in (0, 1)
        ] + [
            dict(template, family="cycle", params="", n=12, eps=0.0,
                 backend="auto", seed=0, success_rate=1.0, cached=False)
        ]
        result = SweepResult(profile="quick", grid={}, points=points)
        cells = result.cells()
        assert len(cells) == 2
        assert [cell["seeds"] for cell in cells] == [2, 1]
        assert tuple(cells[0])[: len(CELL_KEY)] == CELL_KEY

    def test_malformed_record_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepResult(profile="quick", grid={}, points=[{"family": "x"}])

    def test_json_round_trip(self):
        result = sweeps.run(
            {"topologies": ["cycle"], "sizes": [8], "noises": [0.0], "rounds": 1}
        )
        restored = SweepResult.from_json(result.to_json())
        assert restored.points == result.points
        assert restored.cells() == result.cells()
        assert restored.grid == result.grid

    def test_bad_schema_version_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepResult.from_dict({"schema_version": 99})

    def test_csv_exports(self):
        result = sweeps.run(
            {"topologies": ["cycle"], "sizes": [8], "noises": [0.0], "rounds": 1}
        )
        points_csv = result.points_csv()
        assert points_csv.splitlines()[0] == ",".join(POINT_FIELDS)
        assert len(points_csv.splitlines()) == 2
        cells_csv = result.cells_csv()
        assert cells_csv.startswith("family,")
