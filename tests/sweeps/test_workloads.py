"""The workload axis: algorithms × zoo × seeds through the sweep engine."""

from __future__ import annotations

import pytest

from repro import sweeps
from repro.errors import ConfigurationError
from repro.sweeps import SweepResult, get_workload, workload_names
from repro.sweeps.result import POINT_FIELDS

#: The acceptance-criteria grid: matching and MIS over >= 3 zoo families
#: through the cache/parallel path, as one TOML-shaped spec.
WORKLOAD_GRID = {
    "topologies": ["expander", "torus", "gnp"],
    "workloads": ["matching", "mis"],
    "sizes": [16],
    "noises": [0.0],
    "seeds": [0, 1],
    "params": {"expander": {"degree": 3}},
}


class TestRegistry:
    def test_known_workloads(self):
        assert workload_names() == ("broadcast", "matching", "mis", "bfs", "leader")

    def test_unknown_workload_one_line_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_workload("matchingg")
        message = str(excinfo.value)
        assert "unknown workload 'matchingg'" in message
        assert "broadcast" in message and "\n" not in message

    def test_grid_validation_rejects_unknown_workload(self):
        with pytest.raises(ConfigurationError) as excinfo:
            sweeps.load_grid({**WORKLOAD_GRID, "workloads": ["nope"]})
        assert "unknown workload 'nope'" in str(excinfo.value)


class TestWorkloadSweep:
    def test_matching_and_mis_over_three_families(self, tmp_path):
        cache = tmp_path / "cache"
        result = sweeps.run(WORKLOAD_GRID, cache_dir=cache)
        assert len(result.points) == 3 * 2 * 1 * 2
        for record in result.points:
            assert tuple(record) == POINT_FIELDS
            assert record["workload"] in ("matching", "mis")
            assert record["valid"] is True
            assert record["rounds_used"] >= 1
            assert record["messages_sent"] >= 1
            assert record["output_size"] >= 1
            # decode statistics do not apply to algorithm workloads
            assert record["success_rate"] is None
            assert record["beep_rounds_per_round"] is None
        # replay: every point must come back from the cache
        replay = sweeps.run(WORKLOAD_GRID, cache_dir=cache)
        assert all(record["cached"] for record in replay.points)

    def test_json_and_csv_lossless(self):
        result = sweeps.run(WORKLOAD_GRID)
        restored = SweepResult.from_json(result.to_json())
        assert restored.points == result.points
        assert restored.cells() == result.cells()
        points_csv = result.points_csv()
        assert points_csv.splitlines()[0] == ",".join(POINT_FIELDS)
        assert len(points_csv.splitlines()) == len(result.points) + 1
        assert result.cells_csv().startswith("family,params,workload,")

    def test_cells_aggregate_workload_metrics(self):
        result = sweeps.run(WORKLOAD_GRID)
        cells = result.cells()
        assert len(cells) == 6  # 3 families x 2 workloads
        for cell in cells:
            assert cell["seeds"] == 2
            assert cell["valid_mean"] == 1.0
            assert cell["rounds_used_mean"] >= 1
            assert cell["success_mean"] is None

    def test_runtimes_produce_identical_records(self):
        vectorized = sweeps.run(WORKLOAD_GRID, runtime="vectorized")
        reference = sweeps.run(WORKLOAD_GRID, runtime="reference")
        strip = ("elapsed", "cached")
        assert [
            {k: v for k, v in record.items() if k not in strip}
            for record in vectorized.points
        ] == [
            {k: v for k, v in record.items() if k not in strip}
            for record in reference.points
        ]

    def test_parallel_matches_serial(self):
        serial = sweeps.run(WORKLOAD_GRID)
        parallel = sweeps.run(WORKLOAD_GRID, jobs=3)
        assert serial.cells() == parallel.cells()

    def test_unknown_runtime_rejected_eagerly(self):
        with pytest.raises(ConfigurationError) as excinfo:
            sweeps.run(WORKLOAD_GRID, runtime="bogus")
        assert "unknown runtime 'bogus'" in str(excinfo.value)

    def test_workload_edit_misses_cache(self, tmp_path):
        cache = tmp_path / "cache"
        base = {**WORKLOAD_GRID, "workloads": ["matching"]}
        sweeps.run(base, cache_dir=cache)
        edited = sweeps.run(
            {**base, "workloads": ["mis"]}, cache_dir=cache
        )
        assert not any(record["cached"] for record in edited.points)

    def test_mixed_broadcast_and_algorithm_grid(self):
        result = sweeps.run(
            {
                "topologies": ["torus"],
                "workloads": ["broadcast", "leader", "bfs"],
                "sizes": [9],
                "noises": [0.0],
                "seeds": [0],
                "rounds": 1,
            }
        )
        by_workload = {record["workload"]: record for record in result.points}
        assert by_workload["broadcast"]["success_rate"] is not None
        assert by_workload["broadcast"]["valid"] is None
        assert by_workload["leader"]["valid"] is True
        assert by_workload["bfs"]["output_size"] == 9

    def test_example_workload_grid_loads(self):
        spec = sweeps.load_grid("examples/workload_grid.toml")
        assert spec.workloads == ("matching", "mis")
        assert len(spec.topologies) == 3

    def test_cli_list_workloads(self, capsys):
        from repro.experiments.harness import main

        assert main(["sweep", "--list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in workload_names():
            assert name in out
