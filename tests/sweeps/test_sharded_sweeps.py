"""Sweep- and CLI-level tests for the sharded execution tier.

Pins down the user-facing contract of ``--shards``: identical simulated
numbers for every shard count (the bit-identity invariant surfaced at
campaign scale), a truthful ``shards`` provenance column, and cache
entries that never leak across shard counts.
"""

from __future__ import annotations

import json

import pytest

from repro import sweeps
from repro.experiments import api
from repro.experiments.harness import main, sweep_main

GRID = {
    "grid": {
        "topologies": ["cycle", "expander"],
        "sizes": [16],
        "noises": [0.0, 0.05],
        "seeds": [0, 1],
        "rounds": 2,
        "backends": ["dense"],
    }
}


def stripped_points(result) -> list[dict]:
    """Point records minus wall-clock and provenance-only columns."""
    return [
        {
            key: value
            for key, value in record.items()
            if key not in ("elapsed", "cached", "shards")
        }
        for record in result.points
    ]


class TestShardedSweeps:
    def test_bit_identical_across_shard_counts(self):
        plain = sweeps.run(GRID, profile="quick")
        two = sweeps.run(GRID, profile="quick", shards=2)
        four = sweeps.run(GRID, profile="quick", shards=4)
        assert stripped_points(plain) == stripped_points(two)
        assert stripped_points(plain) == stripped_points(four)
        # Aggregate cells exclude wall-clock and shards entirely, so the
        # CSV artifact is byte-identical — the CI equivalence check.
        assert plain.cells_csv() == two.cells_csv() == four.cells_csv()

    def test_shards_column_records_provenance(self):
        result = sweeps.run(GRID, profile="quick", shards=2)
        assert {record["shards"] for record in result.points} == {2}
        assert {record["shards"] for record in sweeps.run(GRID).points} == {1}

    def test_cache_kept_separate_per_shard_count(self, tmp_path):
        first = sweeps.run(GRID, profile="quick", cache_dir=tmp_path, shards=1)
        assert not any(record["cached"] for record in first.points)
        # A different shard count must not replay shards=1 entries...
        second = sweeps.run(GRID, profile="quick", cache_dir=tmp_path, shards=2)
        assert not any(record["cached"] for record in second.points)
        # ...but the same shard count replays its own.
        replay = sweeps.run(GRID, profile="quick", cache_dir=tmp_path, shards=2)
        assert all(record["cached"] for record in replay.points)
        names = {path.name for path in tmp_path.glob("*.json")}
        assert any("-shards2" in name for name in names)

    def test_invalid_shards_rejected(self):
        with pytest.raises(Exception, match="shards must be >= 1"):
            sweeps.run(GRID, shards=0)


class TestShardedCli:
    def test_sweep_cli_accepts_shards(self, tmp_path, capsys):
        grid_path = tmp_path / "grid.toml"
        grid_path.write_text(
            "[grid]\n"
            'topologies = ["cycle"]\n'
            "sizes = [16]\n"
            "noises = [0.0]\n"
            "seeds = [0]\n"
            "rounds = 1\n"
            'backends = ["dense"]\n'
        )
        code = sweep_main(
            ["--grid", str(grid_path), "--shards", "2", "--format", "json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert [record["shards"] for record in doc["points"]] == [2]

    def test_experiments_cli_accepts_shards(self, capsys):
        code = main(["e01", "--shards", "2", "--format", "json"])
        assert code == 0
        [doc] = json.loads(capsys.readouterr().out)
        assert doc["backend"] == "auto-shards2"

    def test_run_one_label_and_equivalence(self):
        plain = api.run_one("e01", profile="quick", seed=0)
        shard = api.run_one("e01", profile="quick", seed=0, shards=2)
        assert plain.backend == "auto"
        assert shard.backend == "auto-shards2"
        assert [t.to_dict() for t in plain.tables] == [
            t.to_dict() for t in shard.tables
        ]
