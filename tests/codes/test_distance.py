"""Tests for (a, δ)-distance codes (Definition 5, Lemma 6)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import bitstrings as bs
from repro.codes import DistanceCode, minimum_pairwise_distance, paper_c_delta
from repro.errors import ConfigurationError


class TestConstruction:
    def test_default_length_is_paper_strict(self):
        code = DistanceCode(input_bits=5, delta=1.0 / 3.0)
        assert code.length == math.ceil(paper_c_delta(1.0 / 3.0) * 5)

    def test_explicit_length(self):
        code = DistanceCode(input_bits=5, delta=0.25, length=64)
        assert code.length == 64

    def test_bad_delta_rejected(self):
        for delta in [0.0, 0.5, 0.7, -0.1]:
            with pytest.raises(ConfigurationError):
                DistanceCode(input_bits=4, delta=delta)

    def test_paper_c_delta_formula(self):
        assert paper_c_delta(1.0 / 3.0) == pytest.approx(108.0)
        with pytest.raises(ConfigurationError):
            paper_c_delta(0.5)

    def test_min_distance_property(self):
        code = DistanceCode(input_bits=4, delta=1.0 / 3.0, length=90)
        assert code.min_distance == 30


class TestEncoding:
    def test_deterministic_across_instances(self):
        a = DistanceCode(4, 1.0 / 3.0, length=60, seed=9)
        b = DistanceCode(4, 1.0 / 3.0, length=60, seed=9)
        for m in range(16):
            assert np.array_equal(a.encode_int(m), b.encode_int(m))

    def test_seed_changes_code(self):
        a = DistanceCode(4, 1.0 / 3.0, length=60, seed=1)
        b = DistanceCode(4, 1.0 / 3.0, length=60, seed=2)
        assert any(
            not np.array_equal(a.encode_int(m), b.encode_int(m)) for m in range(16)
        )

    def test_encode_bits_matches_encode_int(self):
        code = DistanceCode(6, 0.3, length=80, seed=3)
        assert np.array_equal(
            code.encode(bs.from_int(37, 6)), code.encode_int(37)
        )

    def test_out_of_domain_rejected(self):
        code = DistanceCode(4, 0.3, length=40)
        with pytest.raises(ConfigurationError):
            code.encode_int(16)
        with pytest.raises(ConfigurationError):
            code.encode_int(-1)

    def test_codeword_copies_are_independent(self):
        code = DistanceCode(4, 0.3, length=40)
        word = code.encode_int(3)
        word[:] = False
        assert np.array_equal(code.encode_int(3), code.encode_int(3))
        assert code.encode_int(3).any()


class TestMinimumDistance:
    def test_paper_length_achieves_delta(self):
        # Lemma 6 at a = 6, delta = 1/3: failure prob <= 2^-12.
        code = DistanceCode(input_bits=6, delta=1.0 / 3.0, seed=0)
        assert minimum_pairwise_distance(code) >= code.min_distance

    def test_measured_on_subset(self):
        code = DistanceCode(input_bits=10, delta=0.25, length=200, seed=0)
        measured = minimum_pairwise_distance(code, messages=list(range(32)))
        assert measured > 0

    def test_needs_two_codewords(self):
        code = DistanceCode(input_bits=4, delta=0.25, length=40)
        with pytest.raises(ConfigurationError):
            minimum_pairwise_distance(code, messages=[3])


class TestNearestDecoding:
    def test_exact_codeword_decodes_to_itself(self):
        code = DistanceCode(input_bits=5, delta=1.0 / 3.0, seed=4)
        for m in [0, 7, 31]:
            decoded, distance = code.decode_nearest(code.encode_int(m))
            assert decoded == m
            assert distance == 0

    def test_decoding_with_candidates(self):
        code = DistanceCode(input_bits=8, delta=1.0 / 3.0, seed=4)
        word = code.encode_int(200)
        decoded, _ = code.decode_nearest(word, candidates=[3, 200, 77])
        assert decoded == 200

    def test_corrupted_codeword_still_decodes(self):
        code = DistanceCode(input_bits=5, delta=1.0 / 3.0, seed=4)
        word = code.encode_int(12)
        # flip fewer than half the guaranteed distance
        budget = code.min_distance // 2 - 1
        word[:budget] = ~word[:budget]
        decoded, _ = code.decode_nearest(word)
        assert decoded == 12

    def test_empty_candidates_rejected(self):
        code = DistanceCode(input_bits=4, delta=0.3, length=40)
        with pytest.raises(ConfigurationError):
            code.decode_nearest(code.encode_int(0), candidates=[])

    def test_wrong_length_rejected(self):
        code = DistanceCode(input_bits=4, delta=0.3, length=40)
        with pytest.raises(ConfigurationError):
            code.decode_nearest(np.zeros(41, dtype=bool))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 31), st.integers(0, 2**31 - 1))
    def test_noise_below_half_distance_property(self, message, noise_seed):
        code = DistanceCode(input_bits=5, delta=1.0 / 3.0, seed=1)
        word = code.encode_int(message)
        rng = np.random.default_rng(noise_seed)
        budget = (code.min_distance - 1) // 2
        positions = rng.choice(code.length, size=budget, replace=False)
        word[positions] = ~word[positions]
        decoded, _ = code.decode_nearest(word)
        assert decoded == message

    def test_failure_bound_small_for_strict_length(self):
        code = DistanceCode(input_bits=6, delta=1.0 / 3.0)
        assert code.failure_probability_bound() <= 2.0**-12
