"""Tests for Kautz–Singleton (a, k)-superimposed codes (Definition 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import bitstrings as bs
from repro.codes import KautzSingletonCode, is_k_superimposed
from repro.errors import ConfigurationError
from repro.rng import derive_rng


class TestConstruction:
    def test_length_is_p_squared(self):
        code = KautzSingletonCode(input_bits=6, k=2)
        assert code.length == code.field_size**2

    def test_field_satisfies_cover_free_condition(self):
        for a, k in [(4, 2), (8, 3), (12, 4), (16, 6)]:
            code = KautzSingletonCode(a, k)
            assert code.field_size > k * (code.message_symbols - 1)
            assert code.field_size**code.message_symbols >= 2**a

    def test_weight_is_p(self):
        code = KautzSingletonCode(input_bits=6, k=2)
        for value in range(0, 64, 9):
            assert bs.weight(code.encode_int(value)) == code.field_size

    def test_bad_k_rejected(self):
        with pytest.raises(ConfigurationError):
            KautzSingletonCode(input_bits=4, k=0)

    def test_length_grows_quadratically_in_k(self):
        lengths = [KautzSingletonCode(8, k).length for k in (2, 4, 8)]
        assert lengths[1] > lengths[0]
        assert lengths[2] > 2 * lengths[1]


class TestSuperimposedProperty:
    def test_exhaustive_small_code(self):
        code = KautzSingletonCode(input_bits=4, k=2)
        assert is_k_superimposed(code, 2)

    def test_union_decoding_exact(self):
        code = KautzSingletonCode(input_bits=6, k=3)
        rng = derive_rng(0, "ks")
        for _ in range(15):
            subset = sorted(
                int(v) for v in rng.choice(code.num_codewords, size=3, replace=False)
            )
            union = bs.superimpose([code.encode_int(v) for v in subset])
            decoded = code.decode_union(union)
            assert decoded == set(subset)

    def test_decode_union_with_candidates(self):
        code = KautzSingletonCode(input_bits=4, k=2)
        union = bs.superimpose([code.encode_int(v) for v in (3, 9)])
        assert code.decode_union(union, candidates=[3, 5]) == {3}

    def test_decode_union_wrong_length(self):
        code = KautzSingletonCode(input_bits=4, k=2)
        with pytest.raises(ConfigurationError):
            code.decode_union(np.zeros(3, dtype=bool))

    def test_is_k_superimposed_detects_violation(self):
        class DegenerateCode(KautzSingletonCode):
            """Codeword 0 forced to all-zeros: covered by anything."""

            def encode_int(self, value):
                if value == 0:
                    return np.zeros(self.length, dtype=bool)
                return super().encode_int(value)

        bad = DegenerateCode(input_bits=4, k=2)
        assert not is_k_superimposed(bad, 2, messages=[0, 1, 2, 3])

    def test_deterministic(self):
        a = KautzSingletonCode(input_bits=6, k=2)
        b = KautzSingletonCode(input_bits=6, k=2)
        for value in range(0, 64, 5):
            assert np.array_equal(a.encode_int(value), b.encode_int(value))
