"""Tests for code-length formulas (Section 1.4)."""

from __future__ import annotations

import pytest

from repro.codes import (
    KautzSingletonCode,
    beep_code_length,
    dyachkov_rykov_lower_bound,
    kautz_singleton_length,
)
from repro.errors import ConfigurationError


class TestKautzSingletonLength:
    def test_matches_construction(self):
        for a, k in [(4, 2), (8, 3), (12, 4)]:
            assert kautz_singleton_length(a, k) == KautzSingletonCode(a, k).length

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            kautz_singleton_length(0, 2)


class TestLowerBound:
    def test_formula(self):
        assert dyachkov_rykov_lower_bound(10, 4) == pytest.approx(160 / 2)

    def test_k1_uses_log_floor(self):
        # log2(max(k,2)) guards k = 1
        assert dyachkov_rykov_lower_bound(10, 1) == pytest.approx(10.0)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            dyachkov_rykov_lower_bound(4, 0)


class TestBeepLength:
    def test_formula(self):
        assert beep_code_length(5, 3, 4) == 16 * 3 * 5

    def test_linear_in_k_vs_quadratic_ks(self):
        # The paper's point: beep codes scale linearly in k while strict
        # superimposed codes scale quadratically.  In the large-k regime
        # (message length m pinned), quadrupling k roughly 16x's the KS
        # length but only 4x's the beep-code length.
        ratio_beep = beep_code_length(16, 128, 3) / beep_code_length(16, 32, 3)
        ratio_ks = kautz_singleton_length(16, 128) / kautz_singleton_length(16, 32)
        assert ratio_beep == pytest.approx(4.0)
        assert ratio_ks > 10.0

    def test_beep_code_eventually_shorter(self):
        # the crossover the weaker guarantee buys: for large k the beep
        # code is strictly shorter than any strict superimposed code
        assert beep_code_length(16, 64, 3) < kautz_singleton_length(16, 64)
        assert beep_code_length(16, 128, 3) < kautz_singleton_length(16, 128)

    def test_c_below_3_rejected(self):
        with pytest.raises(ConfigurationError):
            beep_code_length(4, 2, 2)
