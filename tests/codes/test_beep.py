"""Tests for (a, k, δ)-beep codes (Definition 3, Theorem 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import bitstrings as bs
from repro.codes import BeepCode
from repro.errors import ConfigurationError
from repro.rng import derive_rng


class TestConstruction:
    def test_theorem4_length(self):
        code = BeepCode(input_bits=5, k=3, c=4)
        assert code.length == 4 * 4 * 3 * 5

    def test_weight_is_b_over_ck(self):
        code = BeepCode(input_bits=5, k=3, c=4)
        assert code.weight == code.length // (4 * 3)
        assert code.weight == 4 * 5  # c * a

    def test_intersection_threshold_is_5a(self):
        code = BeepCode(input_bits=7, k=2, c=3)
        assert code.intersection_threshold == 5 * 7

    def test_c_below_3_rejected(self):
        # Theorem 4 notes c <= 2 makes the property vacuous.
        with pytest.raises(ConfigurationError):
            BeepCode(input_bits=4, k=2, c=2)

    def test_bad_k_rejected(self):
        with pytest.raises(ConfigurationError):
            BeepCode(input_bits=4, k=0, c=3)

    def test_custom_length_divisibility(self):
        BeepCode(input_bits=4, k=2, c=3, length=120)
        with pytest.raises(ConfigurationError):
            BeepCode(input_bits=4, k=2, c=3, length=121)

    def test_delta_property(self):
        assert BeepCode(input_bits=4, k=2, c=4).delta == 0.25


class TestEncoding:
    def test_constant_weight_everywhere(self):
        code = BeepCode(input_bits=6, k=2, c=3, seed=2)
        for value in range(0, 64, 7):
            assert bs.weight(code.encode_int(value)) == code.weight

    def test_deterministic_across_instances(self):
        a = BeepCode(input_bits=5, k=2, c=3, seed=11)
        b = BeepCode(input_bits=5, k=2, c=3, seed=11)
        for value in range(32):
            assert np.array_equal(a.encode_int(value), b.encode_int(value))

    def test_out_of_domain_rejected(self):
        code = BeepCode(input_bits=4, k=2, c=3)
        with pytest.raises(ConfigurationError):
            code.encode_int(16)

    def test_encode_many_shape(self):
        code = BeepCode(input_bits=4, k=2, c=3)
        matrix = code.encode_many([1, 5, 9])
        assert matrix.shape == (3, code.length)
        assert np.array_equal(matrix[1], code.encode_int(5))

    def test_encode_many_empty(self):
        code = BeepCode(input_bits=4, k=2, c=3)
        assert code.encode_many([]).shape == (0, code.length)

    def test_cache_limit_does_not_change_codewords(self):
        code = BeepCode(input_bits=10, k=2, c=3, seed=5)
        code.CACHE_LIMIT = 8  # force evictions
        first = code.encode_int(123).copy()
        for value in range(40):
            code.encode_int(value)
        assert np.array_equal(code.encode_int(123), first)

    def test_cache_eviction_is_lru_not_wholesale(self):
        """Overflow evicts only the coldest entries: a codeword touched
        every round survives an overflowing scan of fresh values."""
        code = BeepCode(input_bits=10, k=2, c=3, seed=5)
        code.CACHE_LIMIT = 8
        hot = 123
        code.encode_int(hot)
        for value in range(40):
            code.encode_int(value)
            code.encode_int(hot)  # re-touch, as candidate scans do
        assert hot in code._cache  # never evicted
        assert len(code._cache) <= code.CACHE_LIMIT
        # the coldest of the scanned values are gone, the freshest remain
        assert 39 in code._cache
        assert 0 not in code._cache

    def test_cache_never_exceeds_limit(self):
        code = BeepCode(input_bits=10, k=2, c=3, seed=5)
        code.CACHE_LIMIT = 4
        for value in range(20):
            code.encode_int(value)
            assert len(code._cache) <= 4


class TestSuperimpositionDecoding:
    def test_noiseless_decode_recovers_sets(self):
        code = BeepCode(input_bits=6, k=3, c=4, seed=1)
        rng = derive_rng(0, "subset")
        for _ in range(10):
            subset = sorted(
                int(v) for v in rng.choice(code.num_codewords, size=3, replace=False)
            )
            union = bs.superimpose([code.encode_int(v) for v in subset])
            decoded = code.decode_superimposition(union, eps=0.0)
            assert decoded == set(subset)

    def test_membership_statistic_zero_for_members(self):
        code = BeepCode(input_bits=5, k=2, c=3, seed=1)
        union = bs.superimpose([code.encode_int(v) for v in (3, 17)])
        assert code.membership_statistic(3, union) == 0
        assert code.membership_statistic(17, union) == 0

    def test_membership_statistic_large_for_nonmembers(self):
        code = BeepCode(input_bits=6, k=2, c=4, seed=1)
        union = bs.superimpose([code.encode_int(v) for v in (3, 17)])
        threshold = code.decoding_threshold(0.0)
        for outsider in (5, 42, 60):
            assert code.membership_statistic(outsider, union) >= threshold

    def test_noiseless_membership_test(self):
        code = BeepCode(input_bits=5, k=2, c=3, seed=1)
        union = bs.superimpose([code.encode_int(v) for v in (1, 2)])
        assert code.noiseless_membership_test(1, union)
        assert not code.noiseless_membership_test(9, union)

    def test_decoding_threshold_formula(self):
        code = BeepCode(input_bits=5, k=2, c=4, seed=1)
        # (2*eps+1)/4 * weight
        assert code.decoding_threshold(0.0) == code.weight // 4
        assert code.decoding_threshold(0.3) == int(1.6 / 4 * code.weight)
        with pytest.raises(ConfigurationError):
            code.decoding_threshold(0.5)

    def test_decode_with_candidates_restricts_scan(self):
        code = BeepCode(input_bits=6, k=2, c=4, seed=2)
        union = bs.superimpose([code.encode_int(v) for v in (10, 20)])
        decoded = code.decode_superimposition(union, candidates=[10, 30])
        assert decoded == {10}

    def test_noisy_decode_recovers_sets_whp(self):
        """Decoding under noise is a w.h.p. guarantee, not a certainty:
        measure the success rate over many independent trials instead of
        asserting every seed (a rare tail failure is expected behaviour)."""
        code = BeepCode(input_bits=6, k=3, c=6, seed=3)
        eps = 0.1
        successes = 0
        trials = 40
        for trial_seed in range(trials):
            rng = np.random.default_rng(trial_seed)
            subset = sorted(
                int(v)
                for v in rng.choice(code.num_codewords, size=3, replace=False)
            )
            union = bs.superimpose([code.encode_int(v) for v in subset])
            noisy = union ^ (rng.random(code.length) < eps)
            decoded = code.decode_superimposition(noisy, eps=eps)
            successes += decoded == set(subset)
        assert successes >= trials - 2

    def test_wrong_length_rejected(self):
        code = BeepCode(input_bits=4, k=2, c=3)
        with pytest.raises(ConfigurationError):
            code.decode_superimposition(np.zeros(7, dtype=bool))


class TestBadSubsetCensus:
    def test_count_bad_subsets_zero_for_good_code(self):
        code = BeepCode(input_bits=6, k=2, c=4, seed=0)
        rng = derive_rng(1, "census")
        subsets = [
            [int(v) for v in rng.choice(64, size=2, replace=False)]
            for _ in range(20)
        ]
        assert code.count_bad_subsets(subsets) == 0

    def test_wrong_subset_size_rejected(self):
        code = BeepCode(input_bits=4, k=2, c=3)
        with pytest.raises(ConfigurationError):
            code.count_bad_subsets([[1, 2, 3]])

    def test_failure_fraction_bound(self):
        code = BeepCode(input_bits=6, k=2, c=3)
        assert code.failure_fraction_bound() == 2.0**-12
