"""Tests for the combined code CD(r, m) (Notation 7, Figure 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import bitstrings as bs
from repro.codes import BeepCode, CombinedCode, DistanceCode
from repro.errors import ConfigurationError


def make_combined(seed: int = 0) -> CombinedCode:
    beep = BeepCode(input_bits=5, k=2, c=3, seed=seed)
    distance = DistanceCode(
        input_bits=4, delta=1.0 / 3.0, length=beep.weight, seed=seed
    )
    return CombinedCode(beep_code=beep, distance_code=distance)


class TestConstruction:
    def test_length_matches_beep_code(self):
        combined = make_combined()
        assert combined.length == combined.beep_code.length

    def test_mismatched_lengths_rejected(self):
        beep = BeepCode(input_bits=5, k=2, c=3)
        wrong = DistanceCode(input_bits=4, delta=0.3, length=beep.weight + 1)
        with pytest.raises(ConfigurationError):
            CombinedCode(beep_code=beep, distance_code=wrong)


class TestEncodeExtract:
    def test_zero_outside_slot_positions(self):
        combined = make_combined()
        word = combined.encode(7, 3)
        slots = combined.beep_code.encode_int(7)
        assert not (word & ~slots).any()

    def test_payload_written_in_order(self):
        combined = make_combined()
        word = combined.encode(9, 11)
        slots = combined.beep_code.encode_int(9)
        payload = combined.distance_code.encode_int(11)
        positions = bs.ones_positions(slots)
        assert np.array_equal(word[positions], payload)

    def test_extract_inverts_encode(self):
        combined = make_combined()
        for r, m in [(0, 0), (7, 3), (31, 15)]:
            extracted = combined.extract(combined.encode(r, m), r)
            assert np.array_equal(
                extracted, combined.distance_code.encode_int(m)
            )

    def test_extract_wrong_length_rejected(self):
        combined = make_combined()
        with pytest.raises(ConfigurationError):
            combined.extract(np.zeros(combined.length + 1, dtype=bool), 3)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 31), st.integers(0, 15))
    def test_roundtrip_property(self, r, m):
        combined = make_combined(seed=2)
        assert np.array_equal(
            combined.extract(combined.encode(r, m), r),
            combined.distance_code.encode_int(m),
        )

    def test_extraction_from_superimposition_on_private_slots(self):
        """The Lemma 10 mechanism: positions where only one codeword has a 1
        carry that sender's payload bit undisturbed."""
        combined = make_combined(seed=3)
        r1, r2 = 5, 22
        word = combined.encode(r1, 6) | combined.encode(r2, 9)
        slots1 = combined.beep_code.encode_int(r1)
        slots2 = combined.beep_code.encode_int(r2)
        private = slots1 & ~slots2
        payload1 = combined.distance_code.encode_int(6)
        positions1 = bs.ones_positions(slots1)
        for index, position in enumerate(positions1):
            if private[position]:
                assert word[position] == payload1[index]


class TestLayout:
    def test_layout_rows_align(self):
        combined = make_combined()
        lines = combined.layout(3, 5).splitlines()
        assert len(lines) == 3
        lengths = {len(line.split(": ")[1]) for line in lines}
        assert lengths == {combined.length}

    def test_layout_dots_mark_non_slots(self):
        combined = make_combined()
        spread = combined.layout(3, 5).splitlines()[1].split(": ")[1]
        slots = combined.beep_code.encode_int(3)
        for position, char in enumerate(spread):
            assert (char == ".") == (not slots[position])
