"""Tests for the GF(p) Reed–Solomon substrate."""

from __future__ import annotations

import itertools

import pytest

from repro.codes import ReedSolomonCode, is_prime, next_prime
from repro.errors import ConfigurationError


class TestPrimes:
    def test_small_primes(self):
        primes = [p for p in range(50) if is_prime(p)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]

    def test_next_prime(self):
        assert next_prime(10) == 11
        assert next_prime(11) == 11
        assert next_prime(0) == 2
        assert next_prime(24) == 29


class TestConstruction:
    def test_rejects_composite_field(self):
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(10, 2)

    def test_rejects_bad_message_length(self):
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(7, 0)
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(7, 8)

    def test_min_distance_singleton(self):
        code = ReedSolomonCode(11, 4)
        assert code.min_distance == 8
        assert code.num_messages == 11**4


class TestEncoding:
    def test_codeword_length_is_p(self):
        code = ReedSolomonCode(7, 2)
        assert len(code.encode_int(13)) == 7

    def test_constant_polynomial(self):
        code = ReedSolomonCode(7, 2)
        # message value 3 = coefficients [3, 0] -> constant polynomial 3
        assert code.encode_symbols([3, 0]) == [3] * 7

    def test_linear_polynomial(self):
        code = ReedSolomonCode(5, 2)
        # coefficients [1, 2]: p(x) = 1 + 2x over GF(5)
        assert code.encode_symbols([1, 2]) == [1, 3, 0, 2, 4]

    def test_int_to_symbols_base_p(self):
        code = ReedSolomonCode(5, 3)
        assert code.int_to_symbols(1 + 2 * 5 + 3 * 25) == [1, 2, 3]

    def test_message_out_of_range(self):
        code = ReedSolomonCode(5, 2)
        with pytest.raises(ConfigurationError):
            code.int_to_symbols(25)

    def test_symbols_out_of_field(self):
        code = ReedSolomonCode(5, 2)
        with pytest.raises(ConfigurationError):
            code.encode_symbols([5, 0])

    def test_distance_property_exhaustive_small(self):
        code = ReedSolomonCode(5, 2)
        words = [code.encode_int(m) for m in range(code.num_messages)]
        for a, b in itertools.combinations(range(len(words)), 2):
            agreement = sum(x == y for x, y in zip(words[a], words[b]))
            assert agreement <= code.message_symbols - 1

    def test_bits_capacity(self):
        assert ReedSolomonCode.bits_capacity(5, 3) == 6  # floor(3*log2 5)
