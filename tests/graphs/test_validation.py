"""Tests for graph validation helpers."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.graphs import assert_valid_topology, max_degree, relabel_consecutive


class TestAssertValid:
    def test_accepts_good_graph(self):
        graph = nx.path_graph(4)
        assert_valid_topology(graph)

    def test_rejects_directed(self):
        with pytest.raises(ConfigurationError):
            assert_valid_topology(nx.DiGraph([(0, 1)]))

    def test_rejects_noncontiguous(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 5])
        with pytest.raises(ConfigurationError):
            assert_valid_topology(graph)

    def test_rejects_self_loop(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        graph.add_edge(1, 1)
        with pytest.raises(ConfigurationError):
            assert_valid_topology(graph)


class TestMaxDegree:
    def test_empty(self):
        assert max_degree(nx.Graph()) == 0

    def test_star(self):
        assert max_degree(nx.star_graph(5)) == 5


class TestRelabel:
    def test_sorts_comparable_labels(self):
        graph = nx.Graph()
        graph.add_edge(10, 20)
        graph.add_node(5)
        relabelled = relabel_consecutive(graph)
        assert sorted(relabelled.nodes) == [0, 1, 2]
        assert relabelled.has_edge(1, 2)  # 10 -> 1, 20 -> 2

    def test_string_labels(self):
        graph = nx.Graph()
        graph.add_edge("b", "a")
        relabelled = relabel_consecutive(graph)
        assert relabelled.has_edge(0, 1)

    def test_deterministic(self):
        graph = nx.Graph()
        graph.add_edges_from([("x", "y"), ("y", "z")])
        a = relabel_consecutive(graph)
        b = relabel_consecutive(graph)
        assert set(a.edges) == set(b.edges)
