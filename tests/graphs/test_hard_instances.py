"""Tests for the Section 5 / Theorem 22 hard instances."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    local_broadcast_hard_instance,
    matching_hard_instance,
)
from repro.graphs.validation import max_degree


class TestLocalBroadcastInstance:
    def test_message_structure(self):
        instance = local_broadcast_hard_instance(3, 10, 8, seed=0)
        # left-to-right messages random B-bit, right-to-left all zero
        for left in range(3):
            for right in range(3, 6):
                assert 0 <= instance.messages[(left, right)] < 256
                assert instance.messages[(right, left)] == 0

    def test_expected_output(self):
        instance = local_broadcast_hard_instance(2, 6, 4, seed=1)
        out = instance.expected_output(2)  # right node
        assert out == {
            (0, instance.messages[(0, 2)]),
            (1, instance.messages[(1, 2)]),
        }

    def test_isolated_nodes_have_empty_output(self):
        instance = local_broadcast_hard_instance(2, 8, 4, seed=1)
        assert instance.expected_output(7) == set()

    def test_reproducible(self):
        a = local_broadcast_hard_instance(3, 8, 6, seed=5)
        b = local_broadcast_hard_instance(3, 8, 6, seed=5)
        assert a.messages == b.messages

    def test_bad_message_bits(self):
        with pytest.raises(ConfigurationError):
            local_broadcast_hard_instance(2, 6, 0, seed=0)


class TestMatchingInstance:
    def test_structure(self):
        graph, ids = matching_hard_instance(4, 32, seed=0)
        assert graph.number_of_nodes() == 8
        assert max_degree(graph) == 4
        assert len(ids) == 8

    def test_ids_unique_and_in_range(self):
        _, ids = matching_hard_instance(5, 64, seed=3)
        values = list(ids.values())
        assert len(set(values)) == len(values)
        assert all(0 <= v < 64**4 for v in values)

    def test_reproducible(self):
        _, a = matching_hard_instance(3, 16, seed=2)
        _, b = matching_hard_instance(3, 16, seed=2)
        assert a == b

    def test_n_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            matching_hard_instance(4, 6, seed=0)
