"""Tests for topology generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    balanced_tree_graph,
    complete_bipartite_with_isolated,
    complete_graph,
    cycle_graph,
    disk_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)
from repro.graphs.validation import assert_valid_topology, max_degree


class TestHardInstanceGraph:
    def test_structure(self):
        graph = complete_bipartite_with_isolated(3, 10)
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 9
        assert max_degree(graph) == 3
        # nodes 6..9 isolated
        for v in range(6, 10):
            assert graph.degree[v] == 0

    def test_bipartite_edges_only_cross(self):
        graph = complete_bipartite_with_isolated(4, 8)
        for u, v in graph.edges:
            assert (u < 4) != (v < 4)

    def test_too_small_n_rejected(self):
        with pytest.raises(ConfigurationError):
            complete_bipartite_with_isolated(4, 7)

    def test_delta_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            complete_bipartite_with_isolated(0, 4)


class TestDeterministicShapes:
    def test_path(self):
        assert path_graph(5).number_of_edges() == 4

    def test_cycle(self):
        graph = cycle_graph(6)
        assert graph.number_of_edges() == 6
        assert max_degree(graph) == 2

    def test_cycle_too_small(self):
        with pytest.raises(ConfigurationError):
            cycle_graph(2)

    def test_star(self):
        graph = star_graph(7)
        assert max_degree(graph) == 6
        assert graph.degree[0] == 6

    def test_complete(self):
        graph = complete_graph(6)
        assert graph.number_of_edges() == 15

    def test_grid_labels_consecutive(self):
        graph = grid_graph(3, 4)
        assert_valid_topology(graph)
        assert graph.number_of_nodes() == 12
        assert max_degree(graph) <= 4

    def test_grid_bad_dims(self):
        with pytest.raises(ConfigurationError):
            grid_graph(0, 3)

    def test_tree(self):
        graph = balanced_tree_graph(2, 3)
        assert nx.is_tree(graph)


class TestRandomGenerators:
    def test_gnp_reproducible(self):
        a = gnp_graph(30, 0.2, seed=5)
        b = gnp_graph(30, 0.2, seed=5)
        assert set(a.edges) == set(b.edges)

    def test_gnp_seed_changes_graph(self):
        a = gnp_graph(30, 0.2, seed=5)
        b = gnp_graph(30, 0.2, seed=6)
        assert set(a.edges) != set(b.edges)

    def test_gnp_extreme_p(self):
        assert gnp_graph(10, 0.0, seed=1).number_of_edges() == 0
        assert gnp_graph(10, 1.0, seed=1).number_of_edges() == 45

    def test_gnp_bad_p(self):
        with pytest.raises(ConfigurationError):
            gnp_graph(10, 1.5, seed=1)

    def test_regular_is_regular(self):
        graph = random_regular_graph(20, 5, seed=2)
        assert all(degree == 5 for _, degree in graph.degree)
        assert_valid_topology(graph)

    def test_regular_infeasible_rejected(self):
        with pytest.raises(ConfigurationError):
            random_regular_graph(5, 3, seed=1)  # odd n*d
        with pytest.raises(ConfigurationError):
            random_regular_graph(4, 4, seed=1)  # degree >= n

    def test_disk_graph_positions_and_validity(self):
        graph = disk_graph(25, 0.3, seed=4)
        assert_valid_topology(graph)
        for v in graph.nodes:
            x, y = graph.nodes[v]["pos"]
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_disk_graph_connect_flag(self):
        graph = disk_graph(30, 0.12, seed=9, connect=True)
        assert nx.is_connected(graph)

    def test_disk_graph_bad_radius(self):
        with pytest.raises(ConfigurationError):
            disk_graph(5, 0.0, seed=1)

    def test_disk_graph_reproducible(self):
        a = disk_graph(15, 0.25, seed=11)
        b = disk_graph(15, 0.25, seed=11)
        assert set(a.edges) == set(b.edges)
