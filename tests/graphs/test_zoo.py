"""Topology-zoo invariants: every family honours its declared promises.

Property tests (hypothesis) pin the catalog contract down: for any
family, size, and seed, :func:`build_family_graph` either raises a clean
:class:`ConfigurationError` (never a networkx traceback) or returns a
graph with exactly ``n`` consecutive node labels that satisfies the
family's connectivity promise and degree bound — and is bit-identical
under the same derived seed.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graphs import (
    barbell_graph,
    build_family_graph,
    caterpillar_graph,
    expander_graph,
    family_names,
    get_family,
    hypercube_graph,
    powerlaw_graph,
    topology_families,
    torus_graph,
)
from repro.graphs.validation import assert_valid_topology, max_degree

ZOO = family_names()


class TestCatalog:
    def test_all_families_registered(self):
        expected = {
            "barbell",
            "caterpillar",
            "complete",
            "cycle",
            "disk",
            "expander",
            "gnp",
            "grid",
            "hypercube",
            "path",
            "planted",
            "powerlaw",
            "regular",
            "star",
            "torus",
            "tree",
        }
        assert set(ZOO) == expected

    def test_unknown_family_lists_known(self):
        with pytest.raises(ConfigurationError) as excinfo:
            build_family_graph("moebius", 10)
        message = str(excinfo.value)
        assert "unknown topology family 'moebius'" in message
        for name in ("expander", "torus", "powerlaw"):
            assert name in message
        assert "\n" not in message  # one-line diagnostic

    def test_unknown_param_lists_allowed(self):
        with pytest.raises(ConfigurationError) as excinfo:
            build_family_graph("expander", 16, params={"diameter": 2})
        message = str(excinfo.value)
        assert "no parameter 'diameter'" in message and "degree" in message

    def test_bad_param_type_rejected(self):
        with pytest.raises(ConfigurationError):
            build_family_graph("regular", 16, params={"degree": "three"})
        with pytest.raises(ConfigurationError):
            build_family_graph("regular", 16, params={"degree": True})
        with pytest.raises(ConfigurationError):
            build_family_graph("regular", 16, params={"degree": 2.5})

    def test_bad_n_rejected(self):
        with pytest.raises(ConfigurationError):
            build_family_graph("cycle", 0)
        with pytest.raises(ConfigurationError):
            build_family_graph("cycle", "12")
        with pytest.raises(ConfigurationError):
            build_family_graph("cycle", True)

    def test_every_family_has_description_and_citation(self):
        for family in topology_families():
            assert family.description
            assert family.citation

    @given(name=st.sampled_from(ZOO), n=st.integers(2, 48), seed=st.integers(0, 4))
    @settings(max_examples=120, deadline=None)
    def test_build_validated_or_cleanly_rejected(self, name, n, seed):
        # The core zoo contract: any (family, n, seed) either raises a
        # one-line ConfigurationError or yields a graph honouring every
        # declared promise.
        family = get_family(name)
        try:
            graph = build_family_graph(name, n, seed=seed)
        except ConfigurationError as error:
            assert "\n" not in str(error)
            return
        assert graph.number_of_nodes() == n
        assert_valid_topology(graph)
        if family.connected and n > 1:
            assert nx.is_connected(graph)
        if family.degree_bound is not None:
            bound = family.degree_bound(n, family.resolve_params(None))
            assert max_degree(graph) <= bound

    @given(name=st.sampled_from(ZOO), n=st.integers(2, 40), seed=st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_build_deterministic_under_seed(self, name, n, seed):
        try:
            first = build_family_graph(name, n, seed=seed)
        except ConfigurationError:
            return
        second = build_family_graph(name, n, seed=seed)
        assert set(first.edges) == set(second.edges)


class TestExpander:
    def test_regular_and_connected(self):
        graph = expander_graph(24, degree=3, seed=1)
        assert all(degree == 3 for _, degree in graph.degree)
        assert nx.is_connected(graph)

    def test_seed_changes_lift(self):
        a = expander_graph(32, degree=3, seed=1)
        b = expander_graph(32, degree=3, seed=2)
        assert set(a.edges) != set(b.edges)

    def test_base_case_is_complete_graph(self):
        graph = expander_graph(4, degree=3, seed=0)
        assert graph.number_of_edges() == 6

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            expander_graph(10, degree=3, seed=0)  # not a multiple of 4
        with pytest.raises(ConfigurationError):
            expander_graph(8, degree=2, seed=0)  # degree < 3


class TestHypercube:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_log_regular(self, n):
        graph = hypercube_graph(n)
        dimension = n.bit_length() - 1
        assert all(degree == dimension for _, degree in graph.degree)
        assert nx.is_connected(graph)

    def test_non_power_of_two_rejected(self):
        for n in (0, 1, 3, 12):
            with pytest.raises(ConfigurationError):
                hypercube_graph(n)


class TestTorus:
    def test_four_regular(self):
        graph = torus_graph(16)
        assert all(degree == 4 for _, degree in graph.degree)
        assert nx.is_connected(graph)

    def test_explicit_rows(self):
        graph = torus_graph(27, rows=3)
        assert graph.number_of_nodes() == 27
        assert all(degree == 4 for _, degree in graph.degree)

    def test_prime_rejected(self):
        with pytest.raises(ConfigurationError):
            torus_graph(13)

    def test_bad_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            torus_graph(16, rows=8)  # cols would be 2 < 3


class TestBarbellAndCaterpillar:
    def test_barbell_shape(self):
        graph = barbell_graph(12)  # clique = 4, path = 4
        assert graph.number_of_nodes() == 12
        assert max_degree(graph) == 4
        assert nx.is_connected(graph)

    def test_barbell_too_small(self):
        with pytest.raises(ConfigurationError):
            barbell_graph(5)

    def test_caterpillar_is_tree_with_bounded_degree(self):
        graph = caterpillar_graph(17, legs=2)
        assert nx.is_tree(graph)
        assert max_degree(graph) <= 5  # legs + 3

    def test_caterpillar_too_small(self):
        with pytest.raises(ConfigurationError):
            caterpillar_graph(3, legs=2)


class TestPowerlaw:
    def test_connected_and_reproducible(self):
        a = powerlaw_graph(40, attachment=2, seed=3)
        b = powerlaw_graph(40, attachment=2, seed=3)
        assert nx.is_connected(a)
        assert set(a.edges) == set(b.edges)

    def test_bad_attachment_rejected(self):
        with pytest.raises(ConfigurationError):
            powerlaw_graph(10, attachment=0)
        with pytest.raises(ConfigurationError):
            powerlaw_graph(10, attachment=10)
