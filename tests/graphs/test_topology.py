"""Tests for the executable topology wrapper."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.graphs import Topology, gnp_graph, path_graph, star_graph


class TestConstruction:
    def test_basic_properties(self):
        t = Topology(path_graph(5))
        assert t.num_nodes == 5
        assert t.num_edges == 4
        assert t.max_degree == 2

    def test_rejects_directed(self):
        with pytest.raises(ConfigurationError):
            Topology(nx.DiGraph([(0, 1)]))

    def test_rejects_gap_labels(self):
        graph = nx.Graph()
        graph.add_edge(0, 2)
        with pytest.raises(ConfigurationError):
            Topology(graph)

    def test_rejects_self_loops(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        graph.add_edge(0, 0)
        with pytest.raises(ConfigurationError):
            Topology(graph)

    def test_empty_graph(self):
        graph = nx.Graph()
        t = Topology(graph)
        assert t.num_nodes == 0
        assert t.max_degree == 0

    def test_isolated_nodes_kept(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        t = Topology(graph)
        assert t.num_nodes == 4
        assert t.degrees[3] == 0


class TestAccessors:
    def test_neighbors_sorted(self):
        t = Topology(star_graph(6))
        assert list(t.neighbors[0]) == [1, 2, 3, 4, 5]
        assert list(t.neighbors[3]) == [0]

    def test_edges_sorted_pairs(self):
        t = Topology(path_graph(4))
        assert t.edges() == [(0, 1), (1, 2), (2, 3)]

    def test_are_adjacent(self):
        t = Topology(path_graph(4))
        assert t.are_adjacent(1, 2)
        assert not t.are_adjacent(0, 2)

    def test_degrees_vector(self):
        t = Topology(star_graph(5))
        assert list(t.degrees) == [4, 1, 1, 1, 1]


class TestNeighborOr:
    def test_vector_star(self):
        t = Topology(star_graph(5))
        beeps = np.array([False, True, False, False, False])
        heard = t.neighbor_or(beeps)
        # only the hub hears the leaf
        assert list(heard) == [True, False, False, False, False]

    def test_own_beep_excluded(self):
        t = Topology(path_graph(3))
        beeps = np.array([False, True, False])
        heard = t.neighbor_or(beeps)
        assert not heard[1]
        assert heard[0] and heard[2]

    def test_matrix_form_matches_columns(self):
        t = Topology(gnp_graph(12, 0.3, seed=1))
        rng = np.random.default_rng(0)
        beeps = rng.random((12, 7)) < 0.4
        block = t.neighbor_or(beeps)
        for column in range(7):
            assert np.array_equal(block[:, column], t.neighbor_or(beeps[:, column]))

    def test_wrong_shape_rejected(self):
        t = Topology(path_graph(3))
        with pytest.raises(ConfigurationError):
            t.neighbor_or(np.zeros(4, dtype=bool))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1))
    def test_neighbor_or_matches_bruteforce(self, graph_seed, beep_seed):
        t = Topology(gnp_graph(10, 0.3, seed=graph_seed % 1000))
        rng = np.random.default_rng(beep_seed)
        beeps = rng.random(10) < 0.5
        heard = t.neighbor_or(beeps)
        for v in range(10):
            expected = any(beeps[int(u)] for u in t.neighbors[v])
            assert heard[v] == expected
