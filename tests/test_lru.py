"""Tests for the shared bounded LRU mapping (repro.lru)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.lru import LRUDict


class TestLRUDict:
    def test_bound_enforced(self):
        cache = LRUDict(4)
        for key in range(20):
            cache[key] = key * 10
            assert len(cache) <= 4
        assert list(cache) == [16, 17, 18, 19]

    def test_get_refreshes_recency(self):
        cache = LRUDict(3)
        cache[1] = "a"
        cache[2] = "b"
        cache[3] = "c"
        assert cache.get(1) == "a"  # 1 becomes most recent
        cache[4] = "d"  # evicts 2, the oldest
        assert 1 in cache and 3 in cache and 4 in cache
        assert 2 not in cache

    def test_reinsert_refreshes_recency(self):
        cache = LRUDict(2)
        cache[1] = "a"
        cache[2] = "b"
        cache[1] = "a2"  # refresh, not a growth
        cache[3] = "c"  # evicts 2
        assert cache.get(1) == "a2"
        assert 2 not in cache

    def test_miss_returns_none(self):
        cache = LRUDict(2)
        assert cache.get("absent") is None

    def test_limit_shrink_evicts_oldest(self):
        cache = LRUDict(5)
        for key in range(5):
            cache[key] = key
        cache.limit = 2
        assert list(cache) == [3, 4]

    def test_clear(self):
        cache = LRUDict(3)
        cache["x"] = 1
        cache.clear()
        assert len(cache) == 0

    def test_bad_limits_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUDict(0)
        cache = LRUDict(2)
        with pytest.raises(ConfigurationError):
            cache.limit = 0
