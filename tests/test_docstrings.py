"""The pydocstyle-lite gate must hold for the public API.

Runs ``tools/check_docstrings.py`` (the same script CI invokes) against
the in-repo sources, so a missing module/function docstring on the
public surface — or an undocumented topology-zoo parameter — fails
tier-1, not just the CI docs job.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_public_api_docstrings_clean():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docstrings.py")],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"docstring gate failed:\n{completed.stdout}{completed.stderr}"
    )
