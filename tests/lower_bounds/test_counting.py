"""Tests for the transcript-counting bound calculators (Section 5)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.lower_bounds import (
    local_broadcast_round_bound,
    local_broadcast_success_bound,
    matching_round_bound,
    matching_success_bound,
    simulation_overhead_bounds,
)


class TestLocalBroadcastBound:
    def test_formula(self):
        assert local_broadcast_round_bound(4, 8) == 64
        assert local_broadcast_round_bound(3, 5) == 22  # floor(45/2)

    def test_success_cap_decays_exponentially(self):
        # at T = Delta^2 B / 2 rounds, cap = 2^(-Delta^2 B / 2)
        assert local_broadcast_success_bound(8, 2, 4) == pytest.approx(2.0**-8)

    def test_success_cap_saturates(self):
        assert local_broadcast_success_bound(1000, 2, 4) == 1.0

    def test_cap_monotone_in_rounds(self):
        caps = [local_broadcast_success_bound(t, 3, 4) for t in (0, 10, 20, 36)]
        assert caps == sorted(caps)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            local_broadcast_round_bound(0, 4)
        with pytest.raises(ConfigurationError):
            local_broadcast_success_bound(-1, 2, 4)


class TestMatchingBound:
    def test_formula(self):
        assert matching_round_bound(4, 256) == 32

    def test_success_cap(self):
        # 2^r / n^{3 Delta}
        assert matching_success_bound(8, 2, 16) == pytest.approx(
            2.0**8 / 16.0**6
        )

    def test_cap_saturates(self):
        assert matching_success_bound(10**6, 2, 16) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            matching_round_bound(0, 16)


class TestSimulationOverheadBounds:
    def test_corollary16_shape(self):
        bc, congest = simulation_overhead_bounds(8, 256)
        # Delta log n / 2 and Delta^2 log n / 2
        assert bc == pytest.approx(8 * 8 / 2)
        assert congest == pytest.approx(64 * 8 / 2)

    def test_congest_is_delta_times_bc(self):
        bc, congest = simulation_overhead_bounds(6, 64)
        assert congest == pytest.approx(6 * bc)

    def test_gamma_cancels(self):
        assert simulation_overhead_bounds(4, 64, gamma=1) == pytest.approx(
            simulation_overhead_bounds(4, 64, gamma=3)
        )
