"""Tests for the empirical transcript census (Lemma 14 demonstration)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.lower_bounds import transcript_census


class TestTranscriptCensus:
    def test_algorithm_is_correct_and_injective(self):
        result = transcript_census(delta=2, message_bits=3, trials=30, seed=1)
        assert result.all_correct
        assert result.injective
        assert result.distinct_transcripts >= result.distinct_inputs

    def test_rounds_respect_lower_bound(self):
        result = transcript_census(delta=3, message_bits=4, trials=5, seed=0)
        assert result.rounds_used >= result.lower_bound_rounds
        # the concrete algorithm is within 2x of the bound
        assert result.rounds_used <= 2 * result.lower_bound_rounds

    def test_distinct_inputs_grow_with_trials(self):
        small = transcript_census(2, 4, trials=5, seed=2)
        large = transcript_census(2, 4, trials=40, seed=2)
        assert large.distinct_inputs >= small.distinct_inputs

    def test_deterministic_under_seed(self):
        a = transcript_census(2, 3, trials=10, seed=7)
        b = transcript_census(2, 3, trials=10, seed=7)
        assert a == b

    def test_trials_validated(self):
        with pytest.raises(ConfigurationError):
            transcript_census(2, 3, trials=0)
