"""Setup shim for environments without the ``wheel`` package.

Allows ``pip install -e . --no-use-pep517 --no-build-isolation`` (legacy
editable install) where PEP 660 builds are unavailable; all metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
