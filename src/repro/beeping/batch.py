"""Vectorised executor for schedule-driven beeping phases.

The code-transmission phases of Algorithm 1 are *oblivious*: every device's
beep pattern for the whole phase is fixed before the phase starts (it is a
codeword).  For those phases the entire execution reduces to one sparse
matrix product, which is orders of magnitude faster than the per-round
engine while being bit-identical to it (the noise model keys flips by
global round number, and the equivalence is property-tested in
``tests/beeping/test_batch.py``).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..graphs import Topology
from .noise import NoiseModel, NoiselessChannel

__all__ = ["run_schedule"]


def run_schedule(
    topology: Topology,
    schedule: np.ndarray,
    channel: NoiseModel | None = None,
    start_round: int = 0,
) -> np.ndarray:
    """Execute a fixed beep schedule and return what every device hears.

    Parameters
    ----------
    topology:
        The network.
    schedule:
        Boolean ``(n, rounds)`` matrix; ``schedule[v, t]`` means device
        ``v`` beeps in phase round ``t`` (and listens otherwise).
    channel:
        Noise model (noiseless by default).
    start_round:
        Global round number of the phase's first round; keys the noise
        stream so chained phases reproduce the per-round engine exactly.

    Returns
    -------
    numpy.ndarray
        Boolean ``(n, rounds)`` matrix of heard bits: own beep or
        neighbours' OR, passed through the channel.
    """
    if channel is None:
        channel = NoiselessChannel()
    schedule = np.asarray(schedule, dtype=bool)
    if schedule.ndim != 2:
        raise ConfigurationError("schedule must be an (n, rounds) matrix")
    if schedule.shape[0] != topology.num_nodes:
        raise ConfigurationError(
            f"schedule has {schedule.shape[0]} rows, expected "
            f"{topology.num_nodes}"
        )
    received = topology.neighbor_or(schedule) | schedule
    return channel.apply(received, start_round)
