"""Vectorised executor for schedule-driven beeping phases.

The code-transmission phases of Algorithm 1 are *oblivious*: every device's
beep pattern for the whole phase is fixed before the phase starts (it is a
codeword).  For those phases the entire execution reduces to a carrier-sense
primitive over the whole schedule at once, which is orders of magnitude
faster than the per-round engine while being bit-identical to it (the noise
model keys flips by global round number, and the equivalence is
property-tested in ``tests/beeping/test_batch.py``).

Execution is delegated to a pluggable :class:`~repro.engine.
SimulationBackend` — the scipy-CSR/numpy ``"dense"`` path or the ``uint64``
``"bitpacked"`` path, selected per call, process-wide, or automatically by
schedule size (see :mod:`repro.engine`).

Dynamic networks plug in *above* the backends: when the topology is a
:class:`~repro.beeping.noise.DynamicTopology`, the runners here split the
schedule at epoch boundaries and execute each segment against that epoch's
masked static topology (noise keying stays global-round, so the split is
invisible to the flip stream).  Backends therefore only ever see static
topologies, and the bit-identity invariant across dense / bit-packed /
batched / sharded execution extends to churn scenarios with no per-backend
code.
"""

from __future__ import annotations

import numpy as np

from ..engine import SimulationBackend, resolve_backend
from ..graphs import Topology
from .noise import DynamicTopology, NoiseModel

__all__ = ["run_schedule", "run_schedule_batch"]


def run_schedule(
    topology: Topology | DynamicTopology,
    schedule: np.ndarray,
    channel: NoiseModel | None = None,
    start_round: int = 0,
    backend: str | SimulationBackend | None = None,
) -> np.ndarray:
    """Execute a fixed beep schedule and return what every device hears.

    Parameters
    ----------
    topology:
        The network — a static :class:`~repro.graphs.Topology` or a
        :class:`~repro.beeping.noise.DynamicTopology` churn schedule
        (executed epoch segment by epoch segment against its masks).
    schedule:
        Boolean ``(n, rounds)`` matrix; ``schedule[v, t]`` means device
        ``v`` beeps in phase round ``t`` (and listens otherwise).
    channel:
        Noise model (noiseless by default).
    start_round:
        Global round number of the phase's first round; keys the noise
        stream (and the churn epochs) so chained phases reproduce the
        per-round engine exactly.
    backend:
        Execution backend: a name (``"dense"``, ``"bitpacked"``), an
        instance, ``"auto"``, or ``None`` for the process default.  All
        backends return bit-identical heard matrices.

    Returns
    -------
    numpy.ndarray
        Boolean ``(n, rounds)`` matrix of heard bits: own beep or
        neighbours' OR, passed through the channel.
    """
    schedule = np.asarray(schedule, dtype=bool)
    rounds = schedule.shape[1] if schedule.ndim == 2 else None
    resolved = resolve_backend(backend, topology=topology, rounds=rounds)
    if not isinstance(topology, DynamicTopology):
        return resolved.run_schedule(topology, schedule, channel, start_round)
    if schedule.ndim != 2:
        raise ValueError(
            "dynamic topologies need an (n, rounds) schedule, got shape "
            f"{schedule.shape}"
        )
    heard = np.empty_like(schedule)
    for start, stop in topology.segments(start_round, schedule.shape[1]):
        lo = start - start_round
        hi = stop - start_round
        heard[:, lo:hi] = resolved.run_schedule(
            topology.topology_at(start), schedule[:, lo:hi], channel, start
        )
    return heard


def run_schedule_batch(
    topology: Topology | DynamicTopology,
    schedules: np.ndarray,
    channels,
    start_rounds,
    backend: str | SimulationBackend | None = None,
) -> np.ndarray:
    """Execute R replica schedules over one shared topology in one call.

    ``schedules`` is boolean ``(R, n, rounds)``; ``channels`` and
    ``start_rounds`` are per-replica sequences of length R.  Static
    topologies go straight to the backend's replica-batched kernel.  A
    :class:`~repro.beeping.noise.DynamicTopology` is executed epoch
    segment by epoch segment when every replica shares one start round
    (the common case — :class:`~repro.core.round_simulator.BatchedSession`
    advances replicas in lock-step), and replica by replica otherwise,
    since differing starts put epoch boundaries at different columns.
    Either way the result is bit-identical to R separate
    :func:`run_schedule` calls.
    """
    schedules = np.asarray(schedules, dtype=bool)
    if schedules.ndim != 3:
        raise ValueError(
            f"schedules must be (R, n, rounds), got shape {schedules.shape}"
        )
    replicas = schedules.shape[0]
    if len(channels) != replicas or len(start_rounds) != replicas:
        raise ValueError(
            f"{replicas} schedules need {replicas} channels and start "
            f"rounds, got {len(channels)} and {len(start_rounds)}"
        )
    resolved = resolve_backend(
        backend, topology=topology, rounds=schedules.shape[2]
    )
    if not isinstance(topology, DynamicTopology):
        return resolved.run_schedule_batch(
            topology, schedules, channels, start_rounds
        )
    starts = [int(start) for start in start_rounds]
    if len(set(starts)) > 1:
        heard = np.empty_like(schedules)
        for index in range(replicas):
            heard[index] = run_schedule(
                topology,
                schedules[index],
                channels[index],
                starts[index],
                backend=resolved,
            )
        return heard
    start_round = starts[0] if starts else 0
    heard = np.empty_like(schedules)
    for start, stop in topology.segments(start_round, schedules.shape[2]):
        lo = start - start_round
        hi = stop - start_round
        heard[:, :, lo:hi] = resolved.run_schedule_batch(
            topology.topology_at(start),
            schedules[:, :, lo:hi],
            channels,
            [start] * replicas,
        )
    return heard
