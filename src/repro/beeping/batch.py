"""Vectorised executor for schedule-driven beeping phases.

The code-transmission phases of Algorithm 1 are *oblivious*: every device's
beep pattern for the whole phase is fixed before the phase starts (it is a
codeword).  For those phases the entire execution reduces to a carrier-sense
primitive over the whole schedule at once, which is orders of magnitude
faster than the per-round engine while being bit-identical to it (the noise
model keys flips by global round number, and the equivalence is
property-tested in ``tests/beeping/test_batch.py``).

Execution is delegated to a pluggable :class:`~repro.engine.
SimulationBackend` — the scipy-CSR/numpy ``"dense"`` path or the ``uint64``
``"bitpacked"`` path, selected per call, process-wide, or automatically by
schedule size (see :mod:`repro.engine`).
"""

from __future__ import annotations

import numpy as np

from ..engine import SimulationBackend, resolve_backend
from ..graphs import Topology
from .noise import NoiseModel

__all__ = ["run_schedule"]


def run_schedule(
    topology: Topology,
    schedule: np.ndarray,
    channel: NoiseModel | None = None,
    start_round: int = 0,
    backend: str | SimulationBackend | None = None,
) -> np.ndarray:
    """Execute a fixed beep schedule and return what every device hears.

    Parameters
    ----------
    topology:
        The network.
    schedule:
        Boolean ``(n, rounds)`` matrix; ``schedule[v, t]`` means device
        ``v`` beeps in phase round ``t`` (and listens otherwise).
    channel:
        Noise model (noiseless by default).
    start_round:
        Global round number of the phase's first round; keys the noise
        stream so chained phases reproduce the per-round engine exactly.
    backend:
        Execution backend: a name (``"dense"``, ``"bitpacked"``), an
        instance, ``"auto"``, or ``None`` for the process default.  All
        backends return bit-identical heard matrices.

    Returns
    -------
    numpy.ndarray
        Boolean ``(n, rounds)`` matrix of heard bits: own beep or
        neighbours' OR, passed through the channel.
    """
    schedule = np.asarray(schedule, dtype=bool)
    rounds = schedule.shape[1] if schedule.ndim == 2 else None
    resolved = resolve_backend(backend, topology=topology, rounds=rounds)
    return resolved.run_schedule(topology, schedule, channel, start_round)
