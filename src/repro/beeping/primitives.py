"""Beep waves: single-source broadcast in the beeping model.

The classical primitive of Ghaffari–Haeupler [19], formalised by
Czumaj–Davies [9], cited in Section 1.2 of the paper: a ``b``-bit message is
broadcast from one source in ``O(D + b)`` rounds.  The source launches one
"wave" per message bit, waves spaced three rounds apart; every other device
relays a wave one round after hearing it, with a two-round refractory period
that stops waves reflecting backwards.

A device at distance ``d`` from the source hears wave ``j`` at round
``3j + d``; the initial always-on synchronisation wave (``j = 0``) lets each
device measure ``d`` itself.  Under noise the broadcast is repeated and
devices take per-bit majorities (distance is re-estimated per repetition and
combined by median).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import bitstrings
from ..bitstrings import BitString
from ..errors import ConfigurationError
from ..graphs import Topology
from .model import Action
from .network import BeepingNetwork
from .node import BeepingProtocol
from .noise import NoiseModel

__all__ = ["BeepWaveResult", "beep_wave_broadcast"]

#: Rounds between consecutive wave launches; 3 is the minimum spacing at
#: which the refractory relay rule keeps waves from merging or reflecting.
_WAVE_SPACING = 3


@dataclass(frozen=True)
class BeepWaveResult:
    """Outcome of a beep-wave broadcast.

    Attributes
    ----------
    decoded:
        Per-node decoded message (``None`` for nodes that never heard the
        synchronisation wave, i.e. nodes disconnected from the source).
    distances:
        Per-node estimated distance to the source (``-1`` if unreached).
    rounds_used:
        Total beeping rounds consumed.
    """

    decoded: list[BitString | None]
    distances: list[int]
    rounds_used: int

    def all_correct(self, message: BitString, reachable: set[int]) -> bool:
        """Whether every reachable node decoded the message exactly."""
        for node in reachable:
            got = self.decoded[node]
            if got is None or len(got) != len(message) or bitstrings.hamming(got, message):
                return False
        return True


class _SourceProtocol(BeepingProtocol):
    """The source: beeps the sync wave, then one wave per 1-bit."""

    def __init__(self, message: BitString, run_length: int, repetitions: int) -> None:
        self._beep_rounds: set[int] = set()
        for repetition in range(repetitions):
            offset = repetition * run_length
            self._beep_rounds.add(offset)  # synchronisation wave
            for j, bit in enumerate(message, start=1):
                if bit:
                    self._beep_rounds.add(offset + _WAVE_SPACING * j)

    def act(self, round_index: int) -> Action:
        return Action.BEEP if round_index in self._beep_rounds else Action.LISTEN

    def observe(self, round_index: int, heard: bool) -> None:
        pass


class _RelayProtocol(BeepingProtocol):
    """A relay: forwards heard waves with a one-round refractory period."""

    def __init__(self) -> None:
        self._pending_beep: set[int] = set()
        self._recent_beeps: list[int] = []
        self.heard_rounds: set[int] = set()

    def act(self, round_index: int) -> Action:
        if round_index in self._pending_beep:
            self._pending_beep.discard(round_index)
            self._recent_beeps.append(round_index)
            if len(self._recent_beeps) > 4:
                del self._recent_beeps[0]
            return Action.BEEP
        return Action.LISTEN

    def observe(self, round_index: int, heard: bool) -> None:
        if not heard:
            return
        if round_index in self._recent_beeps:
            return  # own beep echoed back by the engine's convention
        self.heard_rounds.add(round_index)
        # Refractory rule: a device that beeped in the previous round is
        # hearing its own wave's downstream relay and must not reflect it.
        # With waves spaced 3 rounds apart, a one-round refractory period is
        # exactly enough: the next wave reaches the device 2 rounds after
        # its own last beep.
        if round_index - 1 not in self._recent_beeps:
            self._pending_beep.add(round_index + 1)


def beep_wave_broadcast(
    topology: Topology,
    source: int,
    message: BitString,
    channel: NoiseModel | None = None,
    repetitions: int = 1,
) -> BeepWaveResult:
    """Broadcast ``message`` from ``source`` to the whole network.

    Uses ``repetitions * (3(b + 1) + ecc + 2)`` rounds, where ``ecc`` is the
    source's eccentricity — the ``O(D + b)`` of the literature.  With a
    noisy channel choose ``repetitions = Θ(log n)`` for per-bit majorities.
    """
    n = topology.num_nodes
    if not 0 <= source < n:
        raise ConfigurationError(f"source {source} out of range for {n} nodes")
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    num_bits = len(message)
    eccentricity = _source_eccentricity(topology, source)
    run_length = _WAVE_SPACING * (num_bits + 1) + eccentricity + 2
    protocols: list[BeepingProtocol] = [_RelayProtocol() for _ in range(n)]
    protocols[source] = _SourceProtocol(message, run_length, repetitions)
    network = BeepingNetwork(topology, channel)
    total_rounds = run_length * repetitions
    network.run(protocols, total_rounds, stop_when_finished=False)

    decoded: list[BitString | None] = []
    distances: list[int] = []
    for node in range(n):
        if node == source:
            decoded.append(message.copy())
            distances.append(0)
            continue
        relay = protocols[node]
        assert isinstance(relay, _RelayProtocol)
        message_votes = np.zeros(num_bits, dtype=np.int64)
        distance_estimates: list[int] = []
        runs_heard = 0
        for repetition in range(repetitions):
            offset = repetition * run_length
            in_run = sorted(
                r - offset
                for r in relay.heard_rounds
                if offset <= r < offset + run_length
            )
            if not in_run:
                continue
            runs_heard += 1
            # A device at distance d first hears the sync wave at round
            # d - 1 (listeners hear neighbours' beeps in the same round).
            first_heard = in_run[0]
            distance_estimates.append(first_heard + 1)
            heard_set = set(in_run)
            for j in range(1, num_bits + 1):
                if _WAVE_SPACING * j + first_heard in heard_set:
                    message_votes[j - 1] += 1
        if runs_heard == 0:
            decoded.append(None)
            distances.append(-1)
        else:
            decoded.append(message_votes * 2 > runs_heard)
            distances.append(int(np.median(distance_estimates)))
    return BeepWaveResult(
        decoded=decoded, distances=distances, rounds_used=total_rounds
    )


def _source_eccentricity(topology: Topology, source: int) -> int:
    """Max BFS distance from the source over its connected component."""
    import collections

    seen = {source: 0}
    queue = collections.deque([source])
    farthest = 0
    while queue:
        node = queue.popleft()
        for neighbor in topology.neighbors[node]:
            neighbor = int(neighbor)
            if neighbor not in seen:
                seen[neighbor] = seen[node] + 1
                farthest = max(farthest, seen[neighbor])
                queue.append(neighbor)
    return farthest
