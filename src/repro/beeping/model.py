"""Actions and observation conventions of the beeping model."""

from __future__ import annotations

import enum

__all__ = ["Action", "BEEP", "LISTEN"]


class Action(enum.Enum):
    """What a device does in one beeping round."""

    BEEP = "beep"
    LISTEN = "listen"


#: Convenience aliases so protocols can ``return BEEP``.
BEEP = Action.BEEP
LISTEN = Action.LISTEN
