"""Channel noise models for the beeping substrate.

The noisy beeping model of Ashkenazi, Gelles and Leshem [4] flips each heard
bit independently with probability ``ε ∈ (0, 1/2)``.  Per the paper's
Footnote 2 convention, a node "hears" its own beep as a 1, and in the noisy
model that self-observation is flipped with probability ``ε`` as well — a
simplification that only weakens the nodes, adopted here by default so
measured failure rates are comparable to the analysis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigurationError
from ..lru import LRUDict
from ..rng import derive_rng

__all__ = ["NoiseModel", "NoiselessChannel", "BernoulliNoise"]


class NoiseModel(ABC):
    """Transforms the true received bits into what devices actually hear."""

    @property
    @abstractmethod
    def eps(self) -> float:
        """The per-bit flip probability (0 for a noiseless channel)."""

    @abstractmethod
    def apply(self, received: np.ndarray, round_index: int) -> np.ndarray:
        """Return the heard bits for one round (or a block of rounds).

        ``received`` is a boolean array — shape ``(n,)`` for a single round
        or ``(n, r)`` for a block starting at ``round_index``.  The same
        ``(round_index, shape)`` always yields the same flips, so the
        per-round engine and the batch executor produce identical noise.
        """


class NoiselessChannel(NoiseModel):
    """The noiseless beeping model: devices hear exactly the received bits."""

    @property
    def eps(self) -> float:
        return 0.0

    def apply(self, received: np.ndarray, round_index: int) -> np.ndarray:
        return np.array(received, dtype=bool, copy=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NoiselessChannel()"


#: Rounds per noise window.  Flips are generated one window at a time from
#: a Philox stream keyed by (seed, window index), so the flips for round
#: ``t`` depend only on ``(seed, t, n)`` — executing rounds one at a time
#: or in arbitrary batches yields identical noise.
_WINDOW = 4096

#: Flip windows kept resident per channel; a window is ``n * 4096`` bits,
#: and chained phases touch at most two consecutive windows plus the
#: occasional replay, so a handful suffices.
_WINDOW_CACHE_LIMIT = 4


class BernoulliNoise(NoiseModel):
    """The noisy beeping model: each heard bit flips with probability ``ε``.

    Flips are keyed by ``(seed, round)`` so executions are reproducible and
    independent of how rounds are batched: applying rounds one at a time or
    as a block yields the same flip pattern.
    """

    def __init__(self, eps: float, seed: int) -> None:
        if not 0.0 < eps < 0.5:
            raise ConfigurationError(
                f"noisy beeping requires eps in (0, 1/2), got {eps} "
                "(use NoiselessChannel for eps = 0)"
            )
        self._eps = eps
        self._seed = seed
        key_rng = derive_rng(seed, "beep-noise-key")
        self._key = key_rng.integers(0, 2**63, size=2, dtype=np.uint64)
        # Small LRU of recently generated windows, keyed by (window, n).
        self._window_cache: LRUDict[tuple[int, int], np.ndarray] = LRUDict(
            _WINDOW_CACHE_LIMIT
        )

    @property
    def eps(self) -> float:
        return self._eps

    @property
    def seed(self) -> int:
        """The seed keying the flip pattern."""
        return self._seed

    def apply(self, received: np.ndarray, round_index: int) -> np.ndarray:
        received = np.asarray(received, dtype=bool)
        if received.ndim == 1:
            n = received.shape[0]
            window, offset = divmod(round_index, _WINDOW)
            return received ^ self._window_block(window, n)[offset]
        if received.ndim != 2:
            raise ConfigurationError("received array must be 1-D or 2-D")
        n, rounds = received.shape
        return received ^ self.flip_block(round_index, rounds, n)

    def flip_block(self, round_index: int, rounds: int, n: int) -> np.ndarray:
        """The boolean ``(n, rounds)`` flip matrix starting at ``round_index``.

        This is the raw noise stream :meth:`apply` XORs in, exposed so the
        bit-packed backend can pack the very same Philox flips into words —
        the ``(seed, round)`` keying and window semantics are shared, which
        is what makes the backends bit-identical under noise.
        """
        flips = np.empty((n, rounds), dtype=bool)
        position = 0
        while position < rounds:
            window, offset = divmod(round_index + position, _WINDOW)
            take = min(_WINDOW - offset, rounds - position)
            block = self._window_block(window, n)
            flips[:, position : position + take] = block[
                offset : offset + take
            ].T
            position += take
        return flips

    def _window_block(self, window: int, n: int) -> np.ndarray:
        """The ``( _WINDOW, n)`` flip matrix for one window of rounds."""
        cache_key = (window, n)
        block = self._window_cache.get(cache_key)
        if block is None:
            bit_generator = np.random.Philox(
                key=self._key, counter=[0, 0, np.uint64(window), 0]
            )
            rng = np.random.Generator(bit_generator)
            block = rng.random((_WINDOW, n)) < self._eps
            self._window_cache[cache_key] = block
        return block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BernoulliNoise(eps={self._eps}, seed={self._seed})"


def make_channel(eps: float, seed: int) -> NoiseModel:
    """Build the appropriate channel for a noise rate (0 means noiseless)."""
    if eps == 0.0:
        return NoiselessChannel()
    return BernoulliNoise(eps, seed)
