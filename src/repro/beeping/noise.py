"""Channel noise models and dynamic-network scenarios for the beeping substrate.

The noisy beeping model of Ashkenazi, Gelles and Leshem [4] flips each heard
bit independently with probability ``ε ∈ (0, 1/2)``.  Per the paper's
Footnote 2 convention, a node "hears" its own beep as a 1, and in the noisy
model that self-observation is flipped with probability ``ε`` as well — a
simplification that only weakens the nodes, adopted here by default so
measured failure rates are comparable to the analysis.

Beyond the uniform :class:`BernoulliNoise` channel, this module is the
**scenario layer**: heterogeneous per-node noise rates
(:class:`HeterogeneousNoise`, :func:`unreliable_zone`), adversarial flip
schedules that spend the same ε budget in concentrated bursts
(:class:`AdversarialNoise`), and seeded node-churn / edge-failure
schedules over a static topology (:class:`DynamicTopology`).

**The window contract.**  Every noise model generates its flips one
4096-round *window* at a time from a Philox stream keyed by
``(seed, window index)``, and :class:`DynamicTopology` draws its per-epoch
masks the same way — so the flips (or the active edge set) for round
``t`` are a pure function of ``(seed, t, n)``.  They never depend on how
rounds are batched, which backend executes them, how many replicas share
a call, or how many shard workers split the nodes.  That is the single
property that keeps the dense, bit-packed, replica-batched and sharded
execution paths bit-identical under every scenario (property-tested in
``tests/beeping/test_scenarios.py`` and ``tests/engine/``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigurationError
from ..lru import LRUDict
from ..rng import derive_rng, derive_seed

__all__ = [
    "NoiseModel",
    "NoiselessChannel",
    "WindowedNoise",
    "BernoulliNoise",
    "HeterogeneousNoise",
    "AdversarialNoise",
    "DynamicTopology",
    "unreliable_zone",
    "make_channel",
    "make_noise_model",
    "noise_model_names",
    "parse_noise_model",
]


class NoiseModel(ABC):
    """Transforms the true received bits into what devices actually hear."""

    @property
    @abstractmethod
    def eps(self) -> float:
        """The per-bit flip probability (0 for a noiseless channel)."""

    @abstractmethod
    def apply(self, received: np.ndarray, round_index: int) -> np.ndarray:
        """Return the heard bits for one round (or a block of rounds).

        ``received`` is a boolean array — shape ``(n,)`` for a single round
        or ``(n, r)`` for a block starting at ``round_index``.  The same
        ``(round_index, shape)`` always yields the same flips, so the
        per-round engine and the batch executor produce identical noise.
        """


class NoiselessChannel(NoiseModel):
    """The noiseless beeping model: devices hear exactly the received bits."""

    @property
    def eps(self) -> float:
        """Always 0: no bit is ever flipped."""
        return 0.0

    def apply(self, received: np.ndarray, round_index: int) -> np.ndarray:
        """Return an unmodified boolean copy of ``received``."""
        return np.array(received, dtype=bool, copy=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NoiselessChannel()"


#: Rounds per noise window.  Flips are generated one window at a time from
#: a Philox stream keyed by (seed, window index), so the flips for round
#: ``t`` depend only on ``(seed, t, n)`` — executing rounds one at a time
#: or in arbitrary batches yields identical noise.
_WINDOW = 4096

#: Flip windows kept resident per channel; a window is ``n * 4096`` bits,
#: and chained phases touch at most two consecutive windows plus the
#: occasional replay, so a handful suffices.
_WINDOW_CACHE_LIMIT = 4


class WindowedNoise(NoiseModel):
    """Shared machinery for window-keyed flip channels.

    Subclasses implement :meth:`_window_flips` — the boolean
    ``(_WINDOW, n)`` flip matrix of one window — from the per-window
    Philox generator :meth:`_window_rng` provides; this base supplies the
    1-D/2-D :meth:`apply`, the batched :meth:`flip_block`, and a small
    per-``(window, n)`` LRU of generated windows.  Because every flip is
    a pure function of ``(seed, round, n)``, any channel built on this
    base automatically satisfies the window contract that keeps the
    execution backends bit-identical.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        key_rng = derive_rng(self._seed, "beep-noise-key")
        self._key = key_rng.integers(0, 2**63, size=2, dtype=np.uint64)
        # Small LRU of recently generated windows, keyed by (window, n):
        # two topologies of different sizes sharing one channel instance
        # can never cross-contaminate, and re-querying an evicted window
        # regenerates exactly the same flips (regression-tested).
        self._window_cache: LRUDict[tuple[int, int], np.ndarray] = LRUDict(
            _WINDOW_CACHE_LIMIT
        )

    @property
    def seed(self) -> int:
        """The seed keying the flip pattern."""
        return self._seed

    def apply(self, received: np.ndarray, round_index: int) -> np.ndarray:
        """XOR the window-keyed flips into ``received`` (1-D or 2-D form)."""
        received = np.asarray(received, dtype=bool)
        if received.ndim == 1:
            n = received.shape[0]
            window, offset = divmod(round_index, _WINDOW)
            return received ^ self._window_block(window, n)[offset]
        if received.ndim != 2:
            raise ConfigurationError("received array must be 1-D or 2-D")
        n, rounds = received.shape
        return received ^ self.flip_block(round_index, rounds, n)

    def flip_block(self, round_index: int, rounds: int, n: int) -> np.ndarray:
        """The boolean ``(n, rounds)`` flip matrix starting at ``round_index``.

        This is the raw noise stream :meth:`apply` XORs in, exposed so the
        bit-packed backend can pack the very same Philox flips into words
        and shard workers can slice their local nodes' rows — the
        ``(seed, round)`` keying and window semantics are shared, which
        is what makes the backends bit-identical under noise.
        """
        flips = np.empty((n, rounds), dtype=bool)
        position = 0
        while position < rounds:
            window, offset = divmod(round_index + position, _WINDOW)
            take = min(_WINDOW - offset, rounds - position)
            block = self._window_block(window, n)
            flips[:, position : position + take] = block[
                offset : offset + take
            ].T
            position += take
        return flips

    def _window_rng(self, window: int) -> np.random.Generator:
        """The Philox generator for one window, counter-keyed by its index."""
        bit_generator = np.random.Philox(
            key=self._key, counter=[0, 0, np.uint64(window), 0]
        )
        return np.random.Generator(bit_generator)

    def _window_block(self, window: int, n: int) -> np.ndarray:
        """The ``(_WINDOW, n)`` flip matrix for one window, LRU-cached."""
        cache_key = (window, n)
        block = self._window_cache.get(cache_key)
        if block is None:
            block = self._window_flips(window, n)
            self._window_cache[cache_key] = block
        return block

    @abstractmethod
    def _window_flips(self, window: int, n: int) -> np.ndarray:
        """Generate the boolean ``(_WINDOW, n)`` flip matrix of one window."""


class BernoulliNoise(WindowedNoise):
    """The noisy beeping model: each heard bit flips with probability ``ε``.

    Flips are keyed by ``(seed, round)`` so executions are reproducible and
    independent of how rounds are batched: applying rounds one at a time or
    as a block yields the same flip pattern.
    """

    def __init__(self, eps: float, seed: int) -> None:
        if not 0.0 < eps < 0.5:
            raise ConfigurationError(
                f"noisy beeping requires eps in (0, 1/2), got {eps} "
                "(use NoiselessChannel for eps = 0)"
            )
        self._eps = eps
        super().__init__(seed)

    @property
    def eps(self) -> float:
        """The uniform per-bit flip probability."""
        return self._eps

    def _window_flips(self, window: int, n: int) -> np.ndarray:
        """One window of iid Bernoulli(ε) flips (uniform draws < ε)."""
        return self._window_rng(window).random((_WINDOW, n)) < self._eps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BernoulliNoise(eps={self._eps}, seed={self._seed})"


class HeterogeneousNoise(WindowedNoise):
    """Per-node flip probabilities: node ``v`` hears through ε = ``eps_vector[v]``.

    Models heterogeneous networks whose devices differ in radio
    reliability: each heard bit of node ``v`` flips independently with
    that node's own rate.  The flips come from the same per-window
    uniform Philox stream as :class:`BernoulliNoise`, thresholded per
    column — so the window contract holds and the channel is pinned to
    the ``n = len(eps_vector)`` it was built for (applying it to any
    other width is a configuration error, never silent recycling).
    """

    def __init__(self, eps_vector, seed: int) -> None:
        vector = np.asarray(eps_vector, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] == 0:
            raise ConfigurationError(
                "heterogeneous noise needs a non-empty 1-D eps vector, "
                f"got shape {vector.shape}"
            )
        if np.any(vector < 0.0) or np.any(vector >= 0.5):
            raise ConfigurationError(
                "heterogeneous noise requires every per-node eps in [0, 1/2); "
                f"offending values include {vector[(vector < 0) | (vector >= 0.5)][:3]}"
            )
        self._eps_vector = vector
        self._eps_vector.setflags(write=False)
        super().__init__(seed)

    @property
    def eps(self) -> float:
        """The mean per-node flip probability (the channel's ε budget)."""
        return float(self._eps_vector.mean())

    @property
    def eps_vector(self) -> np.ndarray:
        """The read-only per-node flip-probability vector."""
        return self._eps_vector

    @property
    def num_nodes(self) -> int:
        """The node count this channel is pinned to."""
        return int(self._eps_vector.shape[0])

    def _window_flips(self, window: int, n: int) -> np.ndarray:
        """One window of per-node Bernoulli(ε_v) flips (uniforms < ε_v)."""
        if n != self.num_nodes:
            raise ConfigurationError(
                f"heterogeneous channel built for {self.num_nodes} nodes "
                f"applied to {n}"
            )
        return self._window_rng(window).random((_WINDOW, n)) < self._eps_vector[
            None, :
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeterogeneousNoise(n={self.num_nodes}, "
            f"mean_eps={self.eps:.4g}, seed={self._seed})"
        )


class AdversarialNoise(WindowedNoise):
    """Worst-case flips within the per-window ε budget.

    Spends the same expected flip budget as Bernoulli(ε) — at most
    ``floor(ε · 4096 · n)`` flips per window — but concentrates it into
    *whole-round bursts*: seeded rounds of the window have every node's
    heard bit inverted at once (plus one partial round for the budget
    remainder).  A fully inverted round maximally perturbs every node's
    heard count simultaneously, which is exactly what the Lemma 9
    threshold test and the phase-2 distance margins average away under
    iid noise — so this channel probes where the decision margins break
    rather than degrade.

    The burst placement is a pure function of ``(seed, window, n)``
    (never of the transmitted bits), so the window contract — and with
    it the bit-identity of every execution path — is preserved.
    """

    def __init__(self, eps: float, seed: int) -> None:
        if not 0.0 < eps < 0.5:
            raise ConfigurationError(
                f"adversarial noise requires eps in (0, 1/2), got {eps} "
                "(use NoiselessChannel for eps = 0)"
            )
        self._eps = eps
        super().__init__(seed)

    @property
    def eps(self) -> float:
        """The per-window flip budget, expressed as the equivalent ε rate."""
        return self._eps

    def _window_flips(self, window: int, n: int) -> np.ndarray:
        """One window of budgeted full-round bursts at seeded positions."""
        block = np.zeros((_WINDOW, n), dtype=bool)
        budget = int(self._eps * _WINDOW * n)
        if budget == 0:
            return block
        rng = self._window_rng(window)
        full, remainder = divmod(budget, n)
        # Seeded burst placement via argsort of uniforms: deterministic
        # given the Philox stream, and eps < 1/2 bounds full below
        # _WINDOW / 2, so there is always room for the partial round.
        round_order = np.argsort(rng.random(_WINDOW), kind="stable")
        block[round_order[:full]] = True
        if remainder:
            node_order = np.argsort(rng.random(n), kind="stable")
            block[round_order[full], node_order[:remainder]] = True
        return block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdversarialNoise(eps={self._eps}, seed={self._seed})"


def unreliable_zone(
    n: int,
    *,
    frac: float,
    eps_hot: float,
    eps_cold: float,
    seed: int,
) -> HeterogeneousNoise:
    """A two-level heterogeneous profile: a seeded hot zone in a cold network.

    ``round(frac * n)`` nodes (at least one, chosen by a seeded
    permutation) hear through ``eps_hot``; every other node hears through
    ``eps_cold``.  The hot-node subset depends only on ``(seed, n)``, so
    the profile is reproducible across processes and backends.
    """
    if not isinstance(n, (int, np.integer)) or isinstance(n, bool) or n < 1:
        raise ConfigurationError(f"unreliable_zone needs n >= 1, got {n!r}")
    if not 0.0 <= frac <= 1.0:
        raise ConfigurationError(
            f"unreliable_zone frac must be in [0, 1], got {frac}"
        )
    for name, value in (("eps_hot", eps_hot), ("eps_cold", eps_cold)):
        if not 0.0 <= value < 0.5:
            raise ConfigurationError(
                f"unreliable_zone {name} must be in [0, 1/2), got {value}"
            )
    hot_count = min(int(n), max(1, int(round(frac * n)))) if frac > 0 else 0
    vector = np.full(int(n), eps_cold, dtype=np.float64)
    if hot_count:
        order = derive_rng(seed, "unreliable-zone", int(n)).permutation(int(n))
        vector[order[:hot_count]] = eps_hot
    return HeterogeneousNoise(vector, seed=seed)


class DynamicTopology:
    """A seeded node-churn / edge-failure schedule over a static topology.

    Rounds are grouped into *epochs* of ``period`` beeping rounds; for
    each epoch a Philox draw keyed by ``(seed, epoch)`` marks a set of
    down nodes (probability ``churn`` each — a down node's radio is off,
    masking every incident edge while the node keeps listening to
    silence) and independently failed edges (probability
    ``edge_failure`` each).  :meth:`topology_at` materialises the masked
    epoch as an ordinary static :class:`~repro.graphs.Topology` (LRU
    cached), which is how the executors consume it: the schedule runner
    segments executions at epoch boundaries and hands each segment a
    static topology, so **no backend ever sees the wrapper** and the
    bit-identity of dense / bit-packed / batched / sharded execution
    extends to dynamic networks for free.

    The mask for round ``t`` depends only on ``(seed, t // period, n)``
    — the window contract again — never on how the surrounding rounds
    are batched.  Node and edge counts, and the degree bound ``Δ``, are
    reported from the *base* topology (masking only removes edges), so
    parameter sizing against the wrapper stays conservative.
    """

    #: Masked epoch topologies kept resident per wrapper.
    _EPOCH_CACHE_LIMIT = 8

    def __init__(
        self,
        base,
        *,
        period: int,
        churn: float = 0.0,
        edge_failure: float = 0.0,
        seed: int = 0,
    ) -> None:
        if isinstance(base, DynamicTopology):
            raise ConfigurationError("DynamicTopology cannot wrap another")
        if (
            not isinstance(period, (int, np.integer))
            or isinstance(period, bool)
            or period < 1
        ):
            raise ConfigurationError(
                f"dynamic topology period must be an int >= 1, got {period!r}"
            )
        for name, value in (("churn", churn), ("edge_failure", edge_failure)):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"dynamic topology {name} must be in [0, 1), got {value}"
                )
        self._base = base
        self._period = int(period)
        self._churn = float(churn)
        self._edge_failure = float(edge_failure)
        self._seed = int(seed)
        key_rng = derive_rng(self._seed, "dynamic-topology-key")
        self._key = key_rng.integers(0, 2**63, size=2, dtype=np.uint64)
        # Canonical sorted (u, v) edge list of the base graph: the fixed
        # order the per-epoch edge-failure draws index into.
        self._edges = np.asarray(
            sorted(tuple(sorted(edge)) for edge in base.graph.edges),
            dtype=np.int64,
        ).reshape(-1, 2)
        self._epoch_cache: LRUDict[int, object] = LRUDict(
            self._EPOCH_CACHE_LIMIT
        )

    @property
    def base(self):
        """The unmasked static :class:`~repro.graphs.Topology`."""
        return self._base

    @property
    def period(self) -> int:
        """Beeping rounds per epoch (one mask draw per epoch)."""
        return self._period

    @property
    def churn(self) -> float:
        """Per-epoch probability that a node's radio is down."""
        return self._churn

    @property
    def edge_failure(self) -> float:
        """Per-epoch probability that an individual edge fails."""
        return self._edge_failure

    @property
    def seed(self) -> int:
        """The seed keying the churn/failure schedule."""
        return self._seed

    @property
    def num_nodes(self) -> int:
        """Node count of the base topology (masking never removes nodes)."""
        return self._base.num_nodes

    @property
    def num_edges(self) -> int:
        """Edge count of the *base* topology (the masked count varies)."""
        return self._base.num_edges

    @property
    def max_degree(self) -> int:
        """Degree bound ``Δ`` of the base topology (an upper bound per epoch)."""
        return self._base.max_degree

    def epoch_of(self, round_index: int) -> int:
        """The epoch containing global beeping round ``round_index``."""
        if round_index < 0:
            raise ConfigurationError(
                f"round_index must be >= 0, got {round_index}"
            )
        return round_index // self._period

    def segments(self, start_round: int, rounds: int):
        """Epoch-aligned ``(start, stop)`` global-round segments of a span.

        Yields consecutive half-open intervals covering
        ``[start_round, start_round + rounds)``, each contained in a
        single epoch — the unit at which the schedule runners swap in
        :meth:`topology_at` masks.
        """
        position = start_round
        end = start_round + rounds
        while position < end:
            boundary = (self.epoch_of(position) + 1) * self._period
            stop = min(boundary, end)
            yield position, stop
            position = stop

    def topology_at(self, round_index: int):
        """The masked static topology active during ``round_index``'s epoch."""
        return self._epoch_topology(self.epoch_of(round_index))

    def _epoch_topology(self, epoch: int):
        """Materialise (and cache) the masked topology of one epoch."""
        cached = self._epoch_cache.get(epoch)
        if cached is not None:
            return cached
        from ..graphs import Topology  # local: avoids a package cycle at import

        import networkx as nx

        n = self.num_nodes
        rng = np.random.Generator(
            np.random.Philox(key=self._key, counter=[0, 0, np.uint64(epoch), 0])
        )
        # Draw order is fixed — nodes first, then edges — so each mask is
        # a pure function of (seed, epoch, n) regardless of the rates.
        node_down = rng.random(n) < self._churn
        edge_down = rng.random(self._edges.shape[0]) < self._edge_failure
        if self._edges.shape[0]:
            keep = ~(
                edge_down
                | node_down[self._edges[:, 0]]
                | node_down[self._edges[:, 1]]
            )
            kept_edges = self._edges[keep]
        else:
            kept_edges = self._edges
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(map(tuple, kept_edges))
        topology = Topology(graph)
        self._epoch_cache[epoch] = topology
        return topology

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicTopology(n={self.num_nodes}, period={self._period}, "
            f"churn={self._churn}, edge_failure={self._edge_failure}, "
            f"seed={self._seed})"
        )


def make_channel(eps: float, seed: int) -> NoiseModel:
    """Build the appropriate channel for a noise rate (0 means noiseless)."""
    if eps == 0.0:
        return NoiselessChannel()
    return BernoulliNoise(eps, seed)


#: Grid-facing noise-model names (the ``zone:`` form is parameterised by
#: its hot-zone fraction, e.g. ``"zone:0.25"``).
_KNOWN_NOISE_MODELS = ("bernoulli", "adversarial", "zone:<frac>")

#: How much hotter the unreliable zone runs than the nominal rate before
#: capping; the cold rate is solved so the mean stays on the ε budget.
_ZONE_HOT_FACTOR = 4.0

#: The hot zone's rate ceiling (strictly below the model's 1/2 bound).
_ZONE_HOT_CAP = 0.45


def noise_model_names() -> tuple[str, ...]:
    """The grid-facing noise-model names, ``zone:`` shown parameterised."""
    return _KNOWN_NOISE_MODELS


def parse_noise_model(name: str) -> tuple:
    """Validate a noise-model name into its parsed ``(kind, ...)`` form.

    Accepts ``"bernoulli"``, ``"adversarial"``, and ``"zone:<frac>"``
    with a fractional hot-zone size in ``(0, 1]``.  Anything else raises
    a one-line :class:`ConfigurationError` listing the known names — the
    sweep CLI surfaces that as its usual exit-2 error.
    """
    known = ", ".join(_KNOWN_NOISE_MODELS)
    if not isinstance(name, str):
        raise ConfigurationError(
            f"noise model must be a string, got {name!r}; known: {known}"
        )
    if name == "bernoulli":
        return ("bernoulli",)
    if name == "adversarial":
        return ("adversarial",)
    if name.startswith("zone:"):
        try:
            frac = float(name[len("zone:") :])
        except ValueError:
            raise ConfigurationError(
                f"unknown noise model {name!r}; known: {known}"
            ) from None
        if not 0.0 < frac <= 1.0:
            raise ConfigurationError(
                f"zone fraction must be in (0, 1], got {frac} in {name!r}"
            )
        return ("zone", frac)
    raise ConfigurationError(f"unknown noise model {name!r}; known: {known}")


def zone_rates(n: int, frac: float, eps: float) -> tuple[int, float, float]:
    """Resolve a zone profile's ``(hot_count, eps_hot, eps_cold)`` for a budget.

    The hot zone runs at ``min(0.45, 4 ε)`` (never below ε, and never
    above ``n ε / hot_count`` — a large zone cannot outspend the
    budget); the cold rate is solved so the *mean* per-node rate never
    exceeds the nominal ε budget — a ``zone:`` channel is a
    redistribution of the same budget, not extra noise.
    """
    hot_count = min(int(n), max(1, int(round(frac * n))))
    eps_hot = max(
        eps,
        min(_ZONE_HOT_CAP, _ZONE_HOT_FACTOR * eps, eps * n / hot_count),
    )
    if hot_count >= n:
        return int(n), eps, eps
    eps_cold = max(0.0, (eps * n - hot_count * eps_hot) / (n - hot_count))
    return hot_count, eps_hot, eps_cold


def make_noise_model(name: str, eps: float, seed: int, n: int) -> NoiseModel:
    """Build a grid point's channel from its ``noise_model`` axis value.

    ``seed`` is the point's *session* seed; the channel seed derives from
    it exactly like :func:`repro.core.round_simulator.make_channel_for`
    does, so ``"bernoulli"`` through this registry is bit-identical to
    the historical default channel.  ``eps == 0`` is the noiseless
    channel for every model name (all models are ε-budget shapes, and a
    zero budget buys zero flips).
    """
    parsed = parse_noise_model(name)
    if eps == 0.0:
        return NoiselessChannel()
    channel_seed = derive_seed(seed, "channel")
    if parsed[0] == "bernoulli":
        return BernoulliNoise(eps, channel_seed)
    if parsed[0] == "adversarial":
        return AdversarialNoise(eps, channel_seed)
    frac = parsed[1]
    _, eps_hot, eps_cold = zone_rates(n, frac, eps)
    return unreliable_zone(
        n, frac=frac, eps_hot=eps_hot, eps_cold=eps_cold, seed=channel_seed
    )
