"""Round-by-round execution engine for the beeping model.

Each round: every device picks BEEP or LISTEN; the engine computes the true
received bit for every device (own beep, else OR of beeping neighbours),
passes it through the noise model, and delivers the heard bit back to the
device.  This is an exact discrete-time implementation of the model in
Section 1.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..engine import SimulationBackend, resolve_backend
from ..errors import ConfigurationError, ProtocolViolationError
from ..graphs import Topology
from .model import Action
from .node import BeepingProtocol
from .noise import NoiseModel, NoiselessChannel

__all__ = ["BeepingNetwork", "ExecutionTrace"]


@dataclass
class ExecutionTrace:
    """Record of a beeping execution, for tests and experiments.

    Attributes
    ----------
    rounds_used:
        Number of rounds executed.
    beeps:
        Boolean ``(n, rounds_used)`` matrix of who beeped when (only kept
        when tracing is enabled).
    heard:
        Boolean ``(n, rounds_used)`` matrix of what each device heard.
    """

    rounds_used: int = 0
    beeps: np.ndarray | None = None
    heard: np.ndarray | None = None
    _capacity: int = field(default=0, repr=False)
    _budget: int = field(default=0, repr=False)

    #: First allocation covers min(budget, this many) rounds; capacity
    #: then doubles on demand, so early-stopped runs with huge budgets
    #: never pay budget-sized peak memory.
    _INITIAL_CAPACITY = 4096

    def _prepare(self, num_nodes: int, max_rounds: int) -> None:
        """Preallocate round-budget matrices, written in place per round.

        One up-front allocation (geometrically grown toward the budget
        when a run actually gets that far) replaces the historical
        per-round column ``.copy()`` accumulation plus the final
        ``np.stack`` (which briefly held the trace twice).
        """
        self._budget = max_rounds
        self._capacity = min(max_rounds, self._INITIAL_CAPACITY)
        self.beeps = np.zeros((num_nodes, self._capacity), dtype=bool)
        self.heard = np.zeros((num_nodes, self._capacity), dtype=bool)

    def _record(self, column: int, beeps: np.ndarray, heard: np.ndarray) -> None:
        assert self.beeps is not None and self.heard is not None
        if column >= self._capacity:
            self._capacity = min(self._budget, 2 * self._capacity)
            grown_beeps = np.zeros((beeps.size, self._capacity), dtype=bool)
            grown_heard = np.zeros((heard.size, self._capacity), dtype=bool)
            grown_beeps[:, :column] = self.beeps[:, :column]
            grown_heard[:, :column] = self.heard[:, :column]
            self.beeps, self.heard = grown_beeps, grown_heard
        self.beeps[:, column] = beeps
        self.heard[:, column] = heard

    def _finalize(self) -> None:
        if self._capacity == 0:
            return
        if self.rounds_used == 0:
            # Tracing was on but no round executed: match the historical
            # "no columns collected" shape.
            self.beeps = None
            self.heard = None
        elif self.rounds_used < self._capacity:
            assert self.beeps is not None and self.heard is not None
            self.beeps = self.beeps[:, : self.rounds_used].copy()
            self.heard = self.heard[:, : self.rounds_used].copy()
        self._capacity = 0
        self._budget = 0


class BeepingNetwork:
    """A beeping network over a fixed topology and noise model.

    ``backend`` selects the carrier-sense implementation for each round
    (name, instance, ``"auto"``, or ``None`` for the process default); all
    backends hear bit-identical rounds.
    """

    def __init__(
        self,
        topology: Topology,
        channel: NoiseModel | None = None,
        backend: str | SimulationBackend | None = None,
    ) -> None:
        self._topology = topology
        self._channel = channel if channel is not None else NoiselessChannel()
        self._backend = resolve_backend(backend, topology=topology)

    @property
    def topology(self) -> Topology:
        """The network topology."""
        return self._topology

    @property
    def channel(self) -> NoiseModel:
        """The noise model applied to heard bits."""
        return self._channel

    @property
    def backend(self) -> SimulationBackend:
        """The carrier-sense backend in force."""
        return self._backend

    def run(
        self,
        protocols: Sequence[BeepingProtocol],
        max_rounds: int,
        start_round: int = 0,
        trace: bool = False,
        stop_when_finished: bool = True,
    ) -> ExecutionTrace:
        """Execute the protocols for up to ``max_rounds`` rounds.

        Parameters
        ----------
        protocols:
            One protocol per node, indexed by node id.
        max_rounds:
            Hard round budget.
        start_round:
            Global round number of the first executed round (keys the noise
            stream, so phases can be chained reproducibly).
        trace:
            Keep full beep/heard matrices in the returned trace.
        stop_when_finished:
            Stop early once every protocol reports ``finished``.
        """
        n = self._topology.num_nodes
        if len(protocols) != n:
            raise ConfigurationError(
                f"got {len(protocols)} protocols for {n} nodes"
            )
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be >= 0, got {max_rounds}")
        trace_record = ExecutionTrace()
        if trace and max_rounds > 0:
            trace_record._prepare(n, max_rounds)
        beeps = np.zeros(n, dtype=bool)
        for local_round in range(max_rounds):
            round_index = start_round + local_round
            if stop_when_finished and all(p.finished for p in protocols):
                break
            beeps[:] = False
            for node, protocol in enumerate(protocols):
                action = protocol.act(round_index)
                if not isinstance(action, Action):
                    raise ProtocolViolationError(
                        f"node {node} returned {action!r}; protocols must "
                        "return Action.BEEP or Action.LISTEN"
                    )
                beeps[node] = action is Action.BEEP
            received = self._backend.neighbor_or(self._topology, beeps) | beeps
            heard = self._channel.apply(received, round_index)
            for node, protocol in enumerate(protocols):
                protocol.observe(round_index, bool(heard[node]))
            if trace:
                trace_record._record(trace_record.rounds_used, beeps, heard)
            trace_record.rounds_used += 1
        trace_record._finalize()
        return trace_record
