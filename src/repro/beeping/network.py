"""Round-by-round execution engine for the beeping model.

Each round: every device picks BEEP or LISTEN; the engine computes the true
received bit for every device (own beep, else OR of beeping neighbours),
passes it through the noise model, and delivers the heard bit back to the
device.  This is an exact discrete-time implementation of the model in
Section 1.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..engine import SimulationBackend, resolve_backend
from ..errors import ConfigurationError, ProtocolViolationError
from ..graphs import Topology
from .model import Action
from .node import BeepingProtocol
from .noise import NoiseModel, NoiselessChannel

__all__ = ["BeepingNetwork", "ExecutionTrace"]


@dataclass
class ExecutionTrace:
    """Record of a beeping execution, for tests and experiments.

    Attributes
    ----------
    rounds_used:
        Number of rounds executed.
    beeps:
        Boolean ``(n, rounds_used)`` matrix of who beeped when (only kept
        when tracing is enabled).
    heard:
        Boolean ``(n, rounds_used)`` matrix of what each device heard.
    """

    rounds_used: int = 0
    beeps: np.ndarray | None = None
    heard: np.ndarray | None = None
    _beep_columns: list[np.ndarray] = field(default_factory=list, repr=False)
    _heard_columns: list[np.ndarray] = field(default_factory=list, repr=False)

    def _record(self, beeps: np.ndarray, heard: np.ndarray) -> None:
        self._beep_columns.append(beeps.copy())
        self._heard_columns.append(heard.copy())

    def _finalize(self) -> None:
        if self._beep_columns:
            self.beeps = np.stack(self._beep_columns, axis=1)
            self.heard = np.stack(self._heard_columns, axis=1)
        self._beep_columns.clear()
        self._heard_columns.clear()


class BeepingNetwork:
    """A beeping network over a fixed topology and noise model.

    ``backend`` selects the carrier-sense implementation for each round
    (name, instance, ``"auto"``, or ``None`` for the process default); all
    backends hear bit-identical rounds.
    """

    def __init__(
        self,
        topology: Topology,
        channel: NoiseModel | None = None,
        backend: str | SimulationBackend | None = None,
    ) -> None:
        self._topology = topology
        self._channel = channel if channel is not None else NoiselessChannel()
        self._backend = resolve_backend(backend, topology=topology)

    @property
    def topology(self) -> Topology:
        """The network topology."""
        return self._topology

    @property
    def channel(self) -> NoiseModel:
        """The noise model applied to heard bits."""
        return self._channel

    @property
    def backend(self) -> SimulationBackend:
        """The carrier-sense backend in force."""
        return self._backend

    def run(
        self,
        protocols: Sequence[BeepingProtocol],
        max_rounds: int,
        start_round: int = 0,
        trace: bool = False,
        stop_when_finished: bool = True,
    ) -> ExecutionTrace:
        """Execute the protocols for up to ``max_rounds`` rounds.

        Parameters
        ----------
        protocols:
            One protocol per node, indexed by node id.
        max_rounds:
            Hard round budget.
        start_round:
            Global round number of the first executed round (keys the noise
            stream, so phases can be chained reproducibly).
        trace:
            Keep full beep/heard matrices in the returned trace.
        stop_when_finished:
            Stop early once every protocol reports ``finished``.
        """
        n = self._topology.num_nodes
        if len(protocols) != n:
            raise ConfigurationError(
                f"got {len(protocols)} protocols for {n} nodes"
            )
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be >= 0, got {max_rounds}")
        trace_record = ExecutionTrace()
        beeps = np.zeros(n, dtype=bool)
        for local_round in range(max_rounds):
            round_index = start_round + local_round
            if stop_when_finished and all(p.finished for p in protocols):
                break
            beeps[:] = False
            for node, protocol in enumerate(protocols):
                action = protocol.act(round_index)
                if not isinstance(action, Action):
                    raise ProtocolViolationError(
                        f"node {node} returned {action!r}; protocols must "
                        "return Action.BEEP or Action.LISTEN"
                    )
                beeps[node] = action is Action.BEEP
            received = self._backend.neighbor_or(self._topology, beeps) | beeps
            heard = self._channel.apply(received, round_index)
            for node, protocol in enumerate(protocols):
                protocol.observe(round_index, bool(heard[node]))
            trace_record.rounds_used += 1
            if trace:
                trace_record._record(beeps, heard)
        trace_record._finalize()
        return trace_record
