"""Native beeping-model maximal independent set.

The paper's concluding discussion (Section 7) contrasts problems solvable
in ``polylog(n)`` beeping rounds — MIS, via Afek et al. [1] — with problems
like maximal matching that require ``poly(Δ)`` factors (Theorem 22).  This
module provides that contrast concretely: an MIS algorithm that runs
*directly* on beeps, no message-passing simulation involved, in
``O(log² n)`` rounds.

The algorithm is a rank-knockout scheme in the spirit of [1]:

Each **phase** uses ``L = rank_bits`` contention rounds plus two
bookkeeping rounds:

1. every undecided node draws a random ``L``-bit rank;
2. for bit ``j = L-1 .. 0``: nodes whose rank has bit ``j`` set (and who
   are still in contention) beep; a silent, in-contention node that hears
   a beep drops out of contention for this phase (a neighbour's rank
   dominates its own);
3. **join round**: nodes still in contention join the MIS and beep;
   undecided listeners that hear the join beep become *covered*;
4. **spacer round**: silence, keeping phases aligned.

Survivors of the knockout are pairwise non-adjacent unless two adjacent
nodes drew identical ranks, which ``L = 4 ceil(log₂ n) + 8`` makes a
``O(n⁻⁶)``-probability event per phase; in the noiseless model the output
is then a valid MIS w.h.p., and each phase decides the local rank maxima,
emptying the graph in ``O(log n)`` phases w.h.p.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..graphs import Topology
from ..rng import derive_rng, random_bits
from .model import Action
from .network import BeepingNetwork
from .node import BeepingProtocol
from .noise import NoiseModel

__all__ = ["BeepingMISProtocol", "BeepingMISResult", "beeping_mis"]


@dataclass(frozen=True)
class BeepingMISResult:
    """Outcome of a native beeping MIS execution.

    Attributes
    ----------
    in_mis:
        Per-node membership (``None`` if the node never decided within the
        round budget — does not happen w.h.p. at the default budget).
    rounds_used:
        Beeping rounds consumed.
    phases_used:
        Knockout phases executed (``O(log n)`` w.h.p.).
    """

    in_mis: list[bool | None]
    rounds_used: int
    phases_used: int


class BeepingMISProtocol(BeepingProtocol):
    """One device of the rank-knockout MIS (see module docstring)."""

    def __init__(self, rank_bits: int, rng) -> None:
        if rank_bits < 1:
            raise ConfigurationError("rank_bits must be >= 1")
        self._rank_bits = rank_bits
        self._rng = rng
        self._phase_length = rank_bits + 2
        self._decided: bool | None = None
        self._rank = 0
        self._in_contention = False

    @property
    def decided(self) -> bool | None:
        """MIS membership once decided, else ``None``."""
        return self._decided

    def act(self, round_index: int) -> Action:
        if self._decided is not None:
            return Action.LISTEN
        position = round_index % self._phase_length
        if position == 0:
            self._rank = random_bits(self._rng, self._rank_bits)
            self._in_contention = True
        if position < self._rank_bits:
            bit = self._rank_bits - 1 - position
            if self._in_contention and (self._rank >> bit) & 1:
                return Action.BEEP
            return Action.LISTEN
        if position == self._rank_bits:  # join round
            if self._in_contention:
                self._decided = True
                return Action.BEEP
            return Action.LISTEN
        return Action.LISTEN  # spacer

    def observe(self, round_index: int, heard: bool) -> None:
        if self._decided is not None:
            return
        position = round_index % self._phase_length
        if position < self._rank_bits:
            bit = self._rank_bits - 1 - position
            own_bit = (self._rank >> bit) & 1
            if self._in_contention and not own_bit and heard:
                self._in_contention = False
        elif position == self._rank_bits:
            if heard:
                # a neighbour joined the MIS this phase
                self._decided = False

    @property
    def finished(self) -> bool:
        return self._decided is not None

    def output(self) -> bool | None:
        return self._decided


def beeping_mis(
    topology: Topology,
    seed: int = 0,
    channel: NoiseModel | None = None,
    rank_bits: int | None = None,
    max_phases: int | None = None,
) -> BeepingMISResult:
    """Compute an MIS directly in the beeping model.

    Parameters
    ----------
    topology:
        The network.
    seed:
        Keys every node's rank draws.
    channel:
        Noise model.  The knockout is a *noiseless-model* algorithm (like
        [1]); pass a channel only to study its degradation.
    rank_bits:
        Rank width ``L`` (default ``4 ceil(log₂ n) + 8``).
    max_phases:
        Phase budget (default ``8 ceil(log₂ n) + 8``).
    """
    n = topology.num_nodes
    if n == 0:
        return BeepingMISResult(in_mis=[], rounds_used=0, phases_used=0)
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    if rank_bits is None:
        rank_bits = 4 * log_n + 8
    if max_phases is None:
        max_phases = 8 * log_n + 8
    protocols = [
        BeepingMISProtocol(rank_bits, derive_rng(seed, "beeping-mis", v))
        for v in range(n)
    ]
    network = BeepingNetwork(topology, channel)
    phase_length = rank_bits + 2
    trace = network.run(
        protocols, max_rounds=max_phases * phase_length, stop_when_finished=True
    )
    phases = math.ceil(trace.rounds_used / phase_length)
    return BeepingMISResult(
        in_mis=[p.output() for p in protocols],
        rounds_used=trace.rounds_used,
        phases_used=phases,
    )
