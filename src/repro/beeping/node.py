"""Protocol interface for devices in the beeping network."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigurationError
from .model import Action

__all__ = ["BeepingProtocol", "ScheduledProtocol"]


class BeepingProtocol(ABC):
    """The behaviour of one device across beeping rounds.

    The engine calls :meth:`act` at the start of each round and
    :meth:`observe` with the heard bit at the end of the round.  Per the
    paper's convention (Section 1.5), a beeping device observes a 1 for its
    own round (possibly flipped by noise); a listening device observes the
    OR of its neighbours' beeps (possibly flipped).
    """

    @abstractmethod
    def act(self, round_index: int) -> Action:
        """Choose to BEEP or LISTEN in the given round."""

    @abstractmethod
    def observe(self, round_index: int, heard: bool) -> None:
        """Receive the bit heard in the given round."""

    @property
    def finished(self) -> bool:
        """Whether the device has terminated (default: never)."""
        return False

    def output(self) -> object:
        """The device's final output (default: ``None``)."""
        return None


class ScheduledProtocol(BeepingProtocol):
    """A device that beeps according to a fixed boolean schedule and records
    everything it hears.

    The workhorse for code-transmission phases: construct with the device's
    beep schedule; after the run, :attr:`heard` holds the observation string.

    ``start_round`` anchors the schedule: global round ``start_round + i``
    executes schedule position ``i`` (the engine passes global round
    numbers, which also key the noise stream).
    """

    def __init__(self, schedule: np.ndarray, start_round: int = 0) -> None:
        schedule = np.asarray(schedule, dtype=bool)
        if schedule.ndim != 1:
            raise ConfigurationError("schedule must be a 1-D boolean array")
        self._schedule = schedule
        self._start_round = start_round
        self._heard = np.zeros(len(schedule), dtype=bool)
        self._observed = 0

    @property
    def schedule(self) -> np.ndarray:
        """The fixed beep schedule (True = beep)."""
        return self._schedule

    @property
    def heard(self) -> np.ndarray:
        """Observations recorded so far (valid up to the last round run)."""
        return self._heard

    def act(self, round_index: int) -> Action:
        position = round_index - self._start_round
        if not 0 <= position < len(self._schedule):
            return Action.LISTEN
        return Action.BEEP if self._schedule[position] else Action.LISTEN

    def observe(self, round_index: int, heard: bool) -> None:
        position = round_index - self._start_round
        if 0 <= position < len(self._heard):
            self._heard[position] = heard
            self._observed = max(self._observed, position + 1)

    @property
    def finished(self) -> bool:
        return self._observed >= len(self._schedule)

    def output(self) -> np.ndarray:
        return self._heard.copy()
