"""The beeping network substrate (Section 1.1 of the paper).

Discrete synchronous rounds; in each round every device either **beeps** or
**listens**.  A listener hears a beep iff at least one neighbour beeped; in
the noisy model the heard bit is flipped independently with probability
``ε ∈ (0, 1/2)``.

Two execution paths with identical semantics (property-tested against each
other):

* :class:`BeepingNetwork` — a general round-by-round engine driving
  arbitrary :class:`BeepingProtocol` objects;
* :func:`run_schedule` — a vectorised executor for *schedule-driven* phases
  (an ``(n, rounds)`` beep matrix in, heard matrix out), which is how the
  code phases of Algorithm 1 run at speed.
"""

from .model import Action, BEEP, LISTEN
from .noise import (
    AdversarialNoise,
    BernoulliNoise,
    DynamicTopology,
    HeterogeneousNoise,
    NoiselessChannel,
    NoiseModel,
    WindowedNoise,
    make_noise_model,
    noise_model_names,
    parse_noise_model,
    unreliable_zone,
)
from .node import BeepingProtocol, ScheduledProtocol
from .network import BeepingNetwork, ExecutionTrace
from .batch import run_schedule, run_schedule_batch
from .primitives import BeepWaveResult, beep_wave_broadcast
from .mis import BeepingMISProtocol, BeepingMISResult, beeping_mis

__all__ = [
    "Action",
    "BEEP",
    "LISTEN",
    "NoiseModel",
    "WindowedNoise",
    "BernoulliNoise",
    "HeterogeneousNoise",
    "AdversarialNoise",
    "DynamicTopology",
    "NoiselessChannel",
    "unreliable_zone",
    "make_noise_model",
    "noise_model_names",
    "parse_noise_model",
    "BeepingProtocol",
    "ScheduledProtocol",
    "BeepingNetwork",
    "ExecutionTrace",
    "run_schedule",
    "run_schedule_batch",
    "BeepWaveResult",
    "beep_wave_broadcast",
    "BeepingMISProtocol",
    "BeepingMISResult",
    "beeping_mis",
]
