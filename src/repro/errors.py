"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single exception type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A parameter set is inconsistent or violates a model constraint.

    Raised, for example, when a noise rate falls outside ``(0, 1/2)``, a code
    length is not divisible as required by Definition 3 of the paper, or a
    graph does not satisfy a generator's preconditions.
    """


class MessageSizeError(ReproError):
    """A CONGEST / Broadcast CONGEST message exceeds the model's bit budget."""


class ProtocolViolationError(ReproError):
    """A distributed algorithm performed an action the model forbids.

    Examples: sending to a non-neighbour in CONGEST, or a beeping protocol
    returning an action other than ``BEEP``/``LISTEN``.
    """


class DecodingError(ReproError):
    """A codeword or superimposition could not be decoded.

    The simulation protocols generally *detect and record* decoding failures
    rather than raising (failures are an expected low-probability event in
    the noisy model); this error is reserved for unrecoverable misuse, such
    as decoding a word of the wrong length.
    """


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class MemoryBudgetError(ReproError):
    """A process exceeded its configured resident-memory budget.

    Raised by :class:`repro.memguard.MemoryGuard` — and re-raised at the
    sharded coordinator when a worker trips its per-worker guard — so a
    run that would otherwise grow until the OS OOM-kills the host fails
    with a clean, catchable error instead.
    """
