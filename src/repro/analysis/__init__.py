"""Theory calculators and measurement helpers for the experiments."""

from .theory import (
    lemma8_failure_bound,
    lemma9_failure_bound,
    lemma10_failure_bound,
    theorem11_failure_bound,
    strict_constraint_table,
)
from .measurement import SuccessStats, measure_round_success, fit_linear_factor

__all__ = [
    "lemma8_failure_bound",
    "lemma9_failure_bound",
    "lemma10_failure_bound",
    "theorem11_failure_bound",
    "strict_constraint_table",
    "SuccessStats",
    "measure_round_success",
    "fit_linear_factor",
]
