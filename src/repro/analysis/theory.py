"""The paper's failure-probability bounds, as computable functions.

These give the "paper-predicted" columns printed next to measured values in
the experiment tables.  All bounds hold under the paper-strict constants
(:func:`repro.core.paper_strict_c`); at practical constants they are
reported for context only.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = [
    "lemma8_failure_bound",
    "lemma9_failure_bound",
    "lemma10_failure_bound",
    "theorem11_failure_bound",
    "strict_constraint_table",
]


def _check(num_nodes: int, c: int, gamma: int) -> None:
    if num_nodes < 2 or c < 3 or gamma < 1:
        raise ConfigurationError("need num_nodes >= 2, c >= 3, gamma >= 1")


def lemma8_failure_bound(num_nodes: int, c: int, gamma: int = 1) -> float:
    """Lemma 8: some codeword 5cγlog n-intersects a neighbourhood
    superimposition with probability at most ``n^{3 - cγ}``."""
    _check(num_nodes, c, gamma)
    return min(1.0, float(num_nodes) ** (3 - c * gamma))


def lemma9_failure_bound(num_nodes: int, c: int, gamma: int = 1) -> float:
    """Lemma 9: some node misdecodes its codeword set (``R̃_v ≠ R_v``)
    with probability at most ``n^{4 - cγ}``."""
    _check(num_nodes, c, gamma)
    return min(1.0, float(num_nodes) ** (4 - c * gamma))


def lemma10_failure_bound(num_nodes: int, c: int, gamma: int = 1) -> float:
    """Lemma 10: some node misdecodes some neighbour message with
    probability at most ``n^{γ + 6 - cγ}``."""
    _check(num_nodes, c, gamma)
    return min(1.0, float(num_nodes) ** (gamma + 6 - c * gamma))


def theorem11_failure_bound(
    num_nodes: int, c: int, rounds: int, gamma: int = 1
) -> float:
    """Theorem 11: a ``T``-round simulated algorithm deviates from its
    Broadcast CONGEST execution with probability at most
    ``T · n^{γ + 6 - cγ}``."""
    if rounds < 0:
        raise ConfigurationError("rounds must be >= 0")
    return min(1.0, rounds * lemma10_failure_bound(num_nodes, c, gamma))


def strict_constraint_table(eps: float) -> list[tuple[str, float]]:
    """Each paper constraint on ``c_ε`` with its value at this ``ε``.

    Mirrors :func:`repro.core.paper_strict_c`; used by experiment tables to
    show *why* the strict constants are impractical.
    """
    if not 0.0 < eps < 0.5:
        raise ConfigurationError(f"eps must be in (0, 1/2), got {eps}")
    one_minus = 1.0 - 2.0 * eps
    return [
        ("Lemma 9: 60/(1-2e)", 60.0 / one_minus),
        ("Lemma 9: 54/((1-2e)^2 e)+5", 54.0 / (one_minus**2 * eps) + 5.0),
        ("Lemma 9: (6/e)(1/(4e)-1/2)^-2", (6.0 / eps) * (1.0 / (4.0 * eps) - 0.5) ** -2),
        ("Lemma 10: 30/(e(1-2e))", 30.0 / (eps * one_minus)),
        (
            "Lemma 10: 6((1-e)(1-2e)/(e(7-2e)))^-2",
            6.0 * ((1.0 - eps) * one_minus / (eps * (7.0 - 2.0 * eps))) ** -2,
        ),
        ("Lemma 6 (distance code): sqrt(108)", math.sqrt(108.0)),
    ]
