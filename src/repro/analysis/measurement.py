"""Measurement helpers: repeated-trial success rates and scaling fits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.parameters import CandidatePolicy, SimulationParameters
from ..core.round_simulator import simulate_broadcast_round
from ..errors import ConfigurationError
from ..graphs import Topology
from ..rng import derive_rng, random_bits

__all__ = ["SuccessStats", "measure_round_success", "fit_linear_factor"]


@dataclass(frozen=True)
class SuccessStats:
    """Aggregated outcome of repeated simulated rounds.

    Attributes
    ----------
    trials:
        Simulated rounds run.
    failures:
        Rounds with at least one misdecoding node.
    phase1_node_errors, phase2_node_errors:
        Summed per-node error counts across trials.
    """

    trials: int
    failures: int
    phase1_node_errors: int
    phase2_node_errors: int

    @property
    def success_rate(self) -> float:
        """Fraction of trials in which every node decoded perfectly."""
        if self.trials == 0:
            return 1.0
        return 1.0 - self.failures / self.trials


def measure_round_success(
    topology: Topology,
    params: SimulationParameters,
    trials: int,
    seed: int = 0,
    policy: CandidatePolicy = CandidatePolicy.ORACLE_WITH_DECOYS,
    num_decoys: int = 16,
) -> SuccessStats:
    """Run ``trials`` independent Algorithm 1 rounds with random messages."""
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    n = topology.num_nodes
    message_rng = derive_rng(seed, "measurement-messages")
    failures = 0
    p1 = 0
    p2 = 0
    codes = params.combined_code(seed)
    for trial in range(trials):
        messages = [
            random_bits(message_rng, params.message_bits) for _ in range(n)
        ]
        outcome = simulate_broadcast_round(
            topology,
            messages,
            params,
            seed=seed,
            round_offset=trial * params.rounds_per_simulated_round,
            policy=policy,
            num_decoys=num_decoys,
            codes=codes,
        )
        failures += 0 if outcome.success else 1
        p1 += outcome.phase1_errors
        p2 += outcome.phase2_errors
    return SuccessStats(
        trials=trials,
        failures=failures,
        phase1_node_errors=p1,
        phase2_node_errors=p2,
    )


def fit_linear_factor(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope through the origin for ``y ≈ slope · x``.

    Used to check measured overheads scale linearly in a predictor (e.g.
    rounds vs ``Δ log n``): after dividing out the fit, residual spread
    should be small if the shape holds.
    """
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if xs_arr.shape != ys_arr.shape or xs_arr.size == 0:
        raise ConfigurationError("need equal-length, non-empty samples")
    denominator = float(np.dot(xs_arr, xs_arr))
    if denominator == 0.0:
        raise ConfigurationError("all-zero predictor")
    return float(np.dot(xs_arr, ys_arr) / denominator)
