"""Per-process resident-memory guard for worker processes.

Sharded workers (and any other long-running worker) hold a slice of a
simulation whose global footprint exceeds one machine: a worker that
silently outgrows its share gets OOM-killed by the kernel, taking the
whole run — and possibly unrelated processes — with it.
:class:`MemoryGuard` turns that failure mode into a clean, catchable
:class:`~repro.errors.MemoryBudgetError`: callers sprinkle
:meth:`MemoryGuard.check` around their big allocations, and the guard
raises as soon as the process's resident set exceeds its budget.

RSS is read from ``/proc/self/status`` (``VmRSS``) where procfs exists,
falling back to ``resource.getrusage`` peak figures elsewhere, so the
guard is dependency-free (no ``psutil``).
"""

from __future__ import annotations

import resource
import sys
from pathlib import Path

from .errors import MemoryBudgetError

__all__ = ["MemoryGuard", "current_rss", "peak_rss"]

_PROC_STATUS = Path("/proc/self/status")


def _proc_status_kib(field: str) -> "int | None":
    """Read one ``kB`` field (e.g. ``VmRSS``) from ``/proc/self/status``."""
    try:
        text = _PROC_STATUS.read_text()
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith(field + ":"):
            parts = line.split()
            if len(parts) >= 2 and parts[1].isdigit():
                return int(parts[1])
    return None


def _maxrss_bytes() -> int:
    """Peak RSS from ``getrusage`` (kibibytes on Linux, bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(peak)
    return int(peak) * 1024


def current_rss() -> int:
    """The process's current resident set size, in bytes.

    Uses ``VmRSS`` from procfs when available; otherwise the best
    portable approximation is the ``getrusage`` high-water mark (an
    over-estimate of *current* use, which only makes the guard stricter).
    """
    kib = _proc_status_kib("VmRSS")
    if kib is not None:
        return kib * 1024
    return _maxrss_bytes()  # pragma: no cover - non-procfs platforms


def peak_rss() -> int:
    """The process's high-water resident set size, in bytes."""
    kib = _proc_status_kib("VmHWM")
    if kib is not None:
        return kib * 1024
    return _maxrss_bytes()  # pragma: no cover - non-procfs platforms


class MemoryGuard:
    """Raises :class:`MemoryBudgetError` once RSS exceeds a byte budget.

    Parameters
    ----------
    budget_bytes:
        The resident-set ceiling for this process.  ``None`` disables
        enforcement (checks still track the observed peak), so callers
        can thread one guard object through unconditionally.
    label:
        Human-readable owner (e.g. ``"shard worker 3"``) included in the
        error message.
    """

    def __init__(self, budget_bytes: "int | None", label: str = "process") -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self._budget = budget_bytes
        self._label = label
        self._observed_peak = 0

    @property
    def budget_bytes(self) -> "int | None":
        """The configured ceiling (``None`` = tracking only)."""
        return self._budget

    @property
    def observed_peak(self) -> int:
        """The largest RSS seen by any :meth:`check` call, in bytes."""
        return self._observed_peak

    def check(self, context: str = "") -> int:
        """Sample RSS, remember the peak, and enforce the budget.

        Returns the sampled RSS in bytes; raises
        :class:`MemoryBudgetError` when it exceeds the budget.  The
        optional ``context`` names the checkpoint (e.g. ``"after halo
        merge"``) so the error pinpoints which allocation tipped over.
        """
        rss = current_rss()
        if rss > self._observed_peak:
            self._observed_peak = rss
        if self._budget is not None and rss > self._budget:
            where = f" {context}" if context else ""
            raise MemoryBudgetError(
                f"{self._label}{where}: resident set "
                f"{rss / 1e6:.1f} MB exceeds the "
                f"{self._budget / 1e6:.1f} MB budget"
            )
        return rss
