"""Batched per-node Philox streams for the vectorized CONGEST runtime.

The reference message-passing engines hand every node a private
:func:`repro.rng.derive_rng` generator and algorithms draw from it with
:func:`repro.rng.random_bits`.  Constructing ``n`` numpy ``Generator``
objects and drawing from them one by one is pure-Python work that
dominates a vectorized round loop, so :class:`NodeStreams` re-implements
exactly that stream — the Philox-4x64-10 keyed construction of
``derive_rng`` plus the byte-consumption discipline of
``Generator.bytes`` — as batched numpy kernels over all nodes at once.

The contract is **bit-identity**: for every node ``v`` and every draw
width, the values produced by :meth:`NodeStreams.draw` equal the values
the reference runtime obtains from
``random_bits(derive_rng(seed, *context, v), bits)``, draw by draw.
That is what lets the vectorized algorithm implementations in
:mod:`repro.algorithms` promise per-seed outputs identical to the
per-node object runtime (see ``tests/test_rng_philox.py``).

Two numpy facts the emulation relies on (pinned by tests):

* ``Generator.bytes(length)`` consumes ``ceil(length / 4)`` 32-bit words
  from the bit generator and truncates the byte string to ``length`` —
  so a 11-byte draw burns 12 bytes of stream;
* Philox yields those words low-half-first from a buffered 4x64-bit
  block whose counter is **pre-incremented** (the first block is
  generated at counter 1).
"""

from __future__ import annotations

import hashlib

import numpy as np

from .lru import LRUDict

__all__ = ["NodeStreams", "words_for_bits"]

#: Memoised Philox key columns, keyed by ``(seed, context, count)``.  The
#: keys are a pure function of that tuple (SHA-256 digests), so caching
#: cannot affect results; it amortises the only per-node Python loop left
#: in vectorized-runtime setup across repeated runs of one experiment.
_KEY_CACHE: LRUDict = LRUDict(limit=8)

_MASK32 = np.uint64(0xFFFFFFFF)
_U32 = np.uint64(32)


def words_for_bits(bits: int) -> int:
    """How many 64-bit words a ``bits``-wide value spans (min 1)."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return (bits + 63) // 64


def _mulhilo64(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """128-bit product of uint64 arrays (broadcasting), split into hi/lo."""
    lo = a * b  # wraps mod 2^64, which is exactly the low half
    a_lo, a_hi = a & _MASK32, a >> _U32
    b_lo, b_hi = b & _MASK32, b >> _U32
    carry = (a_lo * b_lo) >> _U32
    mid1 = a_hi * b_lo
    mid2 = a_lo * b_hi
    cross = carry + (mid1 & _MASK32) + (mid2 & _MASK32)
    hi = a_hi * b_hi + (mid1 >> _U32) + (mid2 >> _U32) + (cross >> _U32)
    return hi, lo


#: Philox-4x64 round multipliers / Weyl key increments (Random123 /
#: numpy's philox.h), as broadcastable lane row pairs.
_M01 = np.array([0xD2E7470EE14C6C93, 0xCA5A826395121157], dtype=np.uint64)
_W01 = np.array([0x9E3779B97F4A7C15, 0xBB67AE8584CAA73B], dtype=np.uint64)


def _philox4x64_10(
    c0: np.ndarray, k0: np.ndarray, k1: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One Philox-4x64-10 block per lane for counters ``(c0, 0, 0, 0)``.

    Only the first counter word varies because the reference streams
    never draw anywhere near ``2^64`` blocks, so the carry words stay 0.
    The state runs as column pairs ``a = (c0, c2)``, ``b = (c1, c3)`` so
    each round is one stacked multiply plus two xors:
    ``a' = mulhi(M, a)[::-1] ^ b ^ keys``, ``b' = mullo(M, a)[::-1]``.
    """
    a = np.zeros((c0.size, 2), dtype=np.uint64)
    a[:, 0] = c0
    b = np.zeros_like(a)
    keys = np.stack((k0, k1), axis=1)
    for round_index in range(10):
        if round_index:
            keys = keys + _W01
        hi, lo = _mulhilo64(_M01, a)
        a = hi[:, ::-1] ^ b ^ keys
        b = lo[:, ::-1]
    return a[:, 0], b[:, 0], a[:, 1], b[:, 1]


class NodeStreams:
    """``count`` per-node byte streams, bit-identical to ``derive_rng``.

    Parameters
    ----------
    seed:
        The master seed the reference engine keys its node streams with.
    count:
        Number of node streams (one per node position).
    context:
        The derivation context; the engines use ``("node-local",)`` so
        stream ``v`` matches ``derive_rng(seed, "node-local", v)``.
    """

    def __init__(self, seed: int, count: int, *context: object) -> None:
        self._count = count
        cache_key = (int(seed), context, count)
        cached = _KEY_CACHE.get(cache_key)
        if cached is None:
            key0 = np.empty(count, dtype=np.uint64)
            key1 = np.empty(count, dtype=np.uint64)
            # Hash the shared (seed, *context) prefix once; per node, clone
            # the hasher and append only the node index — same digests as
            # _context_digest(seed, (*context, index)), far fewer updates.
            prefix = hashlib.sha256()
            prefix.update(int(seed).to_bytes(16, "little", signed=True))
            for part in context:
                encoded = repr(part).encode("utf-8")
                prefix.update(len(encoded).to_bytes(4, "little"))
                prefix.update(encoded)
            for index in range(count):
                encoded = repr(index).encode("utf-8")
                hasher = prefix.copy()
                hasher.update(len(encoded).to_bytes(4, "little"))
                hasher.update(encoded)
                digest = hasher.digest()
                key0[index] = int.from_bytes(digest[:8], "little")
                key1[index] = int.from_bytes(digest[8:16], "little")
            key0.setflags(write=False)
            key1.setflags(write=False)
            _KEY_CACHE[cache_key] = (key0, key1)
            cached = (key0, key1)
        self._key0, self._key1 = cached
        # 32-bit words consumed so far, per stream (Generator.bytes units).
        self._pos = np.zeros(count, dtype=np.int64)

    @property
    def count(self) -> int:
        """Number of independent node streams."""
        return self._count

    def draw(self, nodes: np.ndarray, bits: int) -> np.ndarray:
        """One ``bits``-wide draw per entry of ``nodes``, as uint64 words.

        ``nodes`` must be grouped: all entries for one node consecutive,
        in that node's draw order (the order the reference algorithm
        would call ``random_bits``); repeated nodes advance that node's
        stream once per entry.  Returns a ``(len(nodes), W)`` uint64
        array, word 0 least significant — ``W = words_for_bits(bits)``
        — with the top word masked down to the requested width, exactly
        like :func:`repro.rng.random_bits`.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        width_words = words_for_bits(bits)
        if nodes.size == 0:
            return np.zeros((0, width_words), dtype=np.uint64)
        if nodes.size > 1 and np.any(np.diff(nodes) < 0):
            raise ValueError("draw() requires nodes sorted ascending")
        nbytes = (bits + 7) // 8
        quads = (nbytes + 3) // 4  # 32-bit words consumed per draw
        # Within-node occurrence index -> starting 32-bit word per entry.
        boundary = np.empty(nodes.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = nodes[1:] != nodes[:-1]
        starts = np.flatnonzero(boundary)
        counts = np.diff(np.append(starts, nodes.size))
        occurrence = np.arange(nodes.size) - np.repeat(starts, counts)
        first_word = self._pos[nodes] + quads * occurrence

        with np.errstate(over="ignore"):
            # Global 32-bit word indices needed per entry: (k, quads).
            word32 = first_word[:, None] + np.arange(quads)
            word64 = word32 >> 1
            block = word64 >> 2
            slot = (word64 & 3).astype(np.uint64)
            half = (word32 & 1).astype(np.uint64)
            # One Philox block per distinct (node, block) pair.
            pair = nodes[:, None] * np.int64(int(block.max()) + 1) + block
            unique_pairs, inverse = np.unique(pair, return_inverse=True)
            pair_node = unique_pairs // np.int64(int(block.max()) + 1)
            pair_block = unique_pairs - pair_node * np.int64(int(block.max()) + 1)
            outputs = _philox4x64_10(
                (pair_block + 1).astype(np.uint64),  # counter pre-increments
                self._key0[pair_node],
                self._key1[pair_node],
            )
            stacked = np.stack(outputs, axis=1)  # (pairs, 4) uint64
            lane64 = stacked[inverse.reshape(block.shape), slot]
            lane32 = (lane64 >> (half * _U32)) & _MASK32
            # Truncate the final 32-bit word to the bytes actually kept.
            tail_bytes = nbytes - 4 * (quads - 1)
            if tail_bytes < 4:
                lane32[:, -1] &= np.uint64((1 << (8 * tail_bytes)) - 1)
            # Assemble little-endian words, then mask to the bit width.
            values = np.zeros((nodes.size, width_words), dtype=np.uint64)
            for quad_index in range(quads):
                word_index, shift = divmod(32 * quad_index, 64)
                values[:, word_index] |= lane32[:, quad_index] << np.uint64(shift)
                if shift and word_index + 1 < width_words:
                    values[:, word_index + 1] |= lane32[:, quad_index] >> _U32
            top_bits = bits - 64 * (width_words - 1)
            if top_bits < 64:
                values[:, -1] &= np.uint64((1 << top_bits) - 1)
        unique_nodes = nodes[starts]
        self._pos[unique_nodes] += quads * counts
        return values
