"""Minimal Reed–Solomon codes over prime fields GF(p).

Substrate for the Kautz–Singleton superimposed-code construction
(:mod:`repro.codes.superimposed`).  A message of ``m`` field symbols is the
coefficient vector of a degree ``< m`` polynomial, and its codeword is the
polynomial's evaluations at all ``p`` field points.  Two distinct messages
agree on at most ``m - 1`` evaluation points — the property Kautz–Singleton
relies on.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = ["ReedSolomonCode", "is_prime", "next_prime"]


def is_prime(value: int) -> bool:
    """Trial-division primality test (sufficient for the field sizes used)."""
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def next_prime(value: int) -> int:
    """Smallest prime ``>= value``."""
    candidate = max(2, value)
    while not is_prime(candidate):
        candidate += 1
    return candidate


class ReedSolomonCode:
    """A full-length Reed–Solomon code over GF(p).

    Parameters
    ----------
    field_size:
        A prime ``p``; the code has length ``p`` and alphabet ``[p]``.
    message_symbols:
        Number of message symbols ``m`` (``1 <= m <= p``); minimum distance
        is ``p - m + 1``.
    """

    def __init__(self, field_size: int, message_symbols: int) -> None:
        if not is_prime(field_size):
            raise ConfigurationError(f"field size must be prime, got {field_size}")
        if not 1 <= message_symbols <= field_size:
            raise ConfigurationError(
                f"message_symbols must be in [1, {field_size}], got {message_symbols}"
            )
        self._p = field_size
        self._m = message_symbols

    @property
    def field_size(self) -> int:
        """The field prime ``p`` (also the codeword length)."""
        return self._p

    @property
    def message_symbols(self) -> int:
        """Number of message symbols ``m``."""
        return self._m

    @property
    def min_distance(self) -> int:
        """Singleton-achieving minimum distance ``p - m + 1``."""
        return self._p - self._m + 1

    @property
    def num_messages(self) -> int:
        """Number of encodable messages ``p^m``."""
        return self._p**self._m

    def int_to_symbols(self, value: int) -> list[int]:
        """Write an integer in base ``p`` as ``m`` symbols (little-endian)."""
        if not 0 <= value < self.num_messages:
            raise ConfigurationError(
                f"message {value} outside [0, p^m) = [0, {self.num_messages})"
            )
        symbols = []
        for _ in range(self._m):
            symbols.append(value % self._p)
            value //= self._p
        return symbols

    def encode_symbols(self, symbols: list[int]) -> list[int]:
        """Evaluate the message polynomial at all field points."""
        if len(symbols) != self._m:
            raise ConfigurationError(
                f"expected {self._m} message symbols, got {len(symbols)}"
            )
        if any(not 0 <= s < self._p for s in symbols):
            raise ConfigurationError("message symbols must lie in [0, p)")
        codeword = []
        for point in range(self._p):
            # Horner evaluation of sum(symbols[i] * x^i) at x = point.
            accumulator = 0
            for coefficient in reversed(symbols):
                accumulator = (accumulator * point + coefficient) % self._p
            codeword.append(accumulator)
        return codeword

    def encode_int(self, value: int) -> list[int]:
        """Encode an integer message into its ``p`` evaluation symbols."""
        return self.encode_symbols(self.int_to_symbols(value))

    @staticmethod
    def bits_capacity(field_size: int, message_symbols: int) -> int:
        """Number of whole input bits representable by ``m`` base-``p`` symbols."""
        return math.floor(message_symbols * math.log2(field_size))
