"""Classical ``(a, k)``-superimposed codes (Definition 1) via Kautz–Singleton.

The construction of Kautz and Singleton [23]: concatenate a Reed–Solomon
outer code over GF(p) with the one-hot (identity) inner code.  Each RS
symbol becomes ``p`` bits with a single one, so a codeword has length ``p²``
and weight ``p``.  Two distinct codewords share at most ``m - 1``
one-positions (RS agreement bound), hence a union of ``k`` codewords covers
at most ``k (m - 1) < p`` ones of any other codeword: the code is
``k``-superimposed whenever ``p > k (m - 1)``.

This is the baseline the paper argues is too long for message passing:
its length is ``O(k² a)`` versus the beep code's ``O(c² k a)`` with the
weaker most-subsets-decodable guarantee (Section 1.4).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Sequence

import numpy as np

from .. import bitstrings
from ..bitstrings import BitString
from ..errors import ConfigurationError
from .base import Code
from .reed_solomon import ReedSolomonCode, next_prime

__all__ = ["KautzSingletonCode", "is_k_superimposed"]


def _choose_parameters(input_bits: int, k: int) -> tuple[int, int]:
    """Find a field prime ``p`` and symbol count ``m`` satisfying
    ``p^m >= 2^a`` and ``p > k (m - 1)`` with small ``p²``.

    The two constraints are circular (``m`` shrinks as ``p`` grows), so we
    iterate ``p`` upward and take the first feasible pair.
    """
    p = next_prime(max(2, k + 1))
    while True:
        m = max(1, math.ceil(input_bits / math.log2(p)))
        if ReedSolomonCode.bits_capacity(p, m) < input_bits:
            m += 1
        if p > k * (m - 1):
            return p, m
        p = next_prime(p + 1)


class KautzSingletonCode(Code):
    """A deterministic ``(a, k)``-superimposed code of length ``p²``.

    Any union of at most ``k`` codewords uniquely identifies its members;
    decoding is by the standard cover test (a codeword is present iff all
    its ones appear in the union).
    """

    def __init__(self, input_bits: int, k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self._k = k
        p, m = _choose_parameters(input_bits, k)
        self._rs = ReedSolomonCode(p, m)
        super().__init__(input_bits, p * p)

    @property
    def k(self) -> int:
        """Superimposition size the code tolerates."""
        return self._k

    @property
    def field_size(self) -> int:
        """The outer Reed–Solomon field prime ``p``."""
        return self._rs.field_size

    @property
    def message_symbols(self) -> int:
        """The outer Reed–Solomon message length ``m``."""
        return self._rs.message_symbols

    @property
    def weight(self) -> int:
        """Every codeword has exactly ``p`` ones (one per RS position)."""
        return self._rs.field_size

    def encode_int(self, value: int) -> BitString:
        """One-hot-concatenate the RS codeword of ``value``."""
        self._check_value(value)
        cached = self._cache_lookup(value)
        if cached is None:
            p = self._rs.field_size
            symbols = self._rs.encode_int(value)
            word = np.zeros(p * p, dtype=bool)
            for position, symbol in enumerate(symbols):
                word[position * p + symbol] = True
            cached = word
            self._cache_store(value, cached)
        return cached.copy()

    def decode_union(
        self, union: BitString, candidates: Iterable[int] | None = None
    ) -> set[int]:
        """Cover-test decoding of a (noiseless) union of codewords.

        Returns every candidate whose codeword is entirely contained in the
        union.  For unions of at most ``k`` codewords the result is exactly
        the encoded set.
        """
        self._check_word(union)
        if candidates is None:
            candidates = range(self.num_codewords)
        missing = bitstrings.complement(union)
        return {
            value
            for value in candidates
            if bitstrings.intersection_weight(self.encode_int(value), missing) == 0
        }


def is_k_superimposed(code: Code, k: int, messages: Sequence[int] | None = None) -> bool:
    """Exhaustively verify Definition 1 on (a subset of) a code's domain.

    Checks that no union of ``k`` codewords covers a codeword outside the
    union.  Cost is ``O(|messages|^{k+1})`` — intended for the small
    parameters used in tests and experiment E14.
    """
    if messages is None:
        messages = list(range(code.num_codewords))
    words = {m: code.encode_int(m) for m in messages}
    for subset in itertools.combinations(messages, min(k, len(messages))):
        union = bitstrings.superimpose([words[m] for m in subset])
        missing = bitstrings.complement(union)
        for other in messages:
            if other in subset:
                continue
            if bitstrings.intersection_weight(words[other], missing) == 0:
                return False
    return True
