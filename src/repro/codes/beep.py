"""``(a, k, δ)``-beep codes (Definition 3, Theorem 4).

The paper's novel relaxation of superimposed codes: all codewords have
weight exactly ``δb/k``, and *most* (a ``1 - 2^{-2a}`` fraction of) size-k
codeword subsets have a superimposition that does not ``5δ²b/k``-intersect
any other codeword.  Theorem 4 realises this with ``δ = 1/c`` and length
``b = c²ka``, giving codeword weight ``ca`` and intersection threshold
``5a``.

Construction (exactly the theorem's): each codeword is drawn uniformly from
the ``b``-bit strings of weight ``b/(ck)``, keyed by ``(seed, input)``, so
the code is shared by all nodes without communication and no ``2^a`` table
is ever materialised.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .. import bitstrings
from ..bitstrings import BitString
from ..errors import ConfigurationError
from ..rng import derive_rng
from .base import Code

__all__ = ["BeepCode"]


class BeepCode(Code):
    """A random ``(a, k, 1/c)``-beep code of length ``b = c²ka``.

    Parameters
    ----------
    input_bits:
        Input size ``a``.
    k:
        Superimposition size the code must tolerate (``Δ + 1`` in the
        simulation algorithm).
    c:
        The inverse-density parameter (``c = c_ε`` in the paper).  Must be
        ``>= 3``: Theorem 4 notes the property is vacuous for ``c <= 2``.
    seed:
        Keys the code.
    length:
        Override the codeword length ``b`` (defaults to the theorem's
        ``c²ka``).  Must keep ``weight = b/(ck)`` integral.
    """

    #: Refuse to build codes whose codewords would not fit in memory —
    #: the tell-tale of paper-strict constants reaching execution paths.
    MAX_MATERIALIZED_LENGTH = 1 << 27

    def __init__(
        self,
        input_bits: int,
        k: int,
        c: int,
        seed: int = 0,
        length: int | None = None,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if c < 3:
            raise ConfigurationError(
                f"c must be >= 3 (beep codes are vacuous for c <= 2), got {c}"
            )
        if length is None:
            length = c * c * k * input_bits
        if length % (c * k) != 0:
            raise ConfigurationError(
                f"length {length} must be divisible by c*k = {c * k} so the "
                "codeword weight delta*b/k is an integer (Definition 3)"
            )
        if length > self.MAX_MATERIALIZED_LENGTH:
            raise ConfigurationError(
                f"beep code length {length} exceeds the materialisation "
                f"limit {self.MAX_MATERIALIZED_LENGTH}; this typically means "
                "paper-strict constants were used for execution - they are "
                "for analysis only (use practical presets to run, see "
                "DESIGN.md 2.1)"
            )
        super().__init__(input_bits, length)
        self._k = k
        self._c = c
        self._seed = seed

    @property
    def k(self) -> int:
        """Superimposition size the code targets."""
        return self._k

    @property
    def c(self) -> int:
        """Inverse density parameter ``c`` (so ``δ = 1/c``)."""
        return self._c

    @property
    def delta(self) -> float:
        """Code density ``δ = 1/c``."""
        return 1.0 / self._c

    @property
    def weight(self) -> int:
        """Codeword weight ``δb/k = b/(ck)`` — every codeword has exactly
        this many ones (first property of Definition 3)."""
        return self.length // (self._c * self._k)

    @property
    def intersection_threshold(self) -> int:
        """The decodability threshold ``5δ²b/k = 5b/(c²k)`` of Definition 3.

        At the theorem's length ``b = c²ka`` this is exactly ``5a``.
        """
        return (5 * self.length) // (self._c * self._c * self._k)

    @property
    def seed(self) -> int:
        """The seed keying this code."""
        return self._seed

    def encode_int(self, value: int) -> BitString:
        """Return ``C(value)``: a uniform constant-weight string keyed by input."""
        self._check_value(value)
        cached = self._cache_lookup(value)
        if cached is None:
            rng = derive_rng(self._seed, "beep-code", self.length, self.weight, value)
            cached = bitstrings.random_constant_weight(rng, self.length, self.weight)
            self._cache_store(value, cached)
        return cached.copy()

    def noiseless_membership_test(self, value: int, heard: BitString) -> bool:
        """Whether codeword ``value`` is consistent with a noiseless
        superimposition ``heard``: every one of ``C(value)`` appears in
        ``heard``."""
        self._check_word(heard)
        word = self.encode_int(value)
        return bitstrings.intersection_weight(word, bitstrings.complement(heard)) == 0

    def membership_statistic(self, value: int, heard: BitString) -> int:
        """The Lemma 9 test statistic: ``1(C(value) ∧ ¬heard)``.

        The number of positions where the codeword has a one but the heard
        string does not.  Small values indicate the codeword is present in
        the (possibly noisy) superimposition.
        """
        self._check_word(heard)
        word = self.encode_int(value)
        return bitstrings.intersection_weight(word, bitstrings.complement(heard))

    def decoding_threshold(self, eps: float) -> int:
        """The acceptance threshold of Lemma 9: ``(2ε+1)/4 · weight``.

        A candidate ``r`` is decoded as present iff its membership statistic
        is strictly below this threshold.  At ``ε = 0`` the threshold is a
        quarter of the codeword weight, which also subsumes the noiseless
        test (true codewords have statistic 0, absent ones at least
        ``weight - intersection_threshold``).
        """
        if not 0.0 <= eps < 0.5:
            raise ConfigurationError(f"eps must be in [0, 1/2), got {eps}")
        return math.floor((2.0 * eps + 1.0) / 4.0 * self.weight)

    def decode_superimposition(
        self,
        heard: BitString,
        eps: float = 0.0,
        candidates: Iterable[int] | None = None,
    ) -> set[int]:
        """Decode the set of codeword inputs present in ``heard``.

        Implements the paper's Section 4 rule: include every candidate ``r``
        whose codeword does **not** ``(2ε+1)/4 · c²γlog n``-intersect
        ``¬heard``.  ``candidates`` defaults to the full domain
        (exponential; use explicit candidate sets at scale — the
        accept/reject test per candidate is identical either way).
        """
        self._check_word(heard)
        if candidates is None:
            candidates = range(self.num_codewords)
        threshold = self.decoding_threshold(eps)
        not_heard = bitstrings.complement(heard)
        decoded: set[int] = set()
        for value in candidates:
            word = self.encode_int(value)
            if bitstrings.intersection_weight(word, not_heard) < threshold:
                decoded.add(value)
        return decoded

    def failure_fraction_bound(self) -> float:
        """Definition 3's bound on the fraction of size-k subsets whose
        superimposition intersects another codeword: ``2^{-2a}``."""
        return 2.0 ** (-2 * self.input_bits)

    def count_bad_subsets(
        self, subsets: Sequence[Sequence[int]], others: Sequence[int] | None = None
    ) -> int:
        """Count how many of the given size-k subsets are *bad*: their
        superimposition ``5δ²b/k``-intersects some codeword outside the
        subset.

        ``others`` restricts which outside codewords are checked (defaults
        to the full domain; exponential in ``a``).  Used by the E2
        experiment to measure the Definition 3 fraction empirically.
        """
        domain: Sequence[int]
        if others is None:
            domain = range(self.num_codewords)
        else:
            domain = others
        threshold = self.intersection_threshold
        bad = 0
        for subset in subsets:
            if len(subset) != self._k:
                raise ConfigurationError(
                    f"subset size {len(subset)} != k = {self._k}"
                )
            union = bitstrings.superimpose(
                [self.encode_int(value) for value in subset]
            )
            subset_set = set(subset)
            for value in domain:
                if value in subset_set:
                    continue
                if bitstrings.d_intersects(
                    self.encode_int(value), union, threshold
                ):
                    bad += 1
                    break
        return bad

    def encode_many(self, values: Sequence[int]) -> np.ndarray:
        """Stack codewords for ``values`` into a ``(len(values), b)`` matrix."""
        if not values:
            return np.zeros((0, self.length), dtype=bool)
        return np.stack([self.encode_int(value) for value in values])
