"""Common interface for binary codes ``C : {0,1}^a → {0,1}^b``."""

from __future__ import annotations

from abc import ABC, abstractmethod

from .. import bitstrings
from ..bitstrings import BitString
from ..errors import ConfigurationError
from ..lru import LRUDict

__all__ = ["Code"]


class Code(ABC):
    """A binary code mapping ``a``-bit inputs to ``b``-bit codewords.

    Subclasses implement :meth:`encode_int`; encoding of bit strings and
    bounds checking are provided here.  Codes in this library are *pure
    functions of (parameters, seed, input)*: two instances constructed with
    equal parameters produce identical codewords, which is how all nodes of
    a network share a code without communication.
    """

    #: Maximum lazily-generated codewords kept in memory.  The simulation
    #: draws fresh random inputs every round, so an unbounded cache would
    #: grow with the execution; when the limit is hit the least-recently
    #: used entries are evicted (regeneration is cheap and deterministic,
    #: but hot codewords — candidates re-scanned every round — stay
    #: resident).
    CACHE_LIMIT = 4096

    def __init__(self, input_bits: int, length: int) -> None:
        if input_bits < 1:
            raise ConfigurationError(f"input_bits must be >= 1, got {input_bits}")
        if length < 1:
            raise ConfigurationError(f"code length must be >= 1, got {length}")
        self._input_bits = input_bits
        self._length = length
        self._cache: LRUDict[int, BitString] = LRUDict(self.CACHE_LIMIT)

    def _cache_lookup(self, value: int) -> BitString | None:
        """Fetch a cached codeword, refreshing its LRU recency on hit."""
        return self._cache.get(value)

    def _cache_store(self, value: int, word: BitString) -> None:
        """Insert a codeword, evicting least-recently-used entries at the limit."""
        if self._cache.limit != self.CACHE_LIMIT:
            # CACHE_LIMIT is occasionally overridden per instance (tests,
            # memory-constrained callers); honour the live value.
            self._cache.limit = self.CACHE_LIMIT
        self._cache[value] = word

    @property
    def input_bits(self) -> int:
        """Number of input bits ``a``."""
        return self._input_bits

    @property
    def length(self) -> int:
        """Codeword length ``b``."""
        return self._length

    @property
    def num_codewords(self) -> int:
        """Size of the code's domain, ``2^a``."""
        return 1 << self._input_bits

    @abstractmethod
    def encode_int(self, value: int) -> BitString:
        """Return the codeword for the input interpreted as an integer."""

    def encode(self, bits: BitString) -> BitString:
        """Return the codeword for an ``a``-bit input string."""
        if len(bits) != self._input_bits:
            raise ConfigurationError(
                f"input has {len(bits)} bits, code expects {self._input_bits}"
            )
        return self.encode_int(bitstrings.to_int(bits))

    def _check_value(self, value: int) -> None:
        if not 0 <= value < self.num_codewords:
            raise ConfigurationError(
                f"input value {value} outside [0, 2^{self._input_bits})"
            )

    def _check_word(self, word: BitString) -> None:
        if len(word) != self._length:
            raise ConfigurationError(
                f"word has {len(word)} bits, code length is {self._length}"
            )
