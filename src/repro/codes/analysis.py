"""Analytic length formulas for superimposed-type codes (Section 1.4).

Reproduces the quantitative comparison the paper draws between classical
superimposed codes and its beep codes: Kautz–Singleton needs ``O(k² a)``
bits, the D'yachkov–Rykov lower bound says ``Ω(k² a / log k)`` is necessary
for the strict property, while beep codes achieve ``c² k a`` by weakening
the requirement to most-random-subsets-decodable.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = [
    "kautz_singleton_length",
    "dyachkov_rykov_lower_bound",
    "beep_code_length",
]


def kautz_singleton_length(input_bits: int, k: int) -> int:
    """Length of the Kautz–Singleton ``(a, k)``-superimposed code, ``Θ(k²a)``.

    Computed from the actual construction (smallest feasible RS field), not
    an asymptotic formula, so it matches :class:`KautzSingletonCode.length`.
    """
    from .superimposed import _choose_parameters

    if input_bits < 1 or k < 1:
        raise ConfigurationError("input_bits and k must be >= 1")
    p, _ = _choose_parameters(input_bits, k)
    return p * p


def dyachkov_rykov_lower_bound(input_bits: int, k: int) -> float:
    """The ``Ω(k² a / log k)`` lower bound on strict superimposed codes [14].

    Returned as ``k² a / log₂(max(k, 2))`` — the bound's leading term with
    constant 1, suitable for plotting the gap the paper describes.
    """
    if input_bits < 1 or k < 1:
        raise ConfigurationError("input_bits and k must be >= 1")
    return k * k * input_bits / math.log2(max(k, 2))


def beep_code_length(input_bits: int, k: int, c: int) -> int:
    """Length ``b = c²ka`` of the Theorem 4 beep code."""
    if input_bits < 1 or k < 1:
        raise ConfigurationError("input_bits and k must be >= 1")
    if c < 3:
        raise ConfigurationError(f"c must be >= 3, got {c}")
    return c * c * k * input_bits
