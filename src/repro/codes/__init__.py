"""Binary codes from Section 2 of the paper, plus classical baselines.

* :class:`BeepCode` — the novel ``(a, k, δ)``-beep codes of Definition 3 /
  Theorem 4: random constant-weight codes whose random size-``k``
  superimpositions are decodable with high probability.
* :class:`DistanceCode` — the ``(a, δ)``-distance codes of Definition 5 /
  Lemma 6 (random error-correcting codes).
* :class:`CombinedCode` — the combined code ``CD(r, m)`` of Notation 7 /
  Figure 1, writing a distance codeword into the one-positions of a beep
  codeword.
* :class:`KautzSingletonCode` — the classical ``(a, k)``-superimposed codes
  of Definition 1 (Kautz–Singleton, via Reed–Solomon), the baseline whose
  ``O(k²a)`` length motivates the paper's weaker beep-code requirement.
"""

from .base import Code
from .distance import DistanceCode, minimum_pairwise_distance, paper_c_delta
from .beep import BeepCode
from .combined import CombinedCode
from .superimposed import KautzSingletonCode, is_k_superimposed
from .reed_solomon import ReedSolomonCode, is_prime, next_prime
from .analysis import (
    beep_code_length,
    dyachkov_rykov_lower_bound,
    kautz_singleton_length,
)

__all__ = [
    "Code",
    "DistanceCode",
    "minimum_pairwise_distance",
    "paper_c_delta",
    "BeepCode",
    "CombinedCode",
    "KautzSingletonCode",
    "is_k_superimposed",
    "ReedSolomonCode",
    "is_prime",
    "next_prime",
    "beep_code_length",
    "dyachkov_rykov_lower_bound",
    "kautz_singleton_length",
]
