"""``(a, δ)``-distance codes (Definition 5, Lemma 6).

A distance code of length ``b`` maps ``a``-bit inputs to ``b``-bit codewords
such that every pair of distinct codewords has Hamming distance at least
``δb``.  Lemma 6 shows random codes achieve this with high probability when
``b = c_δ a`` for ``c_δ ≥ 12 (1 - 2δ)^{-2}``.

Codewords are generated lazily: codeword ``D(m)`` is a uniformly random
``b``-bit string keyed by ``(seed, m)``, exactly the random construction of
the lemma's proof, without materialising all ``2^a`` codewords.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .. import bitstrings
from ..bitstrings import BitString
from ..errors import ConfigurationError
from ..rng import derive_rng
from .base import Code

__all__ = ["DistanceCode", "paper_c_delta", "minimum_pairwise_distance"]


def paper_c_delta(delta: float) -> float:
    """The paper-strict length multiplier ``c_δ = 12 (1 - 2δ)^{-2}`` of Lemma 6."""
    if not 0.0 < delta < 0.5:
        raise ConfigurationError(f"delta must be in (0, 1/2), got {delta}")
    return 12.0 / (1.0 - 2.0 * delta) ** 2


class DistanceCode(Code):
    """A random ``(a, δ)``-distance code.

    Parameters
    ----------
    input_bits:
        Input size ``a``.
    delta:
        Target relative minimum distance ``δ ∈ (0, 1/2)``.
    length:
        Codeword length ``b``.  If omitted, the paper-strict
        ``b = ceil(c_δ a)`` from Lemma 6 is used.
    seed:
        Keys the code; equal seeds give identical codes everywhere.
    """

    def __init__(
        self,
        input_bits: int,
        delta: float,
        length: int | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 < delta < 0.5:
            raise ConfigurationError(f"delta must be in (0, 1/2), got {delta}")
        if length is None:
            length = math.ceil(paper_c_delta(delta) * input_bits)
        super().__init__(input_bits, length)
        self._delta = delta
        self._seed = seed

    @property
    def delta(self) -> float:
        """Target relative minimum distance ``δ``."""
        return self._delta

    @property
    def min_distance(self) -> int:
        """The guaranteed pairwise distance ``δb`` (floored)."""
        return math.floor(self._delta * self.length)

    @property
    def seed(self) -> int:
        """The seed keying this code."""
        return self._seed

    def encode_int(self, value: int) -> BitString:
        """Return ``D(value)``: a uniform random string keyed by the input."""
        self._check_value(value)
        cached = self._cache_lookup(value)
        if cached is None:
            rng = derive_rng(self._seed, "distance-code", self.length, value)
            cached = bitstrings.random_bitstring(rng, self.length)
            self._cache_store(value, cached)
        return cached.copy()

    def decode_nearest(
        self, word: BitString, candidates: Iterable[int] | None = None
    ) -> tuple[int, int]:
        """Nearest-codeword decoding (the rule of Lemma 10).

        Returns ``(message, distance)`` for the candidate message whose
        codeword minimises Hamming distance to ``word``.  Ties break toward
        the smaller message value, making decoding deterministic.

        ``candidates`` defaults to the full domain ``[0, 2^a)`` — exhaustive
        decoding exactly as the paper describes, exponential in ``a``; pass
        an explicit candidate set for large codes (see DESIGN.md §2.2).
        """
        self._check_word(word)
        if candidates is None:
            candidates = range(self.num_codewords)
        best_message = -1
        best_distance = self.length + 1
        for message in candidates:
            distance = bitstrings.hamming(self.encode_int(message), word)
            if distance < best_distance or (
                distance == best_distance and message < best_message
            ):
                best_message = message
                best_distance = distance
        if best_message < 0:
            raise ConfigurationError("decode_nearest needs at least one candidate")
        return best_message, best_distance

    def failure_probability_bound(self) -> float:
        """Lemma 6's bound on the probability the random code is *not* an
        ``(a, δ)``-distance code: ``2^{-2a}`` when ``b ≥ c_δ a``."""
        exponent = -((1.0 - 2.0 * self._delta) ** 2) * self.length / 4.0
        per_pair = math.exp(exponent)
        pairs = 2.0 ** (2 * self.input_bits)
        return min(1.0, pairs * per_pair)


def minimum_pairwise_distance(
    code: Code, messages: Sequence[int] | None = None
) -> int:
    """Measure the minimum pairwise Hamming distance over given messages.

    ``messages`` defaults to the full domain (exponential in ``a``; intended
    for the small codes used in tests and the E3 experiment).
    """
    if messages is None:
        messages = list(range(code.num_codewords))
    words = [code.encode_int(m) for m in messages]
    if len(words) < 2:
        raise ConfigurationError("need at least two codewords to measure distance")
    stacked = np.stack(words)
    best = code.length
    for index in range(len(words) - 1):
        distances = np.count_nonzero(stacked[index + 1 :] != stacked[index], axis=1)
        best = min(best, int(distances.min()))
    return best
