"""The combined code ``CD(r, m)`` (Notation 7, Figure 1).

``CD(r, m)`` writes the distance codeword ``D(m)`` into the positions where
the beep codeword ``C(r)`` has ones, leaving every other position zero:

    CD(r, m)_j = D(m)_i   if j is the i-th one-position of C(r),
                 0        otherwise.

For this to be well defined the distance code's length must equal the beep
code's codeword weight — in the paper both are ``c_ε² γ log n``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import bitstrings
from ..bitstrings import BitString
from ..errors import ConfigurationError
from .beep import BeepCode
from .distance import DistanceCode

__all__ = ["CombinedCode"]


@dataclass(frozen=True)
class CombinedCode:
    """The combined code built from a beep code and a distance code.

    Attributes
    ----------
    beep_code:
        The ``(a, k, 1/c)``-beep code ``C`` carrying the random slot pattern.
    distance_code:
        The ``(a', δ)``-distance code ``D`` carrying the actual message.
    """

    beep_code: BeepCode
    distance_code: DistanceCode

    def __post_init__(self) -> None:
        if self.distance_code.length != self.beep_code.weight:
            raise ConfigurationError(
                "distance code length must equal beep codeword weight "
                f"({self.distance_code.length} != {self.beep_code.weight}); "
                "the distance codeword is written bit-for-bit into the beep "
                "codeword's one-positions (Notation 7)"
            )

    @property
    def length(self) -> int:
        """Length of combined codewords (equals the beep code's length)."""
        return self.beep_code.length

    def encode(self, r: int, message: int) -> BitString:
        """Return ``CD(r, message)``."""
        slots = self.beep_code.encode_int(r)
        payload = self.distance_code.encode_int(message)
        out = np.zeros(self.length, dtype=bool)
        out[bitstrings.ones_positions(slots)] = payload
        return out

    def extract(self, heard: BitString, r: int) -> BitString:
        """Extract the payload subsequence ``y_{v,w}`` for slot pattern ``r``.

        Reads ``heard`` at the one-positions of ``C(r)`` (Section 4); the
        result has the distance code's length and can be decoded with
        :meth:`DistanceCode.decode_nearest`.
        """
        if len(heard) != self.length:
            raise ConfigurationError(
                f"heard string has {len(heard)} bits, expected {self.length}"
            )
        slots = self.beep_code.encode_int(r)
        return bitstrings.subsequence_at(heard, bitstrings.ones_positions(slots))

    def layout(self, r: int, message: int) -> str:
        """Render the Figure 1 construction as text (used by experiment E1).

        Three aligned rows: the beep codeword ``C(r)``, the distance
        codeword ``D(m)`` spread over the one-positions, and the combined
        codeword ``CD(r, m)``.
        """
        slots = self.beep_code.encode_int(r)
        payload = self.distance_code.encode_int(message)
        combined = self.encode(r, message)
        spread = []
        payload_index = 0
        for bit in slots:
            if bit:
                spread.append("1" if payload[payload_index] else "0")
                payload_index += 1
            else:
                spread.append(".")
        return "\n".join(
            [
                "C(r)    : " + bitstrings.to_01_string(slots),
                "D(m)    : " + "".join(spread),
                "CD(r,m) : " + bitstrings.to_01_string(combined),
            ]
        )
