"""Job specifications: what a service job runs, validated at submit time.

A :class:`JobSpec` is the normalized form of a ``POST /v1/jobs`` body.
Two kinds exist, mirroring the two programmatic entry points:

``experiment``
    The :func:`repro.experiments.api.run` payload shape — experiment
    ids (or tags), profile, seed, backend, runtime, shards.
``sweep``
    The :func:`repro.sweeps.run` payload shape — a grid dict (the
    TOML document form), profile, backend override, runtime, shards.

Normalization is **eager and lossy on aliases**: ids are resolved
through the registry (tags folded in), grids are validated and expanded
through :class:`~repro.sweeps.grid.GridSpec` with any backend override
folded into the backends axis.  Everything a job could reject at
execution time is rejected at submit time instead with the same
one-line :class:`~repro.errors.ConfigurationError` the CLI surfaces, so
a queued job can only fail for execution-environment reasons, never for
payload shape.

The normalized payload is also the **identity**: :meth:`JobSpec.
identity_key` hashes exactly the fields that determine the result bytes
— the existing cache identity (resolved ids / executed grid, profile,
seed, backend label, shards).  ``runtime`` is deliberately excluded:
runtimes are bit-identical per seed (the engine invariant), so two
submissions differing only in runtime share one computation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Mapping

from ..congest.runtime import resolve_runtime
from ..engine import available_backends
from ..errors import ConfigurationError
from ..experiments import api
from ..experiments.result import ExperimentResult

__all__ = ["JOB_KINDS", "JobFailure", "JobSpec", "execute_spec", "render_csv"]

#: The accepted ``"kind"`` values of a job payload.
JOB_KINDS: tuple[str, ...] = ("experiment", "sweep")

#: Payload keys accepted per kind (beyond ``"kind"`` itself).
_EXPERIMENT_KEYS = ("ids", "tags", "profile", "seed", "backend", "runtime", "shards")
_SWEEP_KEYS = ("grid", "profile", "backend", "runtime", "shards")


class JobFailure(Exception):
    """A job execution failed, with the original error's type preserved.

    Raised by executors when a worker reports (or suffers) a failure;
    the worker pool folds it into the job's stored error payload so
    clients see the underlying exception type by name — e.g.
    ``ConfigurationError`` — not just an opaque message.
    """

    def __init__(self, type_name: str, message: str) -> None:
        """Record the original exception's type name and message."""
        super().__init__(message)
        self.type_name = type_name
        self.message = message


def _one_line(message: str) -> ConfigurationError:
    """A :class:`ConfigurationError` guaranteed to render on one line."""
    return ConfigurationError(" ".join(str(message).split()))


def _check_keys(payload: Mapping, known: "tuple[str, ...]", kind: str) -> None:
    """Reject unknown payload keys with a one-line diagnostic."""
    unknown = set(payload) - set(known) - {"kind"}
    if unknown:
        raise _one_line(
            f"unknown {kind}-job key(s) "
            f"{', '.join(map(repr, sorted(unknown)))}; known: "
            f"{', '.join(known)}"
        )


def _check_int(value: object, *, what: str, minimum: int) -> int:
    """Validate one integer payload value (bools are not integers here)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise _one_line(f"job {what} must be an int, got {value!r}")
    if value < minimum:
        raise _one_line(f"job {what} must be >= {minimum}, got {value}")
    return value


def _check_common(payload: Mapping) -> "tuple[str, str | None, str | None, int]":
    """Validate the fields shared by both kinds: profile/backend/runtime/shards."""
    profile = payload.get("profile", "quick")
    if not profile or not isinstance(profile, str):
        raise _one_line(f"job profile must be a non-empty string, got {profile!r}")
    backend = payload.get("backend")
    known_backends = ("auto", *available_backends())
    if backend is not None and backend not in known_backends:
        raise _one_line(
            f"unknown backend {backend!r}; known: {', '.join(known_backends)}"
        )
    runtime = payload.get("runtime")
    if runtime is not None:
        resolve_runtime(runtime)  # unknown names fail at submit, not execute
        runtime = str(runtime)
    shards = _check_int(payload.get("shards", 1), what="shards", minimum=1)
    return profile, backend, runtime, shards


@dataclass(frozen=True)
class JobSpec:
    """One normalized, validated job: kind plus a canonical payload dict.

    Construct through :meth:`normalize` (for raw ``POST`` bodies) or
    :meth:`from_dict` (for payloads already normalized and persisted by
    the store).  The payload is canonical: ids resolved, grid in its
    :meth:`~repro.sweeps.grid.GridSpec.to_dict` form with any backend
    override folded in, defaults made explicit.  Treat the payload as
    read-only — identity (:meth:`identity_key`) is computed from it.
    """

    kind: str
    payload: dict

    @classmethod
    def normalize(cls, raw: object) -> "JobSpec":
        """Validate a raw submission body into a canonical spec.

        Raises :class:`ConfigurationError` with a one-line diagnostic
        for every malformed shape — the HTTP layer maps that onto a 400
        response, the CLI onto exit code 2.
        """
        if not isinstance(raw, Mapping):
            raise _one_line(f"job payload must be a JSON object, got {raw!r}")
        kind = raw.get("kind")
        if kind not in JOB_KINDS:
            raise _one_line(
                f"job kind must be one of {', '.join(map(repr, JOB_KINDS))}; "
                f"got {kind!r}"
            )
        if kind == "experiment":
            return cls._normalize_experiment(raw)
        return cls._normalize_sweep(raw)

    @classmethod
    def _normalize_experiment(cls, raw: Mapping) -> "JobSpec":
        """Normalize an ``experiment`` payload (the ``api.run`` shape)."""
        _check_keys(raw, _EXPERIMENT_KEYS, "experiment")
        profile, backend, runtime, shards = _check_common(raw)
        seed = _check_int(raw.get("seed", 0), what="seed", minimum=0)
        tags = raw.get("tags")
        if tags is not None and (
            isinstance(tags, (str, bytes))
            or not all(isinstance(tag, str) for tag in tags)
        ):
            raise _one_line(f"job tags must be a list of strings, got {tags!r}")
        ids = raw.get("ids")
        if ids is not None and not isinstance(ids, str):
            if not all(isinstance(item, str) for item in ids):
                raise _one_line(
                    f"job ids must be a list of strings or 'all', got {ids!r}"
                )
        resolved = api.resolve_ids(ids, tags=tags)  # unknown ids raise here
        if not resolved:
            raise _one_line(
                f"job selects no experiments (ids={ids!r}, tags={tags!r})"
            )
        payload = {
            "ids": list(resolved),
            "profile": profile,
            "seed": seed,
            "backend": backend,
            "runtime": runtime,
            "shards": shards,
        }
        return cls(kind="experiment", payload=payload)

    @classmethod
    def _normalize_sweep(cls, raw: Mapping) -> "JobSpec":
        """Normalize a ``sweep`` payload (the ``sweeps.run`` shape)."""
        from ..sweeps.grid import GridSpec, load_grid

        _check_keys(raw, _SWEEP_KEYS, "sweep")
        profile, backend, runtime, shards = _check_common(raw)
        grid = raw.get("grid")
        if not isinstance(grid, Mapping):
            raise _one_line(
                f"sweep job requires a 'grid' table (the grid.toml document "
                f"shape), got {grid!r}"
            )
        spec = load_grid(dict(grid))  # full eager validation
        executed = spec.to_dict()
        if backend is not None:
            # Fold the override into the backends axis — exactly what the
            # sweep engine records as the executed grid — and re-validate.
            executed["grid"]["backends"] = [backend]
            spec = GridSpec.from_dict(executed)
            executed = spec.to_dict()
        payload = {
            "grid": executed,
            "profile": profile,
            "runtime": runtime,
            "shards": shards,
        }
        return cls(kind="sweep", payload=payload)

    def payload_dict(self) -> dict:
        """The canonical payload as a plain (JSON-able) dict."""
        return json.loads(json.dumps(self.payload))

    def identity_key(self) -> str:
        """The single-flight/result-store key: a digest of the result identity.

        Hashes exactly what determines the result document's bytes — the
        existing cache identity surfaced one level up.  For experiments:
        resolved ids in selection order, profile, seed, the backend
        *label* (which encodes the shard count, via
        ``api._backend_name``), and shards.  For sweeps: the executed
        grid document (which pins every cell's slug, seed, and backend),
        profile, and shards.  ``runtime`` is excluded — bit-identical by
        the engine invariant.
        """
        payload = self.payload_dict()
        if self.kind == "experiment":
            doc = {
                "kind": self.kind,
                "ids": payload["ids"],
                "profile": payload["profile"],
                "seed": payload["seed"],
                "backend": api._backend_name(
                    payload["backend"], payload["shards"]
                ),
                "shards": payload["shards"],
            }
        else:
            doc = {
                "kind": self.kind,
                "grid": payload["grid"],
                "profile": payload["profile"],
                "shards": payload["shards"],
            }
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        """JSON-able dict form (what the store persists as ``spec.json``)."""
        return {"kind": self.kind, "payload": self.payload_dict()}

    @classmethod
    def from_dict(cls, document: Mapping) -> "JobSpec":
        """Rebuild a spec persisted by :meth:`to_dict` (already canonical)."""
        kind = document["kind"]
        if kind not in JOB_KINDS:
            raise _one_line(f"stored job has unknown kind {kind!r}")
        return cls(kind=kind, payload=dict(document["payload"]))


def execute_spec(
    spec: JobSpec,
    *,
    cache_dir: "str | None" = None,
    progress: "Callable[[str], None] | None" = None,
) -> str:
    """Run one job in this process and return its result JSON document.

    The document is **byte-identical** to the programmatic API's own
    serialization: for experiment jobs, the ``--format json`` batch form
    (``json.dumps([r.to_dict() ...], indent=2)`` over
    :func:`repro.experiments.api.run`); for sweep jobs,
    :meth:`repro.sweeps.result.SweepResult.to_json`.  Executions share
    the service's on-disk result cache through ``cache_dir``, so
    repeated identical work replays instead of recomputing.
    """
    payload = spec.payload_dict()
    if spec.kind == "experiment":
        results = api.run(
            list(payload["ids"]),
            profile=payload["profile"],
            seed=payload["seed"],
            backend=payload["backend"],
            runtime=payload["runtime"],
            shards=payload["shards"],
            jobs=1,
            cache_dir=cache_dir,
            progress=progress,
        )
        return json.dumps([result.to_dict() for result in results], indent=2)
    from .. import sweeps

    result = sweeps.run(
        payload["grid"],
        profile=payload["profile"],
        runtime=payload["runtime"],
        shards=payload["shards"],
        jobs=1,
        cache_dir=cache_dir,
        progress=progress,
    )
    return result.to_json()


def render_csv(kind: str, document: str) -> str:
    """Re-render a stored result document as the CLI's CSV form.

    Experiment jobs: each result's :meth:`~repro.experiments.result.
    ExperimentResult.to_csv`, concatenated — the streamed ``--format
    csv`` output.  Sweep jobs: the points and cells tables with the
    ``# table:`` comment separators — the sweep CLI's stdout CSV mode.
    """
    if kind == "experiment":
        return "".join(
            ExperimentResult.from_dict(entry).to_csv()
            for entry in json.loads(document)
        )
    from ..sweeps.result import SweepResult

    result = SweepResult.from_json(document)
    return (
        f"# table: sweep / points\n{result.points_csv()}"
        f"# table: sweep / cells\n{result.cells_csv()}"
    )


def worker_entry(spec_document: dict, cache_dir: "str | None", queue) -> None:
    """Subprocess entry point: execute one job, reporting over ``queue``.

    Started through the library's pinned ``spawn`` context (see
    :mod:`repro.engine.mp`) by :class:`~repro.service.app.
    SubprocessExecutor`.  Every outcome is a queue message — ``("progress",
    text)`` during execution, then exactly one of ``("done", document)``
    or ``("failed", {"type", "message"})`` — so the parent never has to
    parse an exit code to learn what happened; a worker that dies without
    a terminal message is reported by the executor as a crash.
    """
    spec = JobSpec.from_dict(spec_document)
    try:
        document = execute_spec(
            spec,
            cache_dir=cache_dir,
            progress=lambda message: queue.put(("progress", message)),
        )
    except BaseException as error:  # report every failure, then exit cleanly
        queue.put(
            ("failed", {"type": type(error).__name__, "message": str(error)})
        )
    else:
        queue.put(("done", document))
