"""The HTTP job server: submit, poll, stream, fetch — stdlib only.

One :class:`JobService` ties the pieces together: a
:class:`~repro.service.store.DirJobStore` (durable state), a
:class:`~repro.service.dedupe.SingleFlight` gate (one execution per
identity), a :class:`WorkerPool` (dispatcher threads driving job
executors), and a :class:`http.server.ThreadingHTTPServer` speaking a
small JSON protocol:

========  ==========================  =======================================
method    path                        meaning
========  ==========================  =======================================
POST      ``/v1/jobs``                submit (the ``api.run``/``sweeps.run``
                                      payload shape); 200 with the job id,
                                      deduped flag, and current state
GET       ``/v1/jobs``                list all jobs (id, kind, state)
GET       ``/v1/jobs/<id>``           poll one job's state machine
GET       ``/v1/jobs/<id>/events``    NDJSON event stream (``?follow=0`` for
                                      a snapshot); follows until terminal
GET       ``/v1/jobs/<id>/result``    the result document — JSON by default,
                                      ``?format=csv`` for the CLI's CSV form
GET       ``/v1/health``              liveness + per-state job counts
========  ==========================  =======================================

Error responses are always ``{"error": {"type", "message"}}`` with 400
for malformed payloads (the same one-line diagnostics the CLI prints at
exit 2), 404 for unknown jobs/routes, and 409 for results requested
before a job is done.

Executors are a seam: :class:`SubprocessExecutor` (the default) runs
each job in a fresh ``spawn`` worker process — the library's pinned
start method (:mod:`repro.engine.mp`) — relaying the worker's progress
callback over a queue into the job's event log, and surviving worker
death (a crash becomes a ``failed`` job, never a wedged server);
:class:`InlineExecutor` runs jobs in the dispatcher thread (debugging,
tests, and the dedupe benchmark's hot path).
"""

from __future__ import annotations

import json
import queue as queue_module
import re
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable
from urllib.parse import parse_qs, urlparse

from ..engine import mp_context
from ..errors import ConfigurationError
from . import jobs as jobs_module
from .dedupe import SingleFlight, Submission
from .jobs import JobFailure, JobSpec
from .store import TERMINAL_STATES, DirJobStore

__all__ = [
    "ServiceConfig",
    "InlineExecutor",
    "SubprocessExecutor",
    "WorkerPool",
    "JobService",
    "create_server",
]

#: Route patterns, matched against the request path (query stripped).
_JOB_ROUTE = re.compile(r"^/v1/jobs/(?P<job_id>[A-Za-z0-9_-]+)(?P<tail>/events|/result)?$")


@dataclass
class ServiceConfig:
    """Everything ``serve`` needs: bind address, store location, pool size.

    Attributes
    ----------
    host, port:
        Bind address; port ``0`` asks the OS for an ephemeral port
        (read the realised one off :attr:`JobService.port`).
    store_dir:
        Root of the dir-backed job store (created if missing).
    jobs:
        Worker-pool width — how many jobs execute concurrently.
    inline:
        Execute jobs in the dispatcher threads instead of worker
        processes (debugging/tests; production keeps the default).
    """

    host: str = "127.0.0.1"
    port: int = 8765
    store_dir: "str | Path" = "service-store"
    jobs: int = 2
    inline: bool = False


class InlineExecutor:
    """Run jobs in the calling (dispatcher) thread — no process hop.

    The test and debugging seam: identical semantics to the subprocess
    path (same :func:`~repro.service.jobs.execute_spec`, same shared
    cache), minus the isolation.
    """

    def __init__(self, cache_dir: "str | Path | None") -> None:
        """Execute against the shared result cache at ``cache_dir``."""
        self._cache_dir = str(cache_dir) if cache_dir is not None else None

    def __call__(
        self, spec: JobSpec, emit: Callable[[str], None]
    ) -> str:
        """Execute ``spec`` now; progress goes straight to ``emit``."""
        return jobs_module.execute_spec(
            spec, cache_dir=self._cache_dir, progress=emit
        )


class SubprocessExecutor:
    """Run each job in a fresh ``spawn`` worker process.

    The worker reports over a queue — progress messages while running,
    then exactly one terminal message (see :func:`~repro.service.jobs.
    worker_entry`).  A worker that dies without reporting (OOM-kill,
    segfault, ``kill -9``) is detected by process exit and surfaced as a
    :class:`~repro.service.jobs.JobFailure`, so the dispatcher thread
    and the server always outlive their workers.
    """

    #: Seconds between liveness checks while waiting on the worker queue.
    poll_interval = 0.2

    def __init__(self, cache_dir: "str | Path | None") -> None:
        """Execute against the shared result cache at ``cache_dir``."""
        self._cache_dir = str(cache_dir) if cache_dir is not None else None
        self._ctx = mp_context()

    def __call__(
        self, spec: JobSpec, emit: Callable[[str], None]
    ) -> str:
        """Execute ``spec`` in a worker process, relaying its progress."""
        channel = self._ctx.Queue()
        worker = self._ctx.Process(
            target=jobs_module.worker_entry,
            args=(spec.to_dict(), self._cache_dir, channel),
            daemon=True,
        )
        worker.start()
        try:
            outcome = self._pump(worker, channel, emit)
        finally:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
            channel.close()
        kind, payload = outcome
        if kind == "done":
            return payload
        raise JobFailure(payload["type"], payload["message"])

    def _pump(self, worker, channel, emit) -> "tuple[str, dict | str]":
        """Drain the worker's queue until a terminal message (or death)."""
        while True:
            try:
                kind, payload = channel.get(timeout=self.poll_interval)
            except queue_module.Empty:
                if worker.is_alive():
                    continue
                # The worker died without a terminal message; drain any
                # stragglers the feeder flushed right before death.
                try:
                    while True:
                        kind, payload = channel.get_nowait()
                        if kind == "progress":
                            emit(payload)
                        else:
                            return kind, payload
                except queue_module.Empty:
                    pass
                return (
                    "failed",
                    {
                        "type": "WorkerCrash",
                        "message": (
                            "worker process exited with code "
                            f"{worker.exitcode} before reporting a result"
                        ),
                    },
                )
            if kind == "progress":
                emit(payload)
                continue
            return kind, payload


class WorkerPool:
    """Dispatcher threads that pull queued jobs and drive an executor.

    The pool owns the ``queued → running → done | failed`` transitions;
    the executor only computes.  Any exception the executor raises —
    including :class:`~repro.service.jobs.JobFailure` relayed from a
    worker process — becomes the job's stored error payload, so one bad
    job can never take a dispatcher (or the server) down.
    """

    def __init__(
        self,
        store: DirJobStore,
        *,
        jobs: int,
        executor: Callable[[JobSpec, Callable[[str], None]], str],
    ) -> None:
        """Create a pool of ``jobs`` dispatchers over ``store``."""
        if jobs < 1:
            raise ConfigurationError(f"service jobs must be >= 1, got {jobs}")
        self._store = store
        self._executor = executor
        self._queue: "queue_module.Queue[str | None]" = queue_module.Queue()
        self._threads = [
            threading.Thread(
                target=self._dispatch, name=f"repro-service-worker-{index}",
                daemon=True,
            )
            for index in range(jobs)
        ]
        self._started = False

    def start(self) -> None:
        """Start the dispatcher threads (idempotent)."""
        if not self._started:
            self._started = True
            for thread in self._threads:
                thread.start()

    def stop(self) -> None:
        """Ask every dispatcher to exit after its current job."""
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=10)

    def submit(self, job_id: str) -> None:
        """Enqueue one job id for execution."""
        self._queue.put(job_id)

    def _dispatch(self) -> None:
        """One dispatcher thread's loop: pop, execute, finalize, repeat."""
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            try:
                self._run_job(job_id)
            except Exception as error:  # defensive: dispatcher must survive
                try:
                    self._store.set_state(
                        job_id,
                        "failed",
                        error={
                            "type": type(error).__name__,
                            "message": str(error),
                        },
                    )
                except Exception:
                    pass

    def _run_job(self, job_id: str) -> None:
        """Execute one job end to end, folding failures into its record."""
        record = self._store.get(job_id)
        if record.state != "queued":
            return  # raced with recovery or a duplicate enqueue
        self._store.set_state(job_id, "running")

        def emit(message: str) -> None:
            self._store.append_event(job_id, "progress", message)

        try:
            document = self._executor(record.spec, emit)
        except JobFailure as failure:
            self._store.set_state(
                job_id,
                "failed",
                error={"type": failure.type_name, "message": failure.message},
            )
        except Exception as error:
            self._store.set_state(
                job_id,
                "failed",
                error={"type": type(error).__name__, "message": str(error)},
            )
        else:
            ref = self._store.put_result(record.key, document)
            self._store.set_state(job_id, "done", result_ref=ref)


class _Handler(BaseHTTPRequestHandler):
    """Request handler: routes the JSON protocol over the service object."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> "JobService":
        """The owning :class:`JobService` (attached to the HTTP server)."""
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        """Route access logs through the service's logger (default: drop)."""
        self.service.log(f"{self.address_string()} {format % args}")

    def _send_json(self, status: int, payload: dict) -> None:
        """One JSON response with an exact Content-Length (keep-alive safe)."""
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_document(self, body: str, content_type: str) -> None:
        """A stored result document, byte-exact, with Content-Length."""
        raw = body.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _send_error_payload(self, status: int, error_type: str, message: str) -> None:
        """The uniform error envelope every failure path responds with."""
        self._send_json(
            status, {"error": {"type": error_type, "message": message}}
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        """``POST /v1/jobs``: normalize, dedupe, enqueue, respond."""
        parsed = urlparse(self.path)
        if parsed.path.rstrip("/") != "/v1/jobs":
            self._send_error_payload(404, "NotFound", f"no route {parsed.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except (ValueError, UnicodeDecodeError) as error:
            self._send_error_payload(
                400, "BadRequest", f"request body is not valid JSON: {error}"
            )
            return
        try:
            submission = self.service.submit(payload)
        except ConfigurationError as error:
            self._send_error_payload(400, "ConfigurationError", str(error))
            return
        record = submission.record
        self._send_json(
            200,
            {
                "job_id": record.job_id,
                "state": record.state,
                "kind": record.spec.kind,
                "key": record.key,
                "deduped": submission.deduped,
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        """Route ``GET``: health, job list, job state, events, result."""
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        query = parse_qs(parsed.query)
        if path == "/v1/health":
            self._send_json(
                200, {"status": "ok", "jobs": self.service.store.counts()}
            )
            return
        if path == "/v1/jobs":
            self._send_json(
                200,
                {
                    "jobs": [
                        {
                            "job_id": record.job_id,
                            "kind": record.spec.kind,
                            "state": record.state,
                        }
                        for record in self.service.store.list_jobs()
                    ]
                },
            )
            return
        match = _JOB_ROUTE.match(path)
        if match is None:
            self._send_error_payload(404, "NotFound", f"no route {path}")
            return
        job_id, tail = match.group("job_id"), match.group("tail")
        try:
            record = self.service.store.get(job_id)
        except KeyError:
            self._send_error_payload(404, "NotFound", f"no job {job_id!r}")
            return
        if tail is None:
            self._send_json(200, record.to_public_dict())
        elif tail == "/events":
            self._stream_events(job_id, query)
        else:
            self._send_result(record, query)

    def _send_result(self, record, query: dict) -> None:
        """``GET /v1/jobs/<id>/result``: the stored document, byte-exact."""
        if record.state == "failed":
            self._send_json(
                409,
                {
                    "error": record.error
                    or {"type": "JobFailed", "message": "job failed"},
                    "state": record.state,
                },
            )
            return
        if record.state not in TERMINAL_STATES or record.result_ref is None:
            self._send_error_payload(
                409,
                "NotReady",
                f"job {record.job_id!r} is {record.state}; poll "
                f"/v1/jobs/{record.job_id} until it is done",
            )
            return
        document = self.service.store.load_result(record.result_ref)
        output_format = (query.get("format") or ["json"])[0]
        if output_format == "csv":
            self._send_document(
                jobs_module.render_csv(record.spec.kind, document),
                "text/csv; charset=utf-8",
            )
        elif output_format == "json":
            self._send_document(document, "application/json")
        else:
            self._send_error_payload(
                400, "BadRequest", f"unknown format {output_format!r} "
                "(choose json or csv)"
            )

    def _stream_events(self, job_id: str, query: dict) -> None:
        """``GET /v1/jobs/<id>/events``: NDJSON, live-following by default.

        The response is close-delimited (no Content-Length): each event
        is written and flushed as one line, and the connection closes
        once the job reaches a terminal state and the log is drained.
        ``?follow=0`` returns the current snapshot immediately;
        ``?after=N`` resumes from sequence cursor ``N``.
        """
        follow = (query.get("follow") or ["1"])[0] not in ("0", "false", "no")
        try:
            after = int((query.get("after") or ["0"])[0])
        except ValueError:
            after = 0
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        log = self.service.store.events(job_id)

        def finished() -> bool:
            try:
                return self.service.store.get(job_id).state in TERMINAL_STATES
            except KeyError:
                return True

        try:
            if follow:
                for event in log.follow(after_seq=after, finished=finished):
                    self.wfile.write(event.to_line().encode("utf-8"))
                    self.wfile.flush()
            else:
                for event in log.read(after_seq=after):
                    self.wfile.write(event.to_line().encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-stream; nothing to clean up


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning :class:`JobService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, service: "JobService") -> None:
        """Bind and remember the owning service for the handlers."""
        self.service = service
        super().__init__(address, handler)


class JobService:
    """The assembled service: store + dedupe gate + pool + HTTP server.

    Lifecycle: construct with a :class:`ServiceConfig`, :meth:`start`
    (recovers the store, starts the pool, binds the socket), then either
    :meth:`serve_forever` (the CLI) or drive requests externally while
    the server thread runs (tests); finally :meth:`shutdown`.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        executor: "Callable[[JobSpec, Callable[[str], None]], str] | None" = None,
        log: "Callable[[str], None] | None" = None,
    ) -> None:
        """Assemble the service; ``executor`` overrides the subprocess seam."""
        self.config = config
        self.store = DirJobStore(config.store_dir)
        self.log = log or (lambda message: None)
        if executor is None:
            executor_cls = InlineExecutor if config.inline else SubprocessExecutor
            executor = executor_cls(self.store.cache_dir)
        self._single_flight = SingleFlight(self.store)
        self.pool = WorkerPool(self.store, jobs=config.jobs, executor=executor)
        self._httpd: "_Server | None" = None
        self._thread: "threading.Thread | None" = None

    @property
    def port(self) -> int:
        """The realised TCP port (useful when configured with port 0)."""
        if self._httpd is None:
            raise ConfigurationError("service is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The service's base URL."""
        return f"http://{self.config.host}:{self.port}"

    def submit(self, payload: object) -> Submission:
        """Normalize + dedupe one submission; enqueue it if it must run."""
        spec = JobSpec.normalize(payload)
        submission = self._single_flight.submit(spec)
        if submission.needs_execution:
            self.pool.submit(submission.record.job_id)
        return submission

    def start(self) -> None:
        """Recover the store, start the pool, and bind the HTTP socket.

        Recovery runs *before* the socket opens: orphaned ``running``
        jobs are re-queued (or completed from the shared result store),
        so a client polling across a restart never observes a job that
        nobody owns.
        """
        for job_id in self.store.recover():
            self.pool.submit(job_id)
        self.pool.start()
        self._httpd = _Server(
            (self.config.host, self.config.port), _Handler, self
        )

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or interrupt)."""
        if self._httpd is None:
            self.start()
        assert self._httpd is not None
        self._httpd.serve_forever(poll_interval=0.2)

    def start_background(self) -> None:
        """Serve from a daemon thread (the test-fixture entry point)."""
        if self._httpd is None:
            self.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop accepting requests, then stop the worker pool."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.pool.stop()


def create_server(
    config: ServiceConfig,
    *,
    executor: "Callable[[JobSpec, Callable[[str], None]], str] | None" = None,
    log: "Callable[[str], None] | None" = None,
) -> JobService:
    """Build and start a :class:`JobService` (socket bound, pool running).

    The one-call entry point the ``serve`` CLI and the test fixture
    share; raises :class:`ConfigurationError` for unusable
    configurations (bad store dir, non-positive pool size) before
    binding anything.
    """
    service = JobService(config, executor=executor, log=log)
    try:
        service.start()
    except OSError as error:
        raise ConfigurationError(
            f"cannot bind {config.host}:{config.port}: {error}"
        ) from None
    return service
