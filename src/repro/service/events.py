"""Append-only NDJSON event logs: one file per job, tail-able while live.

Every job carries an event log recording its state transitions and the
progress messages relayed from its worker — the backing store of the
``GET /v1/jobs/<id>/events`` NDJSON stream.  The log is deliberately
primitive: one JSON object per line, appended with a flush, never
rewritten.  A crash mid-append leaves at most one torn final line, which
:meth:`EventLog.read` silently skips (the next append starts a fresh
line, so a torn tail never wedges the log).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Mapping

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One job event: a monotonically numbered, timestamped message.

    Attributes
    ----------
    seq:
        1-based position in the job's event log; streaming clients use
        it as their resume cursor.
    time:
        Unix timestamp of the append (wall clock; informational only —
        nothing simulated derives from it).
    kind:
        ``"state"`` for lifecycle transitions, ``"progress"`` for
        messages relayed from the worker's progress callback.
    message:
        The event text (for ``"state"`` events, the new state, plus an
        optional detail suffix).
    """

    seq: int
    time: float
    kind: str
    message: str

    def to_dict(self) -> dict:
        """JSON-able dict form (one NDJSON line when serialized)."""
        return {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Event":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seq=int(payload["seq"]),
            time=float(payload["time"]),
            kind=str(payload["kind"]),
            message=str(payload["message"]),
        )

    def to_line(self) -> str:
        """The event as one newline-terminated NDJSON line."""
        return json.dumps(self.to_dict(), sort_keys=True) + "\n"


class EventLog:
    """An append-only NDJSON event file with a live ``follow`` tail.

    Appends are serialized by an internal lock (the HTTP threads and the
    worker dispatcher share one log per job); reads take no lock — they
    see a prefix of the log, which is all a streaming client needs.
    """

    def __init__(self, path: "str | Path") -> None:
        """Open (or create lazily) the log at ``path``."""
        self._path = Path(path)
        self._lock = threading.Lock()
        self._seq = len(self.read())

    @property
    def path(self) -> Path:
        """Location of the backing NDJSON file."""
        return self._path

    def append(self, kind: str, message: str) -> Event:
        """Append one event and flush it to disk; returns the event.

        If the file ends mid-line (a torn tail from an interrupted
        append), a newline is written first so the fresh event never
        merges into the unparseable fragment.
        """
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq, time=time.time(), kind=kind, message=message
            )
            self._path.parent.mkdir(parents=True, exist_ok=True)
            line = event.to_line()
            if self._torn_tail():
                line = "\n" + line
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
            return event

    def _torn_tail(self) -> bool:
        """Whether the file ends mid-line (interrupted previous append)."""
        try:
            with open(self._path, "rb") as handle:
                handle.seek(-1, 2)
                return handle.read(1) != b"\n"
        except (OSError, ValueError):
            return False  # missing or empty file: nothing torn

    def read(self, after_seq: int = 0) -> list[Event]:
        """All fully written events with ``seq > after_seq``, in order.

        A torn final line (crash mid-append) is skipped, not raised.
        """
        try:
            text = self._path.read_text(encoding="utf-8")
        except OSError:
            return []
        events = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                event = Event.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError):
                continue  # torn tail from an interrupted append
            if event.seq > after_seq:
                events.append(event)
        return events

    def follow(
        self,
        *,
        after_seq: int = 0,
        finished: Callable[[], bool],
        poll_interval: float = 0.05,
        timeout: float = 600.0,
    ) -> Iterator[Event]:
        """Yield events live until ``finished()`` holds and the log is drained.

        The generator first replays everything after ``after_seq``, then
        polls the file for new lines.  It stops once ``finished()``
        returns true *and* no unread events remain (a final check runs
        after the terminal state, so the closing ``state`` event is never
        dropped), or after ``timeout`` seconds as a safety valve against
        clients tailing a job that never ends.
        """
        cursor = after_seq
        deadline = time.monotonic() + timeout
        while True:
            batch = self.read(after_seq=cursor)
            for event in batch:
                cursor = event.seq
                yield event
            if finished() and not self.read(after_seq=cursor):
                return
            if time.monotonic() >= deadline:
                return
            time.sleep(poll_interval)
