"""Simulation-as-a-service: an async job server over the experiment API.

The service layer turns the programmatic entry points —
:func:`repro.experiments.api.run` and :func:`repro.sweeps.run` — into a
long-lived HTTP job server with a shared, deduplicating result store.
It is built entirely from the standard library (``http.server`` +
``json``): zero new runtime dependencies.

The pieces, bottom-up:

- :mod:`repro.service.events` — append-only NDJSON event logs (the
  progress stream's backing store).
- :mod:`repro.service.jobs` — job specs: payload validation, canonical
  identity keys, and the worker-process entry point.
- :mod:`repro.service.store` — the dir-backed :class:`JobStore`
  (crash-safe state machine, shared content-keyed result documents).
- :mod:`repro.service.dedupe` — single-flight submission: one
  execution per identity key, concurrent duplicates attach.
- :mod:`repro.service.app` — the HTTP server, worker pool, and
  executor seam tying it together.

Start one from the CLI (``python -m repro.experiments serve ...``) or
programmatically via :func:`create_server`.
"""

from .app import (
    InlineExecutor,
    JobService,
    ServiceConfig,
    SubprocessExecutor,
    WorkerPool,
    create_server,
)
from .dedupe import SingleFlight, Submission
from .events import Event, EventLog
from .jobs import JobFailure, JobSpec
from .store import DirJobStore, JobRecord, JobStore

__all__ = [
    "ServiceConfig",
    "JobService",
    "WorkerPool",
    "InlineExecutor",
    "SubprocessExecutor",
    "create_server",
    "SingleFlight",
    "Submission",
    "Event",
    "EventLog",
    "JobSpec",
    "JobFailure",
    "JobStore",
    "DirJobStore",
    "JobRecord",
]
