"""Single-flight submission: one execution per identity key, ever.

The dedupe layer sits between the HTTP handler and the store.  Every
submission is keyed by :meth:`~repro.service.jobs.JobSpec.identity_key`
— the same content identity the on-disk result caches use — and three
outcomes are possible, in order of preference:

1. **Attach**: a live or completed job already owns the key → the
   caller gets that job's id.  Concurrent identical submissions
   therefore collapse onto one execution (the single-flight guarantee),
   and later identical submissions are pure lookups.
2. **Replay**: no usable job owns the key but the shared result store
   already holds the key's document (e.g. the job index was pruned, or
   another store produced it) → a new job is created *directly in state
   ``done``*, pointing at the existing document, without ever entering
   the worker queue.
3. **Execute**: the key is genuinely new → a ``queued`` job is created
   and handed to the worker pool.

Failed jobs never satisfy an attach — resubmitting an identical payload
after a failure retries the computation (and rebinds the key to the
fresh attempt).

The in-process lock makes the check-then-create sequence atomic against
the server's own HTTP threads; the on-disk index makes the decision
durable across restarts.  Determinism is what makes all of this sound:
identical specs produce byte-identical result documents (the engine's
bit-identical invariant surfaced at the service boundary), so sharing a
result between submitters is indistinguishable from recomputing it.
"""

from __future__ import annotations

import threading

from .jobs import JobSpec
from .store import JobRecord, JobStore

__all__ = ["Submission", "SingleFlight"]


class Submission:
    """The outcome of one submission: the owning job, and how it was got.

    Attributes
    ----------
    record:
        The :class:`~repro.service.store.JobRecord` that owns the
        submission's identity key.
    deduped:
        True when the caller attached to a pre-existing job instead of
        creating one.
    needs_execution:
        True when the caller must hand the job to the worker pool (a
        fresh job that was not satisfied straight from the result
        store).
    """

    def __init__(
        self, record: JobRecord, *, deduped: bool, needs_execution: bool
    ) -> None:
        """Bundle the submission outcome (see class attributes)."""
        self.record = record
        self.deduped = deduped
        self.needs_execution = needs_execution


class SingleFlight:
    """The dedupe gate: serializes submissions per identity key."""

    def __init__(self, store: JobStore) -> None:
        """Wrap ``store`` with single-flight submission semantics."""
        self._store = store
        self._lock = threading.Lock()

    def submit(self, spec: JobSpec) -> Submission:
        """Resolve one submission to a job: attach, replay, or create.

        See the module docstring for the decision order.  The returned
        :class:`Submission` tells the caller whether the worker pool
        still needs to see the job.
        """
        key = spec.identity_key()
        with self._lock:
            existing_id = self._store.find_by_key(key)
            if existing_id is not None:
                try:
                    record = self._store.get(existing_id)
                except KeyError:
                    record = None  # index points at a pruned job dir
                if record is not None and record.state != "failed":
                    return Submission(
                        record, deduped=True, needs_execution=False
                    )
            record = self._store.create(spec, key)
            self._store.bind_key(key, record.job_id)
            if self._store.has_result(key):
                # The shared result store already has this computation —
                # complete the job instantly, bypassing the queue.
                ref = self._store.result_ref(key)
                record = self._store.set_state(
                    record.job_id,
                    "done",
                    result_ref=ref,
                    detail="replayed from the shared result store",
                )
                return Submission(record, deduped=False, needs_execution=False)
            return Submission(record, deduped=False, needs_execution=True)
