"""Job stores: the service's durable state, crash-safe by construction.

A :class:`JobStore` holds everything the server must not lose across a
restart: each job's spec, its state machine position (``queued →
running → done | failed``), its event log, and a **shared,
content-keyed result area** — results are stored once per identity key
(``results/<key>.json``), and every job record merely points at its
key's document, so a million deduplicated submissions share one file.

:class:`DirJobStore` is the dir-backed implementation: every mutation
is an atomic rename (write to ``*.tmp`` in the same directory, then
``os.replace``), so a crash at any instant leaves either the old or the
new document, never a torn one — the same discipline as
:func:`repro.experiments.api.write_cache`.  The layout::

    <root>/
      jobs/<job_id>/spec.json     # written once at submit
      jobs/<job_id>/state.json    # the state-machine record, atomically replaced
      jobs/<job_id>/events.ndjson # append-only event log
      results/<key>.json          # one shared document per identity key
      index/<key>                 # identity key -> job_id (the dedupe index)
      cache/                      # the per-experiment/point result cache
                                  # workers thread through api.run/sweeps.run

The protocol keeps the store swappable (a Redis-backed implementation
would map jobs to hashes, events to streams, and the index to plain
keys) without touching the HTTP or worker layers.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol

from ..errors import ConfigurationError
from .events import Event, EventLog
from .jobs import JobSpec

__all__ = ["JOB_STATES", "TERMINAL_STATES", "JobRecord", "JobStore", "DirJobStore"]

#: The job state machine, in lifecycle order.
JOB_STATES: tuple[str, ...] = ("queued", "running", "done", "failed")

#: States a job never leaves.
TERMINAL_STATES: tuple[str, ...] = ("done", "failed")


@dataclass
class JobRecord:
    """One job's full state: spec, lifecycle position, result pointer.

    Attributes
    ----------
    job_id:
        Opaque identifier assigned at submit.
    key:
        The spec's identity key (see :meth:`~repro.service.jobs.JobSpec.
        identity_key`); jobs sharing a key share a result document.
    spec:
        The normalized :class:`~repro.service.jobs.JobSpec`.
    state:
        Current :data:`JOB_STATES` entry.
    error:
        ``{"type", "message"}`` payload for failed jobs, else ``None``.
    created, started, finished:
        Unix timestamps of the lifecycle transitions (``None`` until
        reached); informational only.
    result_ref:
        Store-relative pointer to the shared result document once the
        job is done (e.g. ``"results/<key>.json"``), else ``None``.
    """

    job_id: str
    key: str
    spec: JobSpec
    state: str = "queued"
    error: "dict | None" = None
    created: float = field(default_factory=time.time)
    started: "float | None" = None
    finished: "float | None" = None
    result_ref: "str | None" = None

    def to_state_dict(self) -> dict:
        """The ``state.json`` document (everything but the spec)."""
        return {
            "job_id": self.job_id,
            "key": self.key,
            "kind": self.spec.kind,
            "state": self.state,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "result_ref": self.result_ref,
        }

    def to_public_dict(self) -> dict:
        """The ``GET /v1/jobs/<id>`` response body (state + spec payload)."""
        public = self.to_state_dict()
        public["spec"] = self.spec.to_dict()
        return public


class JobStore(Protocol):
    """What the HTTP and worker layers need from a store implementation.

    Implementations must make every mutation durable before returning
    and must tolerate concurrent calls from the HTTP threads and the
    worker dispatchers (the dir-backed store serializes mutations behind
    one lock; a networked store would lean on its backend's atomicity).
    """

    def create(self, spec: JobSpec, key: str) -> JobRecord:
        """Persist a new job in state ``queued`` and return its record."""
        ...

    def get(self, job_id: str) -> JobRecord:
        """Load one job; raises :class:`KeyError` for unknown ids."""
        ...

    def list_jobs(self) -> list[JobRecord]:
        """All jobs, oldest first."""
        ...

    def set_state(
        self,
        job_id: str,
        state: str,
        *,
        error: "dict | None" = None,
        result_ref: "str | None" = None,
        detail: "str | None" = None,
    ) -> JobRecord:
        """Transition a job, record timestamps, and append a state event."""
        ...

    def append_event(self, job_id: str, kind: str, message: str) -> Event:
        """Append one event to a job's log."""
        ...

    def events(self, job_id: str) -> EventLog:
        """The job's event log (shared instance per job id)."""
        ...

    def put_result(self, key: str, document: str) -> str:
        """Store a result document under its identity key; returns the ref."""
        ...

    def load_result(self, ref: str) -> str:
        """Read a stored result document by its ref."""
        ...

    def has_result(self, key: str) -> bool:
        """Whether a result document already exists for ``key``."""
        ...

    def result_ref(self, key: str) -> str:
        """The ref a result for ``key`` is (or would be) stored under."""
        ...

    def find_by_key(self, key: str) -> "str | None":
        """The job id bound to an identity key, if any."""
        ...

    def bind_key(self, key: str, job_id: str) -> None:
        """Bind an identity key to a job id (the dedupe index)."""
        ...

    def recover(self) -> list[str]:
        """Repair state after a restart; returns job ids to (re-)enqueue."""
        ...


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp-file + rename (crash-safe)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)


class DirJobStore:
    """The dir-backed :class:`JobStore`: plain files, atomic renames.

    Safe for one server process (mutations serialize behind an internal
    lock); the on-disk layout is the durable contract a future
    multi-node store would replicate.
    """

    def __init__(self, root: "str | Path") -> None:
        """Create (or open) a store rooted at ``root``.

        An unusable root — an existing file, missing permissions —
        raises a one-line :class:`ConfigurationError`, so the ``serve``
        CLI folds it into the standard exit-2 diagnostic path.
        """
        self.root = Path(root)
        self._lock = threading.RLock()
        self._logs: dict[str, EventLog] = {}
        try:
            for sub in ("jobs", "results", "index", "cache"):
                (self.root / sub).mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ConfigurationError(
                f"cannot initialise job store at {self.root}: "
                f"{' '.join(str(error).split())}"
            ) from None

    @property
    def cache_dir(self) -> Path:
        """The experiment/sweep result cache workers thread through."""
        return self.root / "cache"

    def _job_dir(self, job_id: str) -> Path:
        """The directory holding one job's documents."""
        return self.root / "jobs" / job_id

    def create(self, spec: JobSpec, key: str) -> JobRecord:
        """Persist a new ``queued`` job (spec first, then state) atomically."""
        record = JobRecord(job_id=uuid.uuid4().hex[:12], key=key, spec=spec)
        with self._lock:
            job_dir = self._job_dir(record.job_id)
            _atomic_write(
                job_dir / "spec.json",
                json.dumps(spec.to_dict(), indent=2, sort_keys=True),
            )
            self._write_state(record)
            self.append_event(record.job_id, "state", "queued")
        return record

    def _write_state(self, record: JobRecord) -> None:
        """Atomically replace a job's ``state.json``."""
        _atomic_write(
            self._job_dir(record.job_id) / "state.json",
            json.dumps(record.to_state_dict(), indent=2, sort_keys=True),
        )

    def _load(self, job_id: str) -> JobRecord:
        """Read one job's spec + state documents into a record."""
        job_dir = self._job_dir(job_id)
        try:
            spec_doc = json.loads((job_dir / "spec.json").read_text())
            state_doc = json.loads((job_dir / "state.json").read_text())
        except (OSError, ValueError) as error:
            raise KeyError(f"unknown or unreadable job {job_id!r}: {error}")
        return JobRecord(
            job_id=job_id,
            key=state_doc["key"],
            spec=JobSpec.from_dict(spec_doc),
            state=state_doc["state"],
            error=state_doc.get("error"),
            created=state_doc.get("created", 0.0),
            started=state_doc.get("started"),
            finished=state_doc.get("finished"),
            result_ref=state_doc.get("result_ref"),
        )

    def get(self, job_id: str) -> JobRecord:
        """Load one job; raises :class:`KeyError` for unknown ids."""
        with self._lock:
            return self._load(job_id)

    def list_jobs(self) -> list[JobRecord]:
        """All jobs, oldest first (by creation timestamp, then id)."""
        with self._lock:
            records = []
            jobs_dir = self.root / "jobs"
            for entry in jobs_dir.iterdir() if jobs_dir.is_dir() else ():
                if not entry.is_dir():
                    continue
                try:
                    records.append(self._load(entry.name))
                except KeyError:
                    continue  # half-created job dir from a crash mid-submit
        return sorted(records, key=lambda record: (record.created, record.job_id))

    def set_state(
        self,
        job_id: str,
        state: str,
        *,
        error: "dict | None" = None,
        result_ref: "str | None" = None,
        detail: "str | None" = None,
    ) -> JobRecord:
        """Transition a job's state machine and log the transition.

        ``running`` stamps ``started``; terminal states stamp
        ``finished``.  The state event's message is the new state, plus
        ``detail`` (or the error message, for failures) after a colon.
        """
        if state not in JOB_STATES:
            raise ConfigurationError(f"unknown job state {state!r}")
        with self._lock:
            record = self._load(job_id)
            record.state = state
            if state == "running":
                record.started = time.time()
            if state in TERMINAL_STATES:
                record.finished = time.time()
            if error is not None:
                record.error = error
            if result_ref is not None:
                record.result_ref = result_ref
            self._write_state(record)
            message = state
            if detail is None and error is not None:
                detail = f"{error.get('type', 'Error')}: {error.get('message', '')}"
            if detail:
                message = f"{state}: {detail}"
            self.append_event(job_id, "state", message)
        return record

    def append_event(self, job_id: str, kind: str, message: str) -> Event:
        """Append one event to the job's NDJSON log."""
        return self.events(job_id).append(kind, message)

    def events(self, job_id: str) -> EventLog:
        """The job's event log (one shared :class:`EventLog` per id)."""
        with self._lock:
            log = self._logs.get(job_id)
            if log is None:
                log = EventLog(self._job_dir(job_id) / "events.ndjson")
                self._logs[job_id] = log
            return log

    def _result_path(self, key: str) -> Path:
        """Where ``key``'s shared result document lives."""
        return self.root / "results" / f"{key}.json"

    def put_result(self, key: str, document: str) -> str:
        """Atomically store a result document; returns its store-relative ref."""
        path = self._result_path(key)
        _atomic_write(path, document)
        return str(path.relative_to(self.root))

    def load_result(self, ref: str) -> str:
        """Read a result document by the ref recorded on the job."""
        return (self.root / ref).read_text(encoding="utf-8")

    def has_result(self, key: str) -> bool:
        """Whether ``key``'s shared result document exists."""
        return self._result_path(key).is_file()

    def result_ref(self, key: str) -> str:
        """The store-relative ref ``key``'s document lives under."""
        return str(self._result_path(key).relative_to(self.root))

    def find_by_key(self, key: str) -> "str | None":
        """Look up the dedupe index; ``None`` when the key is unbound."""
        try:
            return (self.root / "index" / key).read_text(encoding="utf-8").strip()
        except OSError:
            return None

    def bind_key(self, key: str, job_id: str) -> None:
        """Atomically bind ``key`` to ``job_id`` in the dedupe index."""
        _atomic_write(self.root / "index" / key, job_id)

    def recover(self) -> list[str]:
        """Repair the state machine after a restart; return jobs to enqueue.

        ``running`` jobs are orphans of the previous process: if their
        key's result document exists the job completed but the state
        write was lost — mark it ``done``; otherwise reset it to
        ``queued`` for re-execution.  All ``queued`` jobs (recovered or
        not) are returned oldest-first for the worker pool, so no job is
        ever stranded in a non-terminal state without an owner.
        """
        to_enqueue: list[str] = []
        with self._lock:
            for record in self.list_jobs():
                if record.state == "running":
                    if self.has_result(record.key):
                        self.set_state(
                            record.job_id,
                            "done",
                            result_ref=self.result_ref(record.key),
                            detail="recovered: result found after restart",
                        )
                    else:
                        self.set_state(
                            record.job_id,
                            "queued",
                            detail="recovered: re-queued after restart",
                        )
                        to_enqueue.append(record.job_id)
                elif record.state == "queued":
                    to_enqueue.append(record.job_id)
        return to_enqueue

    def counts(self) -> dict:
        """Job totals per state (the health endpoint's summary)."""
        totals = {state: 0 for state in JOB_STATES}
        for record in self.list_jobs():
            totals[record.state] = totals.get(record.state, 0) + 1
        return totals
