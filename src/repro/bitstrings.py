"""Bit-string algebra used throughout the paper (Section 1.5).

Bit strings are represented as one-dimensional ``numpy`` arrays of dtype
``bool``.  This module provides the paper's notation as named functions:

* ``weight(s)`` — the number of ones ``1(s)`` (Definition 2);
* ``d_intersects(s, t, d)`` — whether ``1(s ∧ t) ≥ d`` (Definition 2);
* ``superimpose(S)`` — the bitwise OR ``∨(S)`` of a set of strings;
* ``ones_positions(s)`` — the positions ``1_i(s)`` of the ones (Notation 7);
* conversions to/from integers, plus constant-weight sampling used by the
  beep-code construction of Theorem 4.

All functions treat inputs as immutable and return fresh arrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "BitString",
    "zeros",
    "ones",
    "from_bits",
    "from_int",
    "to_int",
    "to_01_string",
    "from_01_string",
    "weight",
    "intersection_weight",
    "d_intersects",
    "hamming",
    "superimpose",
    "ones_positions",
    "complement",
    "random_bitstring",
    "random_constant_weight",
    "subsequence_at",
]

#: Type alias for a bit string: a 1-D boolean numpy array.
BitString = np.ndarray


def zeros(length: int) -> BitString:
    """Return the all-zeros string of the given length."""
    if length < 0:
        raise ConfigurationError(f"bit string length must be >= 0, got {length}")
    return np.zeros(length, dtype=bool)


def ones(length: int) -> BitString:
    """Return the all-ones string of the given length."""
    if length < 0:
        raise ConfigurationError(f"bit string length must be >= 0, got {length}")
    return np.ones(length, dtype=bool)


def from_bits(bits: Iterable[int]) -> BitString:
    """Build a bit string from an iterable of 0/1 values."""
    return np.asarray(list(bits), dtype=bool)


def from_int(value: int, length: int) -> BitString:
    """Encode ``value`` as a little-endian bit string of ``length`` bits.

    Raises :class:`ConfigurationError` if ``value`` does not fit.
    """
    if value < 0:
        raise ConfigurationError(f"cannot encode negative value {value}")
    if length < 0 or (value >> length) != 0:
        raise ConfigurationError(f"value {value} does not fit in {length} bits")
    out = np.zeros(length, dtype=bool)
    for position in range(length):
        if value == 0:
            break
        if value & 1:
            out[position] = True
        value >>= 1
    return out


def to_int(bits: BitString) -> int:
    """Decode a little-endian bit string back to an integer."""
    value = 0
    for position in np.flatnonzero(bits):
        value |= 1 << int(position)
    return value


def to_01_string(bits: BitString) -> str:
    """Render a bit string as a ``'0'``/``'1'`` text string (index 0 first)."""
    return "".join("1" if bit else "0" for bit in bits)


def from_01_string(text: str) -> BitString:
    """Parse a ``'0'``/``'1'`` text string into a bit string."""
    if set(text) - {"0", "1"}:
        raise ConfigurationError(f"invalid characters in bit string literal: {text!r}")
    return np.frombuffer(text.encode("ascii"), dtype=np.uint8) == ord("1")


def weight(bits: BitString) -> int:
    """Return ``1(s)``: the number of ones in the string (Definition 2)."""
    return int(np.count_nonzero(bits))


def intersection_weight(first: BitString, second: BitString) -> int:
    """Return ``1(s ∧ s')``: the number of shared one-positions."""
    _check_same_length(first, second)
    return int(np.count_nonzero(first & second))


def d_intersects(first: BitString, second: BitString, d: int) -> bool:
    """Return whether ``first`` ``d``-intersects ``second`` (Definition 2).

    That is, whether ``1(first ∧ second) ≥ d``.
    """
    return intersection_weight(first, second) >= d


def hamming(first: BitString, second: BitString) -> int:
    """Return the Hamming distance between two equal-length strings."""
    _check_same_length(first, second)
    return int(np.count_nonzero(first ^ second))


def superimpose(strings: Sequence[BitString] | Iterable[BitString]) -> BitString:
    """Return ``∨(S)``: the bitwise OR of all strings in ``S``.

    An empty collection is invalid because the length would be unknown.
    """
    iterator = iter(strings)
    try:
        result = next(iterator).copy()
    except StopIteration:
        raise ConfigurationError("cannot superimpose an empty collection") from None
    for string in iterator:
        _check_same_length(result, string)
        result |= string
    return result


def ones_positions(bits: BitString) -> np.ndarray:
    """Return the sorted positions of ones, so ``1_i(s) = result[i-1]``.

    Notation 7 of the paper indexes ones from 1; this returns a 0-indexed
    array of the same positions.
    """
    return np.flatnonzero(bits)


def complement(bits: BitString) -> BitString:
    """Return ``¬s``, the bitwise complement."""
    return ~bits


def random_bitstring(rng: np.random.Generator, length: int) -> BitString:
    """Sample a uniformly random bit string of the given length."""
    return rng.integers(0, 2, size=length, dtype=np.uint8).astype(bool)


def random_constant_weight(
    rng: np.random.Generator, length: int, num_ones: int
) -> BitString:
    """Sample uniformly from the strings of ``length`` bits with ``num_ones`` ones.

    This is the codeword distribution used in the proof of Theorem 4.
    """
    if not 0 <= num_ones <= length:
        raise ConfigurationError(
            f"constant weight {num_ones} invalid for length {length}"
        )
    out = np.zeros(length, dtype=bool)
    positions = rng.choice(length, size=num_ones, replace=False)
    out[positions] = True
    return out


def subsequence_at(bits: BitString, positions: np.ndarray) -> BitString:
    """Return the subsequence of ``bits`` read at the given positions.

    Used for extracting ``y_{v,w}`` from a heard string at the one-positions
    of a beep codeword (Section 4).
    """
    if len(positions) and (positions.min() < 0 or positions.max() >= len(bits)):
        raise ConfigurationError("subsequence positions out of range")
    return bits[positions]


def _check_same_length(first: BitString, second: BitString) -> None:
    if first.shape != second.shape:
        raise ConfigurationError(
            f"bit string length mismatch: {first.shape[0]} vs {second.shape[0]}"
        )
