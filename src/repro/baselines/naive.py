"""Naive sequential simulation: one slot per node, round-robin by index.

The folklore baseline: node ``v`` transmits its message bitwise in global
slot ``v`` while everyone else listens.  Always correct in the noiseless
model and trivially noise-hardened by repetition, but its overhead is
``n (B+1) ρ`` — linear in the network size rather than the degree.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..beeping.batch import run_schedule
from ..beeping.noise import NoiseModel
from ..errors import ConfigurationError
from ..graphs import Topology
from .tdma import TDMAOutcome

__all__ = ["simulate_round_naive"]


def simulate_round_naive(
    topology: Topology,
    messages: Sequence[int | None],
    message_bits: int,
    channel: NoiseModel | None = None,
    repetitions: int = 1,
    start_round: int = 0,
) -> TDMAOutcome:
    """Simulate one Broadcast CONGEST round with per-node time slots.

    Identical slot layout to the TDMA baseline (presence bit + ``B``
    message bits, each repeated ρ times) but with ``n`` slots instead of
    ``num_colors``.
    """
    n = topology.num_nodes
    if len(messages) != n:
        raise ConfigurationError(f"got {len(messages)} messages for {n} nodes")
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    slot_bits = message_bits + 1
    total_rounds = n * slot_bits * repetitions
    schedule = np.zeros((n, total_rounds), dtype=bool)
    for v in range(n):
        message = messages[v]
        if message is None:
            continue
        pattern = np.zeros(slot_bits, dtype=bool)
        pattern[0] = True
        for bit in range(message_bits):
            pattern[1 + bit] = bool((message >> bit) & 1)
        start = v * slot_bits * repetitions
        schedule[v, start : start + slot_bits * repetitions] = np.repeat(
            pattern, repetitions
        )
    heard = run_schedule(topology, schedule, channel, start_round=start_round)

    neighbor_sets = [set(int(u) for u in topology.neighbors[v]) for v in range(n)]
    decoded: list[list[int]] = []
    for v in range(n):
        found: list[int] = []
        for u in sorted(neighbor_sets[v]):
            start = u * slot_bits * repetitions
            slot = heard[v, start : start + slot_bits * repetitions]
            votes = slot.reshape(slot_bits, repetitions).sum(axis=1)
            bits = votes * 2 > repetitions
            if not bits[0]:
                continue
            value = 0
            for bit in range(message_bits):
                if bits[1 + bit]:
                    value |= 1 << bit
            found.append(value)
        decoded.append(sorted(found))
    truth = [
        sorted(
            messages[int(u)]  # type: ignore[arg-type]
            for u in topology.neighbors[v]
            if messages[int(u)] is not None
        )
        for v in range(n)
    ]
    per_node_success = np.asarray(
        [decoded[v] == truth[v] for v in range(n)], dtype=bool
    )
    return TDMAOutcome(
        decoded=decoded,
        per_node_success=per_node_success,
        success=bool(per_node_success.all()),
        beep_rounds_used=total_rounds,
    )
