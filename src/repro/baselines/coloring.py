"""Greedy distance-2 colouring — the setup object of [7] and [4].

Both prior simulations sequence transmissions by a colouring of ``G²``
(no two nodes within distance 2 share a colour), so each listener has at
most one transmitting neighbour per colour class.  Greedy colouring in ID
order uses at most ``Δ² + 1`` colours — the ``min{n, Δ²}`` factor in [4]'s
overhead.

This is computed centrally: the distributed setup cost (``Δ⁶`` rounds in
[7], ``Δ⁴ log n`` in [4]) is accounted analytically via
:mod:`~repro.baselines.formulas`, since reproducing the prior papers'
setup protocols is out of scope (see DESIGN.md).
"""

from __future__ import annotations

from ..graphs import Topology

__all__ = ["greedy_distance2_coloring"]


def greedy_distance2_coloring(topology: Topology) -> list[int]:
    """Colour ``G²`` greedily; returns one colour per node.

    Guarantees: adjacent nodes and nodes with a common neighbour receive
    distinct colours; at most ``Δ² + 1`` colours are used.
    """
    n = topology.num_nodes
    colors: list[int] = [-1] * n
    for v in range(n):
        forbidden = set()
        for u in topology.neighbors[v]:
            u = int(u)
            if colors[u] >= 0:
                forbidden.add(colors[u])
            for w in topology.neighbors[u]:
                w = int(w)
                if w != v and colors[w] >= 0:
                    forbidden.add(colors[w])
        color = 0
        while color in forbidden:
            color += 1
        colors[v] = color
    return colors
