"""Ashkenazi–Gelles–Leshem-style noisy TDMA simulator (the [4] baseline).

Runs whole Broadcast CONGEST algorithms over colour-class TDMA with
per-bit repetition, mirroring :class:`repro.core.BeepSimulator`'s interface
so experiment E8 can race the two simulators on identical workloads.

The per-round overhead is ``num_colors · (B+1) · ρ`` with
``num_colors ≤ min{n, Δ²+1}`` and ``ρ = Θ(log n)`` under noise — the
``O(Δ log n · min{n, Δ²})`` of [4], versus this paper's ``O(Δ log n)``.
The prior works' distributed setup phases (``Δ⁶`` rounds in [7],
``Δ⁴ log n`` in [4]) are accounted analytically in
:mod:`~repro.baselines.formulas`.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..beeping.noise import BernoulliNoise, NoiseModel, NoiselessChannel
from ..congest.algorithm import BroadcastCongestAlgorithm
from ..congest.context import NodeContext
from ..congest.model import check_message
from ..core.stats import SimulationStats
from ..core.transpiler import TranspiledRunResult
from ..errors import ConfigurationError
from ..graphs import Topology
from ..rng import derive_rng, derive_seed
from .coloring import greedy_distance2_coloring
from .tdma import simulate_round_tdma

__all__ = ["agl_repetitions", "TDMABroadcastSimulator"]


def agl_repetitions(num_nodes: int, eps: float, beta: int = 4) -> int:
    """The repetition factor ``ρ = β log₂ n`` the noisy regime needs.

    ``beta`` scales with how small a failure probability is required; the
    default mirrors the practical preset philosophy of
    :func:`repro.core.practical_c`.
    """
    if eps == 0.0:
        return 1
    return max(1, beta * math.ceil(math.log2(max(2, num_nodes))))


class TDMABroadcastSimulator:
    """Runs Broadcast CONGEST algorithms over colour-class TDMA beeping.

    Interface-compatible with :class:`repro.core.BeepSimulator` for the
    ``run_broadcast_congest`` entry point.
    """

    def __init__(
        self,
        topology: Topology,
        message_bits: int,
        eps: float = 0.0,
        seed: int = 0,
        ids: Sequence[int] | None = None,
        repetitions: int | None = None,
    ) -> None:
        n = topology.num_nodes
        if n < 2:
            raise ConfigurationError("simulation needs at least 2 nodes")
        if ids is None:
            ids = list(range(n))
        if len(ids) != n or len(set(ids)) != n:
            raise ConfigurationError("ids must be unique, one per node")
        self._topology = topology
        self._message_bits = message_bits
        self._seed = seed
        self._ids = list(ids)
        self._coloring = greedy_distance2_coloring(topology)
        self._num_colors = max(self._coloring) + 1
        if repetitions is None:
            repetitions = agl_repetitions(n, eps)
        self._repetitions = repetitions
        self._channel: NoiseModel
        if eps == 0.0:
            self._channel = NoiselessChannel()
        else:
            self._channel = BernoulliNoise(eps, seed=derive_seed(seed, "tdma-noise"))

    @property
    def num_colors(self) -> int:
        """Colour classes in the greedy ``G²`` colouring."""
        return self._num_colors

    @property
    def repetitions(self) -> int:
        """Per-bit repetition factor ρ."""
        return self._repetitions

    @property
    def overhead(self) -> int:
        """Beeping rounds per simulated Broadcast CONGEST round."""
        return self._num_colors * (self._message_bits + 1) * self._repetitions

    def run_broadcast_congest(
        self,
        algorithms: Sequence[BroadcastCongestAlgorithm],
        max_rounds: int,
    ) -> TranspiledRunResult:
        """Drive the algorithms, one TDMA-simulated round per BC round."""
        n = self._topology.num_nodes
        if len(algorithms) != n:
            raise ConfigurationError(f"got {len(algorithms)} algorithms for {n} nodes")
        for index, algorithm in enumerate(algorithms):
            algorithm.setup(self._context(index))
        stats = SimulationStats()
        round_offset = 0
        for round_index in range(max_rounds):
            if all(a.finished for a in algorithms):
                break
            broadcasts: list[int | None] = []
            for algorithm in algorithms:
                message = None if algorithm.finished else algorithm.broadcast(round_index)
                if message is not None:
                    check_message(message, self._message_bits)
                broadcasts.append(message)
            outcome = simulate_round_tdma(
                self._topology,
                broadcasts,
                self._coloring,
                self._message_bits,
                channel=self._channel,
                repetitions=self._repetitions,
                start_round=round_offset,
            )
            round_offset += outcome.beep_rounds_used
            stats.record_round(
                beep_rounds=outcome.beep_rounds_used,
                success=outcome.success,
                phase1_errors=0,
                phase2_errors=int((~outcome.per_node_success).sum()),
                r_collision=False,
            )
            for index, algorithm in enumerate(algorithms):
                if not algorithm.finished:
                    algorithm.receive(round_index, list(outcome.decoded[index]))
        return TranspiledRunResult(
            outputs=[a.output() for a in algorithms],
            finished=all(a.finished for a in algorithms),
            stats=stats,
        )

    def _context(self, index: int) -> NodeContext:
        return NodeContext(
            index=index,
            node_id=self._ids[index],
            num_nodes=self._topology.num_nodes,
            max_degree=self._topology.max_degree,
            degree=int(self._topology.degrees[index]),
            message_bits=self._message_bits,
            rng=derive_rng(self._seed, "node-local", index),
            neighbor_ids=None,
        )
