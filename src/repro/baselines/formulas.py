"""Analytic overhead landscape (Sections 1.2–1.3 of the paper).

Round-complexity formulas, with leading constants set to 1, for the three
generations of message-passing simulation in beeping models:

========================  =========================  ====================
work                      setup rounds               per-round overhead
========================  =========================  ====================
Beauquier et al. [7]      ``Δ⁶``                     ``Δ⁴ log n``
Ashkenazi et al. [4]      ``Δ⁴ log n``               ``Δ log n · min{n, Δ²}``
this paper (Thm. 11)      0                          ``Δ log n``
this paper, CONGEST       0                          ``Δ² log n``
========================  =========================  ====================

Experiment E15 prints this landscape over an ``(n, Δ)`` grid; E8 compares
the *measured* overheads of the implemented simulators against these
shapes.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = [
    "beauquier_setup",
    "beauquier_overhead",
    "agl_setup",
    "agl_overhead",
    "ours_broadcast_overhead",
    "ours_congest_overhead",
]


def _check(num_nodes: int, delta: int) -> float:
    if num_nodes < 2:
        raise ConfigurationError("num_nodes must be >= 2")
    if delta < 1:
        raise ConfigurationError("delta must be >= 1")
    return math.log2(num_nodes)


def beauquier_setup(num_nodes: int, delta: int) -> float:
    """Setup rounds of the [7] simulation: ``Δ⁶``."""
    _check(num_nodes, delta)
    return float(delta**6)


def beauquier_overhead(num_nodes: int, delta: int) -> float:
    """Per-CONGEST-round overhead of [7]: ``Δ⁴ log n``."""
    return delta**4 * _check(num_nodes, delta)


def agl_setup(num_nodes: int, delta: int) -> float:
    """Setup rounds of the [4] simulation: ``Δ⁴ log n``."""
    return delta**4 * _check(num_nodes, delta)


def agl_overhead(num_nodes: int, delta: int) -> float:
    """Per-CONGEST-round overhead of [4]: ``Δ log n · min{n, Δ²}``."""
    log_n = _check(num_nodes, delta)
    return delta * log_n * min(num_nodes, delta * delta)


def ours_broadcast_overhead(num_nodes: int, delta: int) -> float:
    """Per-Broadcast-CONGEST-round overhead of Theorem 11: ``Δ log n``."""
    return delta * _check(num_nodes, delta)


def ours_congest_overhead(num_nodes: int, delta: int) -> float:
    """Per-CONGEST-round overhead of Corollary 12: ``Δ² log n``."""
    return delta * delta * _check(num_nodes, delta)
