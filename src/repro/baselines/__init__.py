"""Prior-work baselines the paper improves on (Sections 1.2 and 1.4).

* :func:`greedy_distance2_coloring` — the ``G²`` colouring both prior
  simulations sequence transmissions with;
* :func:`simulate_round_tdma` / :class:`TDMABroadcastSimulator` — the
  colour-class TDMA simulation in the style of Beauquier et al. [7]
  (noiseless) and Ashkenazi–Gelles–Leshem [4] (noisy, with per-bit
  repetition + majority);
* :func:`simulate_round_naive` — sequential round-robin by node index;
* :mod:`~repro.baselines.formulas` — the analytic overhead landscape
  ([7] vs [4] vs this paper).
"""

from .coloring import greedy_distance2_coloring
from .tdma import TDMAOutcome, simulate_round_tdma, tdma_round_length
from .agl import TDMABroadcastSimulator, agl_repetitions
from .naive import simulate_round_naive
from .formulas import (
    agl_overhead,
    agl_setup,
    beauquier_overhead,
    beauquier_setup,
    ours_broadcast_overhead,
    ours_congest_overhead,
)

__all__ = [
    "greedy_distance2_coloring",
    "TDMAOutcome",
    "simulate_round_tdma",
    "tdma_round_length",
    "TDMABroadcastSimulator",
    "agl_repetitions",
    "simulate_round_naive",
    "agl_overhead",
    "agl_setup",
    "beauquier_overhead",
    "beauquier_setup",
    "ours_broadcast_overhead",
    "ours_congest_overhead",
]
