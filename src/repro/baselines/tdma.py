"""Colour-class TDMA simulation of a Broadcast CONGEST round.

The prior-work approach (Section 1.4): iterate through the colour classes
of a ``G²`` colouring; nodes in the active class transmit their message
bitwise (beep = 1, silence = 0) while everyone else listens.  Because no
listener has two neighbours in one class, each slot delivers one message
undisturbed.

Slot layout per colour class: one *presence* bit (so listeners distinguish
"no neighbour in this class / silent neighbour" from an all-zeros message)
followed by the ``B`` message bits; with ``repetitions = ρ > 1`` every bit
is sent ρ times and decoded by majority — the Ashkenazi–Gelles–Leshem [4]
noise defence.  Round count: ``num_colors · (B + 1) · ρ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..beeping.batch import run_schedule
from ..beeping.noise import NoiseModel
from ..errors import ConfigurationError
from ..graphs import Topology

__all__ = ["TDMAOutcome", "tdma_round_length", "simulate_round_tdma"]


@dataclass(frozen=True)
class TDMAOutcome:
    """Result of one TDMA-simulated Broadcast CONGEST round.

    Mirrors :class:`repro.core.RoundOutcome` where it overlaps, so the E8
    comparison can treat the two simulators uniformly.
    """

    decoded: list[list[int]]
    per_node_success: np.ndarray
    success: bool
    beep_rounds_used: int


def tdma_round_length(
    num_colors: int, message_bits: int, repetitions: int
) -> int:
    """Beeping rounds one TDMA-simulated round takes."""
    return num_colors * (message_bits + 1) * repetitions


def simulate_round_tdma(
    topology: Topology,
    messages: Sequence[int | None],
    coloring: Sequence[int],
    message_bits: int,
    channel: NoiseModel | None = None,
    repetitions: int = 1,
    start_round: int = 0,
) -> TDMAOutcome:
    """Simulate one Broadcast CONGEST round by colour-class TDMA.

    Parameters
    ----------
    topology:
        The network.
    messages:
        Per node, the message to broadcast (``None`` = silent).
    coloring:
        A distance-2 colouring (from
        :func:`~repro.baselines.coloring.greedy_distance2_coloring`).
    message_bits:
        Message width ``B``.
    channel:
        Noise model (noiseless by default — the [7] regime; under noise
        use ``repetitions > 1`` for the [4] regime).
    repetitions:
        Per-bit repetition factor ρ (majority decoding).
    start_round:
        Global round offset keying the noise stream.
    """
    n = topology.num_nodes
    if len(messages) != n or len(coloring) != n:
        raise ConfigurationError("messages and coloring must have one entry per node")
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    _check_distance2(topology, coloring)
    num_colors = max(coloring) + 1 if n else 0
    slot_bits = message_bits + 1
    total_rounds = tdma_round_length(num_colors, message_bits, repetitions)

    schedule = np.zeros((n, total_rounds), dtype=bool)
    for v in range(n):
        message = messages[v]
        if message is None:
            continue
        slot_start = coloring[v] * slot_bits * repetitions
        pattern = np.zeros(slot_bits, dtype=bool)
        pattern[0] = True  # presence bit
        for bit in range(message_bits):
            pattern[1 + bit] = bool((message >> bit) & 1)
        schedule[v, slot_start : slot_start + slot_bits * repetitions] = np.repeat(
            pattern, repetitions
        )

    heard = run_schedule(topology, schedule, channel, start_round=start_round)

    decoded: list[list[int]] = []
    own_color = list(coloring)
    for v in range(n):
        found: list[int] = []
        for color in range(num_colors):
            if color == own_color[v]:
                # The node transmits (or at least owns) this slot; it has no
                # neighbour of its own colour, so nothing to decode here.
                continue
            slot_start = color * slot_bits * repetitions
            slot = heard[v, slot_start : slot_start + slot_bits * repetitions]
            votes = slot.reshape(slot_bits, repetitions).sum(axis=1)
            bits = votes * 2 > repetitions
            if not bits[0]:
                continue  # no (participating) neighbour in this class
            value = 0
            for bit in range(message_bits):
                if bits[1 + bit]:
                    value |= 1 << bit
            found.append(value)
        decoded.append(sorted(found))

    truth = [
        sorted(
            messages[int(u)]  # type: ignore[arg-type]
            for u in topology.neighbors[v]
            if messages[int(u)] is not None
        )
        for v in range(n)
    ]
    per_node_success = np.asarray(
        [decoded[v] == truth[v] for v in range(n)], dtype=bool
    )
    return TDMAOutcome(
        decoded=decoded,
        per_node_success=per_node_success,
        success=bool(per_node_success.all()),
        beep_rounds_used=total_rounds,
    )


def _check_distance2(topology: Topology, coloring: Sequence[int]) -> None:
    for v in range(topology.num_nodes):
        seen: dict[int, int] = {}
        for u in topology.neighbors[v]:
            u = int(u)
            color = coloring[u]
            if color in seen:
                raise ConfigurationError(
                    f"colouring is not distance-2: neighbours {seen[color]} and "
                    f"{u} of node {v} share colour {color}"
                )
            seen[color] = u
        if coloring[v] in seen:
            raise ConfigurationError(
                f"colouring is not proper: node {v} shares colour with a neighbour"
            )
