"""Columnar leader election and BFS for the vectorized CONGEST runtime.

Each class re-implements its per-node counterpart
(:class:`~repro.algorithms.leader_election.LeaderElectionBC`,
:class:`~repro.algorithms.bfs.BFSTreeBC`) with whole-network numpy
state, preserving the reference semantics exactly: which nodes
broadcast each round, what they send, and how state evolves — so a
vectorized run's :class:`~repro.congest.network.RunResult` (outputs,
rounds used, messages sent) is bit-identical to the reference engine's
for every seed and topology.
"""

from __future__ import annotations

import numpy as np

from ..congest.context import NodeContext  # noqa: F401  (docs cross-reference)
from ..congest.model import required_bits
from ..congest.vectorized import (
    VectorContext,
    VectorizedBroadcastAlgorithm,
    WordCodec,
    inbox_receivers,
)
from ..errors import ConfigurationError

__all__ = ["VectorizedLeaderElection", "VectorizedBFSTree"]


class VectorizedLeaderElection(VectorizedBroadcastAlgorithm):
    """Max-ID flooding leader election with columnar state.

    Mirrors :class:`~repro.algorithms.leader_election.LeaderElectionBC`:
    every node re-broadcasts the best ID it knows whenever it improved,
    and terminates after ``horizon`` rounds.
    """

    def __init__(self, horizon: int) -> None:
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self._horizon = horizon

    def setup(self, net: VectorContext) -> None:
        """Initialise the best-known-ID and changed columns."""
        super().setup(net)
        if required_bits(int(net.ids.max()) + 1) > net.message_bits:
            raise ConfigurationError("node ID does not fit the message budget")
        self._best = net.ids.copy()
        self._changed = np.ones(net.num_nodes, dtype=bool)
        self._rounds_seen = 0

    def broadcast_step(self, round_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Broadcast the best-known ID wherever it changed last round."""
        active = self._changed & ~self.finished_mask()
        self._changed = self._changed & ~active
        return self._best, active

    def receive_step(
        self, round_index: int, inbox_indptr: np.ndarray, inbox: np.ndarray
    ) -> None:
        """Fold the neighbour maxima into the best-known-ID column."""
        incoming = np.full(self.net.num_nodes, -1, dtype=np.int64)
        np.maximum.at(
            incoming, inbox_receivers(inbox_indptr), inbox[:, 0].astype(np.int64)
        )
        improved = incoming > self._best
        self._best = np.where(improved, incoming, self._best)
        self._changed |= improved
        self._rounds_seen += 1

    def finished_mask(self) -> np.ndarray:
        """Every node terminates in lock-step after ``horizon`` rounds."""
        return np.full(
            self.net.num_nodes, self._rounds_seen >= self._horizon, dtype=bool
        )

    def outputs(self) -> list[object]:
        """The elected leader's ID per node."""
        return [int(best) for best in self._best]


class VectorizedBFSTree(VectorizedBroadcastAlgorithm):
    """Layer-synchronous BFS flooding with columnar state.

    Mirrors :class:`~repro.algorithms.bfs.BFSTreeBC`: a node discovered
    at distance ``d`` announces ``⟨ID, d⟩`` in round ``d`` and ceases
    the same round; undiscovered nodes hearing a round-``d``
    announcement adopt distance ``d + 1`` and the smallest announcing
    ID as parent.
    """

    def __init__(self, root: int, id_bits: int, depth_bits: int) -> None:
        self._root = root
        self._id_bits = id_bits
        self._depth_bits = depth_bits

    def setup(self, net: VectorContext) -> None:
        """Initialise distance/parent columns and the message codec."""
        super().setup(net)
        self._codec = WordCodec(
            [("node", self._id_bits), ("depth", self._depth_bits)]
        )
        if self._codec.width > net.message_bits:
            raise ConfigurationError(
                f"BFS needs {self._codec.width}-bit messages, budget is "
                f"{net.message_bits}"
            )
        n = net.num_nodes
        self._distance = np.full(n, -1, dtype=np.int64)
        self._distance[self._root] = 0
        self._parent = np.full(n, -1, dtype=np.int64)
        self._announced = np.zeros(n, dtype=bool)
        self._ceased = np.zeros(n, dtype=bool)

    def broadcast_step(self, round_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Announce ``⟨ID, distance⟩`` for this round's frontier."""
        active = (
            ~self._ceased
            & ~self._announced
            & (self._distance >= 0)
            & (self._distance <= round_index)
        )
        self._announced |= active
        messages = self._codec.pack(
            self.net.num_nodes,
            node=self.net.ids.astype(np.uint64),
            depth=np.maximum(self._distance, 0).astype(np.uint64),
        )
        return messages, active

    def receive_step(
        self, round_index: int, inbox_indptr: np.ndarray, inbox: np.ndarray
    ) -> None:
        """Retire announced nodes; let undiscovered nodes adopt a layer."""
        cease_now = ~self._ceased & self._announced
        receivers = inbox_receivers(inbox_indptr)
        node = self._codec.unpack(inbox, "node")
        depth = self._codec.unpack(inbox, "depth")
        adopter = (
            (self._distance[receivers] < 0)
            & ~self._ceased[receivers]
            & (depth == np.uint64(round_index))
        )
        best_parent = np.full(self.net.num_nodes, np.iinfo(np.int64).max, np.int64)
        np.minimum.at(
            best_parent, receivers[adopter], node[adopter].astype(np.int64)
        )
        discovered = best_parent < np.iinfo(np.int64).max
        self._distance = np.where(
            discovered, np.int64(round_index + 1), self._distance
        )
        self._parent = np.where(discovered, best_parent, self._parent)
        self._ceased |= cease_now

    def finished_mask(self) -> np.ndarray:
        """Nodes cease one receive after announcing; unreachable never do."""
        return self._ceased

    def outputs(self) -> list[object]:
        """``(distance, parent_id)`` per node; ``(-1, None)`` unreachable."""
        return [
            (
                int(self._distance[v]),
                None if self._parent[v] < 0 else int(self._parent[v]),
            )
            for v in range(self.net.num_nodes)
        ]
