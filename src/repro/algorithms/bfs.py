"""BFS tree construction in Broadcast CONGEST.

Layer-synchronous flooding from a root: a node discovered at distance ``d``
broadcasts ``⟨ID, d⟩`` in round ``d``; undiscovered nodes hearing an
announcement adopt distance ``d + 1`` and the smallest announcing ID as
parent.  Terminates in eccentricity(root) + 1 rounds; unreachable nodes
report distance ``-1``.
"""

from __future__ import annotations

from typing import Sequence

from ..congest.algorithm import BroadcastCongestAlgorithm
from ..congest.context import NodeContext
from ..congest.model import MessageCodec, required_bits
from ..congest.network import BroadcastCongestNetwork, RunResult
from ..congest.runtime import resolve_runtime
from ..congest.vectorized import VectorizedBroadcastNetwork
from ..errors import ConfigurationError
from ..graphs import Topology

__all__ = ["BFSTreeBC", "bfs_field_widths", "make_bfs_algorithms", "run_bfs_bc"]


def bfs_field_widths(
    num_nodes: int, ids: "Sequence[int] | None" = None
) -> tuple[int, int]:
    """The BFS codec's ``(id_bits, depth_bits)`` — the one budget source.

    Shared by :func:`make_bfs_algorithms`, the vectorized runtime and
    the sweep workloads, so the runtimes can never disagree on the
    message budget for the same run.
    """
    max_id = max(ids) if ids is not None else num_nodes - 1
    return required_bits(max_id + 1), required_bits(max(2, num_nodes))


class BFSTreeBC(BroadcastCongestAlgorithm):
    """One node of the layered BFS algorithm.

    Parameters
    ----------
    is_root:
        Whether this node is the BFS root.
    id_bits, depth_bits:
        Field widths for the announcement codec.
    """

    def __init__(self, is_root: bool, id_bits: int, depth_bits: int) -> None:
        self._is_root = is_root
        self._id_bits = id_bits
        self._depth_bits = depth_bits
        self._distance: int | None = 0 if is_root else None
        self._parent: int | None = None
        self._announced = False
        self._ceased = False

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        self._codec = MessageCodec(
            [("node", self._id_bits), ("depth", self._depth_bits)]
        )
        if self._codec.width > ctx.message_bits:
            raise ConfigurationError(
                f"BFS needs {self._codec.width}-bit messages, budget is "
                f"{ctx.message_bits}"
            )

    def broadcast(self, round_index: int) -> int | None:
        """Announce ``⟨ID, distance⟩`` once, in the distance's round."""
        if self._ceased:
            return None
        if (
            self._distance is not None
            and not self._announced
            and round_index >= self._distance
        ):
            self._announced = True
            return self._codec.pack(node=self.ctx.node_id, depth=self._distance)
        return None

    def receive(self, round_index: int, messages: list[int]) -> None:
        """Adopt the smallest announcing neighbour as parent when discovered."""
        if self._ceased:
            return
        if self._announced:
            # One round after announcing, the node's role is complete.
            self._ceased = True
            return
        if self._distance is not None:
            return
        announcers = [
            fields
            for fields in map(self._codec.unpack, messages)
            if fields["depth"] == round_index
        ]
        if announcers:
            self._distance = round_index + 1
            self._parent = min(fields["node"] for fields in announcers)

    @property
    def finished(self) -> bool:
        return self._ceased

    def output(self) -> tuple[int, int | None]:
        """``(distance, parent_id)``; ``(-1, None)`` when unreachable."""
        if self._distance is None:
            return (-1, None)
        return (self._distance, self._parent)


def make_bfs_algorithms(
    topology: Topology, root: int, ids: Sequence[int] | None = None
) -> tuple[list[BFSTreeBC], int]:
    """Build per-node BFS algorithms plus the budget they need."""
    n = topology.num_nodes
    if not 0 <= root < n:
        raise ConfigurationError(f"root {root} out of range for {n} nodes")
    if ids is None:
        ids = list(range(n))
    id_bits, depth_bits = bfs_field_widths(n, ids)
    budget = id_bits + depth_bits
    algorithms = [
        BFSTreeBC(is_root=(v == root), id_bits=id_bits, depth_bits=depth_bits)
        for v in range(n)
    ]
    return algorithms, budget


def run_bfs_bc(
    topology: Topology,
    root: int,
    seed: int = 0,
    ids: Sequence[int] | None = None,
    runtime: str | None = None,
) -> RunResult:
    """Run the BFS construction on a native Broadcast CONGEST network.

    ``runtime`` selects the execution engine (``"vectorized"`` /
    ``"reference"``, default the process default); both produce
    bit-identical results per seed.
    """
    n = topology.num_nodes
    if ids is None:
        ids = list(range(n))
    if resolve_runtime(runtime) == "vectorized":
        from .vectorized_basic import VectorizedBFSTree

        if not 0 <= root < n:
            raise ConfigurationError(f"root {root} out of range for {n} nodes")
        id_bits, depth_bits = bfs_field_widths(n, ids)
        network = VectorizedBroadcastNetwork(
            topology, ids=ids, message_bits=id_bits + depth_bits, seed=seed
        )
        return network.run(
            VectorizedBFSTree(root, id_bits, depth_bits), max_rounds=n + 2
        )
    algorithms, budget = make_bfs_algorithms(topology, root, ids)
    network = BroadcastCongestNetwork(
        topology, ids=ids, message_bits=budget, seed=seed
    )
    return network.run(algorithms, max_rounds=n + 2)
