"""Randomised (Δ+1)-colouring in Broadcast CONGEST.

The classical trial-and-fix scheme: each iteration, every uncoloured node
draws a candidate from its remaining palette and broadcasts
``Try⟨ID, colour⟩``; a node whose candidate conflicts with no neighbour's
candidate fixes it and broadcasts ``Fix⟨ID, colour⟩``; neighbours strike
fixed colours from their palettes.  Terminates in ``O(log n)`` iterations
w.h.p., always producing a proper colouring with ``Δ + 1`` colours.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..congest.algorithm import BroadcastCongestAlgorithm
from ..congest.context import NodeContext
from ..congest.model import MessageCodec, required_bits
from ..congest.network import BroadcastCongestNetwork, RunResult
from ..congest.runtime import resolve_runtime
from ..congest.vectorized import (
    ObjectAlgorithmsAdapter,
    VectorizedBroadcastNetwork,
)
from ..errors import ConfigurationError
from ..graphs import Topology

__all__ = ["ColoringBC", "make_coloring_algorithms", "run_coloring_bc"]

_TAG_TRY = 0
_TAG_FIX = 1

_PHASES = 2


class ColoringBC(BroadcastCongestAlgorithm):
    """One node of the trial-and-fix (Δ+1)-colouring algorithm."""

    def __init__(
        self, id_bits: int, color_bits: int, max_iterations: int | None = None
    ) -> None:
        self._id_bits = id_bits
        self._color_bits = color_bits
        self._max_iterations = max_iterations
        self._color: int | None = None
        self._ceased = False
        self._candidate: int | None = None
        self._conflict = False
        self._palette: list[int] = []

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        self._codec = MessageCodec(
            [("tag", 1), ("node", self._id_bits), ("color", self._color_bits)]
        )
        if self._codec.width > ctx.message_bits:
            raise ConfigurationError(
                f"colouring needs {self._codec.width}-bit messages, budget is "
                f"{ctx.message_bits}"
            )
        self._palette = list(range(ctx.max_degree + 1))
        if self._max_iterations is None:
            self._max_iterations = 8 * max(
                1, math.ceil(math.log2(max(2, ctx.num_nodes)))
            ) + 8

    def broadcast(self, round_index: int) -> int | None:
        """Try a palette colour, then fix it if no neighbour conflicted."""
        if self._ceased:
            return None
        _, phase = divmod(round_index, _PHASES)
        if phase == 0:
            self._conflict = False
            self._candidate = self._palette[
                int(self.ctx.rng.integers(0, len(self._palette)))
            ]
            return self._codec.pack(
                tag=_TAG_TRY, node=self.ctx.node_id, color=self._candidate
            )
        if not self._conflict and self._candidate is not None:
            self._color = self._candidate
            return self._codec.pack(
                tag=_TAG_FIX, node=self.ctx.node_id, color=self._color
            )
        return None

    def receive(self, round_index: int, messages: list[int]) -> None:
        """Detect candidate conflicts and strike fixed colours."""
        if self._ceased:
            return
        iteration, phase = divmod(round_index, _PHASES)
        assert self._max_iterations is not None
        if iteration >= self._max_iterations:
            self._ceased = True
            return
        unpacked = [self._codec.unpack(m) for m in messages]
        if phase == 0:
            for fields in unpacked:
                if (
                    fields["tag"] == _TAG_TRY
                    and fields["color"] == self._candidate
                ):
                    self._conflict = True
        else:
            for fields in unpacked:
                if fields["tag"] == _TAG_FIX and fields["color"] in self._palette:
                    self._palette.remove(fields["color"])
            if self._color is not None:
                self._ceased = True

    @property
    def finished(self) -> bool:
        """Whether this node has fixed a colour (or hit the cap)."""
        return self._ceased

    def output(self) -> object:
        """The node's colour in ``[0, Δ]``, or ``None`` if uncoloured."""
        return self._color


def make_coloring_algorithms(
    topology: Topology, ids: Sequence[int] | None = None
) -> tuple[list[ColoringBC], int]:
    """Build per-node colouring algorithms plus the budget they need."""
    n = topology.num_nodes
    if ids is None:
        ids = list(range(n))
    id_bits = required_bits(max(ids) + 1)
    color_bits = required_bits(topology.max_degree + 1)
    budget = 1 + id_bits + color_bits
    algorithms = [
        ColoringBC(id_bits=id_bits, color_bits=color_bits) for _ in range(n)
    ]
    return algorithms, budget


def run_coloring_bc(
    topology: Topology,
    seed: int = 0,
    ids: Sequence[int] | None = None,
    runtime: str | None = None,
) -> RunResult:
    """Run the (Δ+1)-colouring on a native Broadcast CONGEST network.

    Colouring has no columnar implementation yet, so the vectorized
    runtime executes the per-node objects through the
    :class:`~repro.congest.vectorized.ObjectAlgorithmsAdapter` — results
    are bit-identical to the reference engine either way.
    """
    n = topology.num_nodes
    if ids is None:
        ids = list(range(n))
    algorithms, budget = make_coloring_algorithms(topology, ids)
    max_rounds = _PHASES * (8 * max(1, math.ceil(math.log2(max(2, n)))) + 8)
    if resolve_runtime(runtime) == "vectorized":
        network = VectorizedBroadcastNetwork(
            topology, ids=ids, message_bits=budget, seed=seed
        )
        return network.run(
            ObjectAlgorithmsAdapter(algorithms), max_rounds=max_rounds
        )
    network = BroadcastCongestNetwork(
        topology, ids=ids, message_bits=budget, seed=seed
    )
    return network.run(algorithms, max_rounds=max_rounds)
