"""Validity checkers for algorithm outputs.

Each checker takes the topology, the node-ID assignment, and the per-node
outputs (indexed by node position) and returns ``(ok, reason)`` so tests
and experiments can report *why* an output is invalid.
"""

from __future__ import annotations

from typing import Sequence

from ..graphs import Topology
from .maximal_matching import UNMATCHED

__all__ = [
    "check_matching",
    "check_mis",
    "check_coloring",
    "check_bfs_tree",
    "check_leader_election",
]


def check_matching(
    topology: Topology,
    ids: Sequence[int],
    outputs: Sequence[object],
) -> tuple[bool, str]:
    """Check the Section 6 conditions: symmetry and maximality.

    ``outputs[v]`` is either a partner ID or :data:`UNMATCHED`.
    """
    index_of_id = {node_id: index for index, node_id in enumerate(ids)}
    for v in range(topology.num_nodes):
        partner = outputs[v]
        if partner == UNMATCHED:
            continue
        if partner not in index_of_id:
            return False, f"node {ids[v]} output unknown ID {partner}"
        u = index_of_id[partner]
        if not topology.are_adjacent(u, v):
            return False, f"nodes {ids[v]} and {partner} are not adjacent"
        if outputs[u] != ids[v]:
            return (
                False,
                f"symmetry violated: {ids[v]} -> {partner} but "
                f"{partner} -> {outputs[u]}",
            )
    for u, v in topology.edges():
        if outputs[u] == UNMATCHED and outputs[v] == UNMATCHED:
            return (
                False,
                f"maximality violated: edge ({ids[u]}, {ids[v]}) has both "
                "endpoints unmatched",
            )
    return True, "ok"


def check_mis(
    topology: Topology, outputs: Sequence[object]
) -> tuple[bool, str]:
    """Check independence and maximality of an MIS output (per-node bools)."""
    for v in range(topology.num_nodes):
        if outputs[v] is None:
            return False, f"node {v} is undecided"
    for u, v in topology.edges():
        if outputs[u] and outputs[v]:
            return False, f"independence violated on edge ({u}, {v})"
    for v in range(topology.num_nodes):
        if outputs[v]:
            continue
        if not any(outputs[int(u)] for u in topology.neighbors[v]):
            return False, f"maximality violated at node {v}"
    return True, "ok"


def check_coloring(
    topology: Topology, outputs: Sequence[object], num_colors: int
) -> tuple[bool, str]:
    """Check a proper colouring with the given palette size."""
    for v in range(topology.num_nodes):
        color = outputs[v]
        if color is None:
            return False, f"node {v} is uncoloured"
        if not 0 <= int(color) < num_colors:  # type: ignore[arg-type]
            return False, f"node {v} colour {color} outside [0, {num_colors})"
    for u, v in topology.edges():
        if outputs[u] == outputs[v]:
            return False, f"edge ({u}, {v}) is monochromatic ({outputs[u]})"
    return True, "ok"


def check_leader_election(
    topology: Topology,
    ids: Sequence[int],
    outputs: Sequence[object],
) -> tuple[bool, str]:
    """Check that every node elected its connected component's maximum ID.

    Max-ID flooding cannot cross component boundaries, so on a
    disconnected topology each component agrees on its own maximum —
    which is also what the reference algorithm's horizon guarantees.
    """
    import networkx as nx

    for component in nx.connected_components(topology.graph):
        expected = max(ids[v] for v in component)
        for v in component:
            if outputs[v] != expected:
                return (
                    False,
                    f"node {ids[v]} elected {outputs[v]}, expected {expected}",
                )
    return True, "ok"


def check_bfs_tree(
    topology: Topology,
    ids: Sequence[int],
    root: int,
    outputs: Sequence[tuple[int, int | None]],
) -> tuple[bool, str]:
    """Check distances and parent pointers against true BFS distances."""
    import collections

    true_distance = {root: 0}
    queue = collections.deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in topology.neighbors[node]:
            neighbor = int(neighbor)
            if neighbor not in true_distance:
                true_distance[neighbor] = true_distance[node] + 1
                queue.append(neighbor)
    index_of_id = {node_id: index for index, node_id in enumerate(ids)}
    for v in range(topology.num_nodes):
        distance, parent = outputs[v]
        expected = true_distance.get(v, -1)
        if distance != expected:
            return False, f"node {v} distance {distance}, expected {expected}"
        if v == root:
            if parent is not None:
                return False, f"root has parent {parent}"
            continue
        if expected == -1:
            if parent is not None:
                return False, f"unreachable node {v} has parent {parent}"
            continue
        if parent not in index_of_id:
            return False, f"node {v} has unknown parent {parent}"
        parent_index = index_of_id[parent]
        if not topology.are_adjacent(v, parent_index):
            return False, f"node {v} parent {parent} is not a neighbour"
        if true_distance.get(parent_index, -1) != expected - 1:
            return False, f"node {v} parent {parent} is not one layer up"
    return True, "ok"
