"""Message-passing algorithms that run over the simulation (Section 6).

The centrepiece is :class:`MaximalMatchingBC` — the paper's Algorithm 3, an
``O(log n)``-round Broadcast CONGEST maximal matching, which Theorem 21
turns into an ``O(Δ log² n)``-round noisy-beeping algorithm via the
simulation.  The package also provides Luby's MIS, (Δ+1)-colouring, BFS
trees and leader election written against the same interface, plus output
validity checkers.
"""

from .maximal_matching import (
    MaximalMatchingBC,
    UNMATCHED,
    make_matching_algorithms,
    matching_field_widths,
    matching_message_bits,
    run_matching_bc,
)
from .luby_mis import (
    LubyMISBC,
    make_mis_algorithms,
    mis_field_widths,
    mis_message_bits,
    run_mis_bc,
)
from .coloring import ColoringBC, make_coloring_algorithms, run_coloring_bc
from .bfs import BFSTreeBC, bfs_field_widths, make_bfs_algorithms, run_bfs_bc
from .leader_election import (
    LeaderElectionBC,
    make_leader_algorithms,
    run_leader_election_bc,
)
from .verification import (
    check_coloring,
    check_matching,
    check_mis,
    check_bfs_tree,
    check_leader_election,
)
from .vectorized_matching import VectorizedMaximalMatching
from .vectorized_mis import VectorizedLubyMIS
from .vectorized_basic import VectorizedBFSTree, VectorizedLeaderElection

__all__ = [
    "MaximalMatchingBC",
    "UNMATCHED",
    "make_matching_algorithms",
    "matching_field_widths",
    "matching_message_bits",
    "run_matching_bc",
    "LubyMISBC",
    "make_mis_algorithms",
    "mis_field_widths",
    "mis_message_bits",
    "run_mis_bc",
    "bfs_field_widths",
    "ColoringBC",
    "make_coloring_algorithms",
    "run_coloring_bc",
    "BFSTreeBC",
    "make_bfs_algorithms",
    "run_bfs_bc",
    "LeaderElectionBC",
    "make_leader_algorithms",
    "run_leader_election_bc",
    "check_coloring",
    "check_matching",
    "check_mis",
    "check_bfs_tree",
    "check_leader_election",
    "VectorizedMaximalMatching",
    "VectorizedLubyMIS",
    "VectorizedBFSTree",
    "VectorizedLeaderElection",
]
