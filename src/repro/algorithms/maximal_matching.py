"""Maximal matching in Broadcast CONGEST — Algorithm 3 of the paper.

Luby-style edge sampling with a four-step handshake per iteration:

1. **Propose** — each node ``v`` samples ``x(e)`` uniformly from ``[n⁹]``
   for every adjacent edge where it is the higher-ID endpoint, and
   broadcasts the sampled minimum as ``Propose⟨e_v, x(e_v)⟩``;
2. **Reply** — ``v`` replies to the smallest incident proposal that beats
   its own proposal's value;
3. **Confirm** — a proposer that received a reply for its edge and sent no
   reply itself confirms, outputs the edge, and ceases;
4. **Echo** — the replier echoes the confirmation (so both endpoints'
   neighbourhoods learn of the match), outputs, and ceases.

Every node that hears ``Confirm⟨{w,z}⟩`` removes its edges to ``w`` and
``z``; a node whose edge set empties outputs *Unmatched* and ceases.
Lemma 19 shows each iteration removes half the edges in expectation, so
``O(log n)`` iterations (of 4 broadcast rounds each, after one ID round)
suffice w.h.p. (Lemma 20).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..congest.algorithm import BroadcastCongestAlgorithm
from ..congest.context import NodeContext
from ..congest.model import MessageCodec, required_bits
from ..congest.network import BroadcastCongestNetwork, RunResult
from ..congest.runtime import resolve_runtime
from ..congest.vectorized import VectorizedBroadcastNetwork
from ..errors import ConfigurationError
from ..graphs import Topology
from ..rng import random_bits

__all__ = [
    "UNMATCHED",
    "MaximalMatchingBC",
    "matching_field_widths",
    "matching_message_bits",
    "make_matching_algorithms",
    "run_matching_bc",
]

#: Output sentinel for nodes that end the algorithm unmatched.
UNMATCHED = "unmatched"

_TAG_ANNOUNCE = 0
_TAG_PROPOSE = 1
_TAG_REPLY = 2
_TAG_CONFIRM = 3

#: Sub-rounds per iteration: Propose, Reply, Confirm, Echo.
_PHASES = 4


def _codec(id_bits: int, value_bits: int) -> MessageCodec:
    return MessageCodec(
        [
            ("tag", 2),
            ("hi", id_bits),
            ("lo", id_bits),
            ("value", value_bits),
        ]
    )


def matching_field_widths(
    num_nodes: int,
    ids: Sequence[int] | None = None,
    value_exponent: int = 9,
) -> tuple[int, int]:
    """The matching codec's ``(id_bits, value_bits)`` — the budget source.

    Shared by :func:`make_matching_algorithms`, the vectorized runtime
    and the sweep workloads, so the runtimes can never disagree on the
    message budget for the same run.
    """
    max_id = max(ids) if ids is not None else num_nodes - 1
    id_bits = required_bits(max_id + 1)
    value_bits = max(1, value_exponent * required_bits(max(2, num_nodes)))
    return id_bits, value_bits


def matching_message_bits(
    num_nodes: int, id_space: int | None = None, value_exponent: int = 9
) -> int:
    """Message budget Algorithm 3 needs: a tag, two IDs, and an ``[n⁹]``
    sample — ``O(log n)`` bits with the paper's ``x(e) ∈ [n⁹]``
    (``value_exponent`` trades the paper's collision bound for width).
    """
    if id_space is not None:
        id_bits = required_bits(id_space)
        value_bits = max(1, value_exponent * required_bits(max(2, num_nodes)))
    else:
        id_bits, value_bits = matching_field_widths(
            num_nodes, value_exponent=value_exponent
        )
    return 2 + 2 * id_bits + value_bits


class MaximalMatchingBC(BroadcastCongestAlgorithm):
    """One node of Algorithm 3.

    Parameters
    ----------
    id_bits:
        Width of the ID fields (IDs across the network must fit).
    value_bits:
        Width of the sampled-value field (the paper's ``[n⁹]``).
    max_iterations:
        Iteration cap; ``None`` derives the Lemma 20 bound ``4 log₂ n``
        plus slack from the context.
    """

    def __init__(
        self,
        id_bits: int,
        value_bits: int,
        max_iterations: int | None = None,
    ) -> None:
        self._id_bits = id_bits
        self._value_bits = value_bits
        self._max_iterations = max_iterations
        self._matched_partner: int | None = None
        self._ceased = False
        self._edges: set[int] = set()
        self._lower_neighbors: set[int] = set()
        self._proposal: tuple[int, int] | None = None  # (partner, value)
        self._reply_target: int | None = None
        self._sent_reply = False
        self._pending_confirm: tuple[int, int] | None = None
        self._pending_echo: tuple[int, int] | None = None

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        self._codec = _codec(self._id_bits, self._value_bits)
        if self._codec.width > ctx.message_bits:
            raise ConfigurationError(
                f"matching needs {self._codec.width}-bit messages, budget is "
                f"{ctx.message_bits}; see matching_message_bits()"
            )
        if self._max_iterations is None:
            self._max_iterations = 4 * max(
                1, math.ceil(math.log2(max(2, ctx.num_nodes)))
            ) + 4

    # ----- round structure -------------------------------------------------
    # Round 0: ID announcement.  Then iteration i occupies rounds
    # 1 + 4i .. 4 + 4i with sub-rounds Propose/Reply/Confirm/Echo.

    def broadcast(self, round_index: int) -> int | None:
        """Announce, then per iteration: Propose/Reply/Confirm/Echo."""
        if self._ceased:
            return None
        if round_index == 0:
            return self._pack(_TAG_ANNOUNCE, self.ctx.node_id, 0, 0)
        iteration, phase = divmod(round_index - 1, _PHASES)
        if iteration >= self._max_iterations:
            return None
        if phase == 0:
            return self._broadcast_propose()
        if phase == 1:
            if self._reply_target is not None:
                self._sent_reply = True
                return self._pack_edge(_TAG_REPLY, self.ctx.node_id, self._reply_target)
            return None
        if phase == 2:
            if self._pending_confirm is not None:
                hi, lo = self._pending_confirm
                return self._pack_edge(_TAG_CONFIRM, hi, lo)
            return None
        if self._pending_echo is not None:
            hi, lo = self._pending_echo
            return self._pack_edge(_TAG_CONFIRM, hi, lo)
        return None

    def receive(self, round_index: int, messages: list[int]) -> None:
        """Drive the handshake state machine from the heard messages."""
        if self._ceased:
            return
        if round_index == 0:
            for fields in map(self._codec.unpack, messages):
                if fields["tag"] == _TAG_ANNOUNCE:
                    self._edges.add(fields["hi"])
            self._lower_neighbors = {
                u for u in self._edges if u < self.ctx.node_id
            }
            if not self._edges:
                self._cease()
            return
        iteration, phase = divmod(round_index - 1, _PHASES)
        if iteration >= self._max_iterations:
            self._cease()
            return
        unpacked = [self._codec.unpack(m) for m in messages]
        if phase == 0:
            self._receive_proposals(unpacked)
        elif phase == 1:
            self._receive_replies(unpacked)
        elif phase == 2:
            self._receive_confirms(unpacked, echo_phase=False)
        else:
            self._receive_confirms(unpacked, echo_phase=True)
            self._end_iteration()

    # ----- per-phase logic --------------------------------------------------

    def _broadcast_propose(self) -> int | None:
        self._proposal = None
        self._reply_target = None
        self._sent_reply = False
        self._pending_confirm = None
        self._pending_echo = None
        candidates = sorted(self._lower_neighbors)
        if not candidates:
            return None
        samples = [
            (random_bits(self.ctx.rng, self._value_bits), partner)
            for partner in candidates
        ]
        samples.sort()
        # The paper proposes only when the minimum is unique.
        if len(samples) > 1 and samples[0][0] == samples[1][0]:
            return None
        value, partner = samples[0]
        self._proposal = (partner, value)
        return self._pack(_TAG_PROPOSE, self.ctx.node_id, partner, value)

    def _receive_proposals(self, messages: list) -> None:
        best: tuple[int, int] | None = None  # (value, proposer)
        for fields in messages:
            if fields["tag"] != _TAG_PROPOSE:
                continue
            # Only proposals for edges incident to this node matter: the
            # proposer is the higher-ID endpoint, "lo" names the receiver.
            if fields["lo"] != self.ctx.node_id:
                continue
            candidate = (fields["value"], fields["hi"])
            if best is None or candidate < best:
                best = candidate
        if best is None:
            return
        own_value = self._proposal[1] if self._proposal else None
        if own_value is None or best[0] < own_value:
            self._reply_target = best[1]

    def _receive_replies(self, messages: list) -> None:
        if self._proposal is None or self._sent_reply:
            return
        partner, _ = self._proposal
        edge = {partner, self.ctx.node_id}
        for fields in messages:
            if fields["tag"] != _TAG_REPLY:
                continue
            # Only the proposed edge's other endpoint replies about it, so
            # matching the (ID-sorted) edge identifies our partner's reply.
            if {fields["hi"], fields["lo"]} == edge:
                self._pending_confirm = (self.ctx.node_id, partner)
                return

    def _receive_confirms(self, messages: list, echo_phase: bool) -> None:
        me = self.ctx.node_id
        for fields in messages:
            if fields["tag"] != _TAG_CONFIRM:
                continue
            hi, lo = fields["hi"], fields["lo"]
            if me in (hi, lo):
                # Our own edge was confirmed by the proposer: echo it.
                if self._pending_confirm is None and self._pending_echo is None:
                    partner = lo if me == hi else hi
                    if self._sent_reply and partner == self._reply_target:
                        self._pending_echo = (hi, lo)
            else:
                self._edges.discard(hi)
                self._edges.discard(lo)
                self._lower_neighbors.discard(hi)
                self._lower_neighbors.discard(lo)

    def _end_iteration(self) -> None:
        if self._pending_confirm is not None:
            _, partner = self._pending_confirm
            self._matched_partner = partner
            self._cease()
        elif self._pending_echo is not None:
            hi, lo = self._pending_echo
            self._matched_partner = hi if self.ctx.node_id == lo else lo
            self._cease()
        elif not self._edges:
            self._cease()

    def _cease(self) -> None:
        self._ceased = True

    # ----- plumbing ---------------------------------------------------------

    def _pack(self, tag: int, hi: int, lo: int, value: int) -> int:
        return self._codec.pack(tag=tag, hi=hi, lo=lo, value=value)

    def _pack_edge(self, tag: int, a: int, b: int) -> int:
        hi, lo = (a, b) if a > b else (b, a)
        return self._codec.pack(tag=tag, hi=hi, lo=lo, value=0)

    @property
    def finished(self) -> bool:
        return self._ceased

    def output(self) -> object:
        """The matched partner's ID, or :data:`UNMATCHED`."""
        if self._matched_partner is None:
            return UNMATCHED
        return self._matched_partner


def make_matching_algorithms(
    topology: Topology,
    ids: Sequence[int] | None = None,
    value_exponent: int = 9,
    max_iterations: int | None = None,
) -> tuple[list[MaximalMatchingBC], int]:
    """Build per-node matching algorithms plus the message budget they need."""
    n = topology.num_nodes
    if ids is None:
        ids = list(range(n))
    id_bits, value_bits = matching_field_widths(
        n, ids, value_exponent=value_exponent
    )
    budget = 2 + 2 * id_bits + value_bits
    algorithms = [
        MaximalMatchingBC(
            id_bits=id_bits,
            value_bits=value_bits,
            max_iterations=max_iterations,
        )
        for _ in range(n)
    ]
    return algorithms, budget


def run_matching_bc(
    topology: Topology,
    seed: int = 0,
    ids: Sequence[int] | None = None,
    value_exponent: int = 9,
    runtime: str | None = None,
) -> RunResult:
    """Run Algorithm 3 on a native Broadcast CONGEST network.

    ``runtime`` selects the execution engine (``"vectorized"`` /
    ``"reference"``, default the process default); both produce
    bit-identical results per seed.
    """
    n = topology.num_nodes
    if ids is None:
        ids = list(range(n))
    max_rounds = 1 + _PHASES * (
        4 * max(1, math.ceil(math.log2(max(2, n)))) + 4
    )
    if resolve_runtime(runtime) == "vectorized":
        from .vectorized_matching import VectorizedMaximalMatching

        id_bits, value_bits = matching_field_widths(
            n, ids, value_exponent=value_exponent
        )
        budget = 2 + 2 * id_bits + value_bits
        network = VectorizedBroadcastNetwork(
            topology, ids=ids, message_bits=budget, seed=seed
        )
        return network.run(
            VectorizedMaximalMatching(id_bits=id_bits, value_bits=value_bits),
            max_rounds=max_rounds,
        )
    algorithms, budget = make_matching_algorithms(
        topology, ids, value_exponent=value_exponent
    )
    network = BroadcastCongestNetwork(
        topology, ids=ids, message_bits=budget, seed=seed
    )
    return network.run(algorithms, max_rounds=max_rounds)
