"""Leader election in Broadcast CONGEST by max-ID flooding.

Every node maintains the largest ID it has heard and re-broadcasts on
change.  After ``max_rounds ≥ diameter`` rounds the network agrees on the
maximum ID (Section 1.2 surveys far more efficient native-beeping leader
election; this is the simple message-passing counterpart used to exercise
the simulation).
"""

from __future__ import annotations

from typing import Sequence

from ..congest.algorithm import BroadcastCongestAlgorithm
from ..congest.context import NodeContext
from ..congest.model import required_bits
from ..congest.network import BroadcastCongestNetwork, RunResult
from ..congest.runtime import resolve_runtime
from ..congest.vectorized import VectorizedBroadcastNetwork
from ..errors import ConfigurationError
from ..graphs import Topology

__all__ = ["LeaderElectionBC", "make_leader_algorithms", "run_leader_election_bc"]


class LeaderElectionBC(BroadcastCongestAlgorithm):
    """One node of max-ID flooding leader election.

    Parameters
    ----------
    horizon:
        Number of rounds to run; must be at least the network diameter for
        agreement (``n`` always suffices).
    """

    def __init__(self, horizon: int) -> None:
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self._horizon = horizon
        self._best: int | None = None
        self._changed = True
        self._rounds_seen = 0

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        if required_bits(ctx.node_id + 1) > ctx.message_bits:
            raise ConfigurationError("node ID does not fit the message budget")
        self._best = ctx.node_id

    def broadcast(self, round_index: int) -> int | None:
        """Re-broadcast the best-known ID whenever it improved."""
        if self._changed:
            self._changed = False
            return self._best
        return None

    def receive(self, round_index: int, messages: list[int]) -> None:
        """Fold the neighbours' broadcasts into the best-known ID."""
        assert self._best is not None
        incoming = max(messages, default=self._best)
        if incoming > self._best:
            self._best = incoming
            self._changed = True
        self._rounds_seen += 1

    @property
    def finished(self) -> bool:
        return self._rounds_seen >= self._horizon

    def output(self) -> int | None:
        """The elected leader's ID."""
        return self._best


def make_leader_algorithms(
    topology: Topology, horizon: int | None = None
) -> tuple[list[LeaderElectionBC], int]:
    """Build per-node leader-election algorithms plus the budget needed."""
    n = topology.num_nodes
    if horizon is None:
        horizon = n
    budget = required_bits(max(2, n))
    return [LeaderElectionBC(horizon) for _ in range(n)], budget


def run_leader_election_bc(
    topology: Topology,
    seed: int = 0,
    ids: Sequence[int] | None = None,
    runtime: str | None = None,
) -> RunResult:
    """Run leader election on a native Broadcast CONGEST network.

    ``runtime`` selects the execution engine (``"vectorized"`` /
    ``"reference"``, default the process default); both produce
    bit-identical results per seed.
    """
    n = topology.num_nodes
    if ids is None:
        ids = list(range(n))
    budget = max(required_bits(max(2, n)), required_bits(max(ids) + 1))
    if resolve_runtime(runtime) == "vectorized":
        from .vectorized_basic import VectorizedLeaderElection

        network = VectorizedBroadcastNetwork(
            topology, ids=ids, message_bits=budget, seed=seed
        )
        return network.run(VectorizedLeaderElection(n), max_rounds=n + 1)
    algorithms, _ = make_leader_algorithms(topology)
    network = BroadcastCongestNetwork(
        topology, ids=ids, message_bits=budget, seed=seed
    )
    return network.run(algorithms, max_rounds=n + 1)
