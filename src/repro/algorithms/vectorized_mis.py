"""Columnar Luby MIS for the vectorized CONGEST runtime.

Re-implements :class:`~repro.algorithms.luby_mis.LubyMISBC` with
whole-network numpy state.  Ticket draws come from
:class:`~repro.rng_philox.NodeStreams`, which reproduces each node's
``derive_rng`` byte stream exactly, so per-seed runs are bit-identical
to the reference engine — outputs, rounds used and messages sent.

The active-neighbour sets of the reference become a boolean mask over
the CSR edge slots; membership tests on *claimed* sender IDs (the model
is unattributed — IDs ride in the messages) resolve through a
vectorized ``(receiver, id) -> slot`` lookup.  Claimed IDs that are not
neighbours at all can only appear via corrupted decodes on the beeping
substrate; they are tracked in per-node "phantom" sets so even that
path matches the reference set semantics.
"""

from __future__ import annotations

import math

import numpy as np

from ..congest.vectorized import (
    VectorContext,
    VectorizedBroadcastAlgorithm,
    WordCodec,
    inbox_receivers,
    words_less_equal_mask,
)
from ..errors import ConfigurationError
from ..rng_philox import words_for_bits

__all__ = ["VectorizedLubyMIS"]

_TAG_ANNOUNCE = 0
_TAG_TICKET = 1
_TAG_JOIN = 2
_TAG_RETIRE = 3

_PHASES = 3


class VectorizedLubyMIS(VectorizedBroadcastAlgorithm):
    """Luby's MIS over unattributed broadcasts, with columnar state.

    Parameters mirror :class:`~repro.algorithms.luby_mis.LubyMISBC`:
    field widths for the ``⟨tag, ID, ticket⟩`` codec and an optional
    iteration cap (``None`` derives the reference's ``8 log₂ n + 8``).
    """

    def __init__(
        self, id_bits: int, value_bits: int, max_iterations: int | None = None
    ) -> None:
        self._id_bits = id_bits
        self._value_bits = value_bits
        self._max_iterations = max_iterations

    def setup(self, net: VectorContext) -> None:
        """Initialise the columnar state and per-node draw streams."""
        super().setup(net)
        self._codec = WordCodec(
            [("tag", 2), ("node", self._id_bits), ("value", self._value_bits)]
        )
        if self._codec.width > net.message_bits:
            raise ConfigurationError(
                f"MIS needs {self._codec.width}-bit messages, budget is "
                f"{net.message_bits}"
            )
        if self._max_iterations is None:
            self._max_iterations = 8 * max(
                1, math.ceil(math.log2(max(2, net.num_nodes)))
            ) + 8
        n = net.num_nodes
        self._ids_u64 = net.ids.astype(np.uint64)
        self._streams = net.node_streams()
        self._value_words = words_for_bits(self._value_bits)
        self._ceased = np.zeros(n, dtype=bool)
        self._in_mis = np.full(n, -1, dtype=np.int8)  # -1 undecided / 0 / 1
        self._joining = np.zeros(n, dtype=bool)
        self._ticket = np.zeros((n, self._value_words), dtype=np.uint64)
        self._nbr_active = np.zeros(net.edge_src.size, dtype=bool)
        self._phantoms: dict[int, set[int]] = {}

    # ----- helpers ----------------------------------------------------------

    def _active_counts(self) -> np.ndarray:
        """Per-node size of the active-neighbour set (slots + phantoms)."""
        counts = np.bincount(
            self.net.edge_dst[self._nbr_active], minlength=self.net.num_nodes
        )
        for node, extras in self._phantoms.items():
            counts[node] += len(extras)
        return counts

    def _membership(
        self, receivers: np.ndarray, claimed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Which ``(receiver, claimed ID)`` entries are active neighbours.

        Returns ``(member, slot)``: the membership mask (including
        phantom IDs) and the CSR slot per entry (``-1`` for phantoms).
        """
        index = self.net.index_of_ids(claimed)
        slot = self.net.slot_of(receivers, index)
        member = (slot >= 0) & self._nbr_active[np.maximum(slot, 0)]
        if self._phantoms:
            for position in np.flatnonzero(slot < 0):
                extras = self._phantoms.get(int(receivers[position]))
                if extras and int(claimed[position]) in extras:
                    member[position] = True
        return member, slot

    def _discard(self, receivers: np.ndarray, claimed: np.ndarray) -> None:
        """Remove ``claimed`` from each receiver's active-neighbour set."""
        index = self.net.index_of_ids(claimed)
        slot = self.net.slot_of(receivers, index)
        self._nbr_active[slot[slot >= 0]] = False
        if self._phantoms:
            for position in np.flatnonzero(slot < 0):
                extras = self._phantoms.get(int(receivers[position]))
                if extras:
                    extras.discard(int(claimed[position]))

    # ----- protocol ---------------------------------------------------------

    def broadcast_step(self, round_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Announce, then per iteration: ticket, join, retire broadcasts."""
        n = self.net.num_nodes
        alive = ~self._ceased
        if round_index == 0:
            messages = self._codec.pack(
                n, tag=_TAG_ANNOUNCE, node=self._ids_u64, value=0
            )
            return messages, alive
        _, phase = divmod(round_index - 1, _PHASES)
        if phase == 0:
            drawers = np.flatnonzero(alive)
            self._ticket[drawers] = self._streams.draw(drawers, self._value_bits)
            self._joining[:] = False
            messages = self._codec.pack(
                n,
                tag=_TAG_TICKET,
                node=self._ids_u64,
                value=self._ticket,
            )
            return messages, alive
        if phase == 1:
            messages = self._codec.pack(
                n, tag=_TAG_JOIN, node=self._ids_u64, value=0
            )
            return messages, alive & self._joining
        messages = self._codec.pack(
            n, tag=_TAG_RETIRE, node=self._ids_u64, value=0
        )
        return messages, alive & (self._in_mis == 0)

    def receive_step(
        self, round_index: int, inbox_indptr: np.ndarray, inbox: np.ndarray
    ) -> None:
        """The reference's per-phase receive logic, as vector ops."""
        alive = ~self._ceased
        receivers = inbox_receivers(inbox_indptr)
        tag = self._codec.unpack(inbox, "tag")
        claimed = self._codec.unpack(inbox, "node").astype(np.int64)
        open_inbox = alive[receivers]
        if round_index == 0:
            self._receive_announcements(
                receivers, tag, claimed, open_inbox, alive
            )
            return
        iteration, phase = divmod(round_index - 1, _PHASES)
        assert self._max_iterations is not None
        if iteration >= self._max_iterations:
            self._ceased[alive] = True
            return
        if phase == 0:
            value = self._codec.unpack(inbox, "value")
            if value.ndim == 1:
                value = value[:, None]
            self._receive_tickets(receivers, tag, claimed, value, open_inbox, alive)
        elif phase == 1:
            keep = open_inbox & (tag == _TAG_JOIN) & ~self._joining[receivers]
            member, _ = self._membership(receivers[keep], claimed[keep])
            self._in_mis[self._joining & alive] = 1
            hit = np.flatnonzero(keep)[member]
            self._in_mis[receivers[hit]] = 0
            self._discard(receivers[hit], claimed[hit])
        else:
            keep = open_inbox & (tag == _TAG_RETIRE)
            self._discard(receivers[keep], claimed[keep])
            decided = alive & (self._in_mis != -1)
            self._ceased |= decided
            lonely = alive & ~decided & (self._active_counts() == 0)
            self._in_mis[lonely] = 1
            self._ceased |= lonely

    def _receive_announcements(
        self,
        receivers: np.ndarray,
        tag: np.ndarray,
        claimed: np.ndarray,
        open_inbox: np.ndarray,
        alive: np.ndarray,
    ) -> None:
        """Round 0: learn the active-neighbour sets from announcements."""
        keep = open_inbox & (tag == _TAG_ANNOUNCE)
        index = self.net.index_of_ids(claimed[keep])
        slot = self.net.slot_of(receivers[keep], index)
        self._nbr_active[slot[slot >= 0]] = True
        for position in np.flatnonzero(slot < 0):
            node = int(receivers[keep][position])
            self._phantoms.setdefault(node, set()).add(
                int(claimed[keep][position])
            )
        lonely = alive & (self._active_counts() == 0)
        self._in_mis[lonely] = 1
        self._ceased |= lonely

    def _receive_tickets(
        self,
        receivers: np.ndarray,
        tag: np.ndarray,
        claimed: np.ndarray,
        value: np.ndarray,
        open_inbox: np.ndarray,
        alive: np.ndarray,
    ) -> None:
        """Collect active-neighbour tickets; decide who joins the MIS.

        A node joins iff its own ``(ticket, ID)`` is strictly below every
        collected ``(ticket, ID)``.  Duplicate claimed IDs keep the last
        occurrence, matching the reference's dict overwrite.
        """
        keep = open_inbox & (tag == _TAG_TICKET)
        member, _ = self._membership(receivers[keep], claimed[keep])
        kept = np.flatnonzero(keep)[member]
        entry_receiver = receivers[kept]
        entry_claimed = claimed[kept]
        entry_value = value[kept]
        # Last-per-(receiver, claimed) wins, like the reference's dict.
        order = np.lexsort((entry_claimed, entry_receiver))
        ordered_r = entry_receiver[order]
        ordered_c = entry_claimed[order]
        last = np.ones(order.size, dtype=bool)
        if order.size > 1:
            last[:-1] = (ordered_r[:-1] != ordered_r[1:]) | (
                ordered_c[:-1] != ordered_c[1:]
            )
        final = order[last]
        entry_receiver = entry_receiver[final]
        entry_claimed = entry_claimed[final]
        entry_value = entry_value[final]
        # Per-receiver minimum of (value, claimed), lexicographic.
        keys = (entry_claimed,) + tuple(
            entry_value[:, word] for word in range(entry_value.shape[1])
        ) + (entry_receiver,)
        rank = np.lexsort(keys)
        sorted_receiver = entry_receiver[rank]
        first = np.ones(rank.size, dtype=bool)
        first[1:] = sorted_receiver[1:] != sorted_receiver[:-1]
        best = rank[first]
        best_receiver = entry_receiver[best]
        own_value = self._ticket[best_receiver]
        min_value = entry_value[best]
        own_less, equal = words_less_equal_mask(own_value, min_value)
        own_wins = own_less | (
            equal & (self.net.ids[best_receiver] < entry_claimed[best])
        )
        self._joining[alive] = True
        self._joining[best_receiver] = own_wins
        self._joining &= alive

    def finished_mask(self) -> np.ndarray:
        """Nodes cease once decided (or at the iteration cap)."""
        return self._ceased

    def outputs(self) -> list[object]:
        """``True`` in the MIS, ``False`` covered, ``None`` undecided."""
        return [
            None if decided == -1 else bool(decided) for decided in self._in_mis
        ]