"""Luby's maximal independent set in Broadcast CONGEST.

The classical algorithm [25] (cited in Section 6) adapted to unattributed
broadcasts: each iteration has three sub-rounds —

1. **Ticket** — every undecided node broadcasts ``⟨ID, x⟩`` with ``x``
   uniform in a poly(n) range;
2. **Join** — a node whose ticket is a strict local minimum among undecided
   neighbours joins the MIS and broadcasts ``Join⟨ID⟩``;
3. **Retire** — nodes hearing a ``Join`` from a neighbour become covered
   and broadcast ``Retire⟨ID⟩`` so the remaining neighbours drop them from
   their active sets.

Runs in ``O(log n)`` iterations w.h.p.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..congest.algorithm import BroadcastCongestAlgorithm
from ..congest.context import NodeContext
from ..congest.model import MessageCodec, required_bits
from ..congest.network import BroadcastCongestNetwork, RunResult
from ..congest.runtime import resolve_runtime
from ..congest.vectorized import VectorizedBroadcastNetwork
from ..errors import ConfigurationError
from ..graphs import Topology
from ..rng import random_bits

__all__ = [
    "LubyMISBC",
    "make_mis_algorithms",
    "mis_field_widths",
    "mis_message_bits",
    "run_mis_bc",
]


def mis_field_widths(
    num_nodes: int, ids: "Sequence[int] | None" = None
) -> tuple[int, int]:
    """The MIS codec's ``(id_bits, value_bits)`` — the one budget source.

    Shared by :func:`make_mis_algorithms`, the vectorized runtime and
    the sweep workloads, so the runtimes can never disagree on the
    message budget for the same run.
    """
    max_id = max(ids) if ids is not None else num_nodes - 1
    id_bits = required_bits(max_id + 1)
    value_bits = max(1, 4 * required_bits(max(2, num_nodes)))
    return id_bits, value_bits


def mis_message_bits(num_nodes: int, ids: "Sequence[int] | None" = None) -> int:
    """Total message budget the MIS codec needs (tag + ID + ticket)."""
    id_bits, value_bits = mis_field_widths(num_nodes, ids)
    return 2 + id_bits + value_bits

_TAG_ANNOUNCE = 0
_TAG_TICKET = 1
_TAG_JOIN = 2
_TAG_RETIRE = 3

_PHASES = 3


class LubyMISBC(BroadcastCongestAlgorithm):
    """One node of Luby's MIS algorithm over unattributed broadcasts."""

    def __init__(
        self, id_bits: int, value_bits: int, max_iterations: int | None = None
    ) -> None:
        self._id_bits = id_bits
        self._value_bits = value_bits
        self._max_iterations = max_iterations
        self._active_neighbors: set[int] = set()
        self._in_mis: bool | None = None
        self._ceased = False
        self._ticket: int | None = None
        self._neighbor_tickets: dict[int, int] = {}
        self._joining = False

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        self._codec = MessageCodec(
            [("tag", 2), ("node", self._id_bits), ("value", self._value_bits)]
        )
        if self._codec.width > ctx.message_bits:
            raise ConfigurationError(
                f"MIS needs {self._codec.width}-bit messages, budget is "
                f"{ctx.message_bits}"
            )
        if self._max_iterations is None:
            self._max_iterations = 8 * max(
                1, math.ceil(math.log2(max(2, ctx.num_nodes)))
            ) + 8

    def broadcast(self, round_index: int) -> int | None:
        """Announce, then per iteration: ticket, join, retire messages."""
        if self._ceased:
            return None
        if round_index == 0:
            return self._codec.pack(tag=_TAG_ANNOUNCE, node=self.ctx.node_id, value=0)
        _, phase = divmod(round_index - 1, _PHASES)
        if phase == 0:
            self._ticket = random_bits(self.ctx.rng, self._value_bits)
            self._neighbor_tickets = {}
            self._joining = False
            return self._codec.pack(
                tag=_TAG_TICKET, node=self.ctx.node_id, value=self._ticket
            )
        if phase == 1 and self._joining:
            return self._codec.pack(tag=_TAG_JOIN, node=self.ctx.node_id, value=0)
        if phase == 2 and self._in_mis is False:
            return self._codec.pack(tag=_TAG_RETIRE, node=self.ctx.node_id, value=0)
        return None

    def receive(self, round_index: int, messages: list[int]) -> None:
        """Track active neighbours, local minima, joins and retirements."""
        if self._ceased:
            return
        unpacked = [self._codec.unpack(m) for m in messages]
        if round_index == 0:
            self._active_neighbors = {
                fields["node"]
                for fields in unpacked
                if fields["tag"] == _TAG_ANNOUNCE
            }
            if not self._active_neighbors:
                self._in_mis = True
                self._ceased = True
            return
        iteration, phase = divmod(round_index - 1, _PHASES)
        assert self._max_iterations is not None
        if iteration >= self._max_iterations:
            self._ceased = True
            return
        if phase == 0:
            for fields in unpacked:
                if (
                    fields["tag"] == _TAG_TICKET
                    and fields["node"] in self._active_neighbors
                ):
                    self._neighbor_tickets[fields["node"]] = fields["value"]
            assert self._ticket is not None
            own = (self._ticket, self.ctx.node_id)
            self._joining = all(
                own < (value, node)
                for node, value in self._neighbor_tickets.items()
            )
        elif phase == 1:
            if self._joining:
                self._in_mis = True
                return
            for fields in unpacked:
                if (
                    fields["tag"] == _TAG_JOIN
                    and fields["node"] in self._active_neighbors
                ):
                    self._in_mis = False
                    self._active_neighbors.discard(fields["node"])
        else:
            for fields in unpacked:
                if fields["tag"] == _TAG_RETIRE:
                    self._active_neighbors.discard(fields["node"])
            if self._in_mis is not None:
                self._ceased = True
            elif not self._active_neighbors:
                self._in_mis = True
                self._ceased = True

    @property
    def finished(self) -> bool:
        return self._ceased

    def output(self) -> object:
        """``True`` if the node is in the MIS, ``False`` if covered."""
        return self._in_mis


def make_mis_algorithms(
    topology: Topology, ids: Sequence[int] | None = None
) -> tuple[list[LubyMISBC], int]:
    """Build per-node MIS algorithms plus the message budget they need."""
    n = topology.num_nodes
    if ids is None:
        ids = list(range(n))
    id_bits, value_bits = mis_field_widths(n, ids)
    algorithms = [
        LubyMISBC(id_bits=id_bits, value_bits=value_bits) for _ in range(n)
    ]
    return algorithms, 2 + id_bits + value_bits


def run_mis_bc(
    topology: Topology,
    seed: int = 0,
    ids: Sequence[int] | None = None,
    runtime: str | None = None,
) -> RunResult:
    """Run Luby's MIS on a native Broadcast CONGEST network.

    ``runtime`` selects the execution engine (``"vectorized"`` /
    ``"reference"``, default the process default); both produce
    bit-identical results per seed.
    """
    n = topology.num_nodes
    if ids is None:
        ids = list(range(n))
    max_rounds = 1 + _PHASES * (
        8 * max(1, math.ceil(math.log2(max(2, n)))) + 8
    )
    if resolve_runtime(runtime) == "vectorized":
        from .vectorized_mis import VectorizedLubyMIS

        id_bits, value_bits = mis_field_widths(n, ids)
        network = VectorizedBroadcastNetwork(
            topology, ids=ids, message_bits=2 + id_bits + value_bits, seed=seed
        )
        return network.run(
            VectorizedLubyMIS(id_bits=id_bits, value_bits=value_bits),
            max_rounds=max_rounds,
        )
    algorithms, budget = make_mis_algorithms(topology, ids)
    network = BroadcastCongestNetwork(
        topology, ids=ids, message_bits=budget, seed=seed
    )
    return network.run(algorithms, max_rounds=max_rounds)
