"""Columnar maximal matching (Algorithm 3) for the vectorized runtime.

Re-implements :class:`~repro.algorithms.maximal_matching.
MaximalMatchingBC` — the paper's Broadcast CONGEST maximal matching —
with whole-network numpy state:

* the per-node edge sets become one boolean mask over CSR edge slots;
* the ``x(e) ∈ [n⁹]`` samples come from :class:`~repro.rng_philox.
  NodeStreams` (bit-identical to each node's ``derive_rng`` stream) and
  live as multi-word uint64 columns, compared lexicographically — the
  paper's samples are wider than a machine word, so the wire plane is a
  ``(n, W)`` word plane;
* each Propose/Reply/Confirm/Echo sub-round is a handful of sorts,
  segment reductions and scatter stores instead of ``n`` object calls.

Per-seed runs are bit-identical to the reference engine: same outputs,
same rounds used, same message counts (property-tested across the
topology zoo).  Claimed IDs that are no node's ID — possible only via
corrupted decodes on the beeping substrate — fall back to per-node
"phantom" sets so even that path mirrors the reference set semantics.
"""

from __future__ import annotations

import math

import numpy as np

from ..congest.vectorized import (
    VectorContext,
    VectorizedBroadcastAlgorithm,
    WordCodec,
    inbox_receivers,
    words_less_equal_mask,
)
from ..errors import ConfigurationError
from ..rng_philox import words_for_bits
from .maximal_matching import UNMATCHED

__all__ = ["VectorizedMaximalMatching"]

_TAG_ANNOUNCE = 0
_TAG_PROPOSE = 1
_TAG_REPLY = 2
_TAG_CONFIRM = 3

_PHASES = 4


class VectorizedMaximalMatching(VectorizedBroadcastAlgorithm):
    """The whole network's Algorithm 3 state, columnar.

    Parameters mirror :class:`~repro.algorithms.maximal_matching.
    MaximalMatchingBC`: ID/value field widths and an optional iteration
    cap (``None`` derives the reference's ``4 log₂ n + 4``).
    """

    def __init__(
        self,
        id_bits: int,
        value_bits: int,
        max_iterations: int | None = None,
    ) -> None:
        self._id_bits = id_bits
        self._value_bits = value_bits
        self._max_iterations = max_iterations

    def setup(self, net: VectorContext) -> None:
        """Initialise columnar state, edge permutations and draw streams."""
        super().setup(net)
        self._codec = WordCodec(
            [
                ("tag", 2),
                ("hi", self._id_bits),
                ("lo", self._id_bits),
                ("value", self._value_bits),
            ]
        )
        if self._codec.width > net.message_bits:
            raise ConfigurationError(
                f"matching needs {self._codec.width}-bit messages, budget is "
                f"{net.message_bits}; see matching_message_bits()"
            )
        if self._max_iterations is None:
            self._max_iterations = 4 * max(
                1, math.ceil(math.log2(max(2, net.num_nodes)))
            ) + 4
        n = net.num_nodes
        self._streams = net.node_streams()
        self._value_words = words_for_bits(self._value_bits)
        self._ceased = np.zeros(n, dtype=bool)
        self._matched = np.full(n, -1, dtype=np.int64)
        self._has_prop = np.zeros(n, dtype=bool)
        self._prop_partner = np.full(n, -1, dtype=np.int64)
        self._prop_value = np.zeros((n, self._value_words), dtype=np.uint64)
        self._reply_target = np.full(n, -1, dtype=np.int64)
        self._sent_reply = np.zeros(n, dtype=bool)
        self._has_pc = np.zeros(n, dtype=bool)
        self._pc_partner = np.full(n, -1, dtype=np.int64)
        self._has_echo = np.zeros(n, dtype=bool)
        self._echo_hi = np.full(n, -1, dtype=np.int64)
        self._echo_lo = np.full(n, -1, dtype=np.int64)
        # The per-node edge set, one flag per incoming CSR slot; announced
        # into existence at round 0 (exactly like the reference's sets).
        self._edge_alive = np.zeros(net.edge_src.size, dtype=bool)
        self._phantoms: dict[int, set[int]] = {}
        # Candidate order: slots grouped by receiver, ascending neighbour
        # *ID* — the order the reference draws samples in.
        self._ids_u64 = net.ids.astype(np.uint64)
        nid = net.ids[net.edge_src]
        self._cand_perm = np.lexsort((nid, net.edge_dst))
        self._cand_dst = net.edge_dst[self._cand_perm]
        self._cand_nid = nid[self._cand_perm]
        self._cand_lower = self._cand_nid < net.ids[self._cand_dst]

    # ----- helpers ----------------------------------------------------------

    def _edge_counts(self) -> np.ndarray:
        """Per-node size of the live edge set (slots + phantoms)."""
        counts = np.bincount(
            self.net.edge_dst[self._edge_alive], minlength=self.net.num_nodes
        )
        for node, extras in self._phantoms.items():
            counts[node] += len(extras)
        return counts

    def _discard_edges(self, receivers: np.ndarray, claimed: np.ndarray) -> None:
        """Remove the edge to each claimed ID from each receiver's set."""
        index = self.net.index_of_ids(claimed)
        slot = self.net.slot_of(receivers, index)
        self._edge_alive[slot[slot >= 0]] = False
        if self._phantoms:
            for position in np.flatnonzero(slot < 0):
                extras = self._phantoms.get(int(receivers[position]))
                if extras:
                    extras.discard(int(claimed[position]))

    def _candidate_entries(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-proposer candidate list: ``(node, partner ID)`` entries.

        Grouped by node in ascending partner-ID order — the reference's
        ``sorted(self._lower_neighbors)`` draw order.  Falls back to a
        per-node merge when phantom IDs exist (beeping corruption only).
        """
        selected = (
            self._edge_alive[self._cand_perm]
            & self._cand_lower
            & ~self._ceased[self._cand_dst]
        )
        nodes = self._cand_dst[selected]
        partners = self._cand_nid[selected]
        lower_phantoms = {
            node: sorted(
                extra
                for extra in extras
                if extra < int(self.net.ids[node])
            )
            for node, extras in self._phantoms.items()
            if not self._ceased[node]
        }
        if not any(lower_phantoms.values()):
            return nodes, partners
        merged_nodes: list[int] = []
        merged_partners: list[int] = []
        cursor = 0
        for node in range(self.net.num_nodes):
            real: list[int] = []
            while cursor < nodes.size and nodes[cursor] == node:
                real.append(int(partners[cursor]))
                cursor += 1
            combined = sorted(real + lower_phantoms.get(node, []))
            merged_nodes.extend([node] * len(combined))
            merged_partners.extend(combined)
        return (
            np.asarray(merged_nodes, dtype=np.int64),
            np.asarray(merged_partners, dtype=np.int64),
        )

    # ----- protocol ---------------------------------------------------------

    def broadcast_step(self, round_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Announce, then per iteration: Propose/Reply/Confirm/Echo."""
        n = self.net.num_nodes
        ids = self._ids_u64
        alive = ~self._ceased
        if round_index == 0:
            messages = self._codec.pack(
                n, tag=_TAG_ANNOUNCE, hi=ids, lo=0, value=0
            )
            return messages, alive
        iteration, phase = divmod(round_index - 1, _PHASES)
        assert self._max_iterations is not None
        if iteration >= self._max_iterations:
            return (
                np.zeros((n, self._codec.words), dtype=np.uint64),
                np.zeros(n, dtype=bool),
            )
        if phase == 0:
            return self._broadcast_proposals(alive)
        if phase == 1:
            active = alive & (self._reply_target >= 0)
            self._sent_reply |= active
            partner = np.maximum(self._reply_target, 0).astype(np.uint64)
            messages = self._codec.pack(
                n,
                tag=_TAG_REPLY,
                hi=np.maximum(ids, partner),
                lo=np.minimum(ids, partner),
                value=0,
            )
            return messages, active
        if phase == 2:
            active = alive & self._has_pc
            partner = np.maximum(self._pc_partner, 0).astype(np.uint64)
            messages = self._codec.pack(
                n,
                tag=_TAG_CONFIRM,
                hi=np.maximum(ids, partner),
                lo=np.minimum(ids, partner),
                value=0,
            )
            return messages, active
        active = alive & self._has_echo
        messages = self._codec.pack(
            n,
            tag=_TAG_CONFIRM,
            hi=np.maximum(self._echo_hi, 0).astype(np.uint64),
            lo=np.maximum(self._echo_lo, 0).astype(np.uint64),
            value=0,
        )
        return messages, active

    def _broadcast_proposals(self, alive: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The Propose sub-round: draw samples, propose unique minima."""
        n = self.net.num_nodes
        # Reset the per-iteration handshake state (reference does this in
        # _broadcast_propose for every non-ceased node).
        self._has_prop[alive] = False
        self._prop_partner[alive] = -1
        self._reply_target[alive] = -1
        self._sent_reply[alive] = False
        self._has_pc[alive] = False
        self._pc_partner[alive] = -1
        self._has_echo[alive] = False
        self._echo_hi[alive] = -1
        self._echo_lo[alive] = -1
        nodes, partners = self._candidate_entries()
        draws = self._streams.draw(nodes, self._value_bits)
        if nodes.size:
            keys = (
                (partners,)
                + tuple(draws[:, word] for word in range(self._value_words))
                + (nodes,)
            )
            order = np.lexsort(keys)
            sorted_nodes = nodes[order]
            first = np.ones(order.size, dtype=bool)
            first[1:] = sorted_nodes[1:] != sorted_nodes[:-1]
            best = order[first]
            # The paper proposes only when the minimum sample is unique.
            follower = np.flatnonzero(first) + 1
            has_second = follower < order.size
            second = order[follower[has_second]]
            tie = np.zeros(best.size, dtype=bool)
            tie[has_second] = np.all(
                draws[best[has_second]] == draws[second], axis=1
            ) & (sorted_nodes[follower[has_second]] == nodes[best[has_second]])
            winners = best[~tie]
            proposers = nodes[winners]
            self._has_prop[proposers] = True
            self._prop_partner[proposers] = partners[winners]
            self._prop_value[proposers] = draws[winners]
        messages = self._codec.pack(
            n,
            tag=_TAG_PROPOSE,
            hi=self._ids_u64,
            lo=np.maximum(self._prop_partner, 0).astype(np.uint64),
            value=self._prop_value,
        )
        return messages, self._has_prop & alive

    def receive_step(
        self, round_index: int, inbox_indptr: np.ndarray, inbox: np.ndarray
    ) -> None:
        """The reference's per-phase receive logic, as vector ops."""
        alive = ~self._ceased
        receivers = inbox_receivers(inbox_indptr)
        tag = self._codec.unpack(inbox, "tag")
        hi = self._codec.unpack(inbox, "hi").astype(np.int64)
        lo = self._codec.unpack(inbox, "lo").astype(np.int64)
        open_inbox = alive[receivers]
        if round_index == 0:
            keep = open_inbox & (tag == _TAG_ANNOUNCE)
            index = self.net.index_of_ids(hi[keep])
            slot = self.net.slot_of(receivers[keep], index)
            self._edge_alive[slot[slot >= 0]] = True
            for position in np.flatnonzero(slot < 0):
                node = int(receivers[keep][position])
                self._phantoms.setdefault(node, set()).add(
                    int(hi[keep][position])
                )
            lonely = alive & (self._edge_counts() == 0)
            self._ceased |= lonely
            return
        iteration, phase = divmod(round_index - 1, _PHASES)
        assert self._max_iterations is not None
        if iteration >= self._max_iterations:
            self._ceased[alive] = True
            return
        if phase == 0:
            value = self._codec.unpack(inbox, "value")
            if value.ndim == 1:
                value = value[:, None]
            self._receive_proposals(receivers, tag, hi, lo, value, open_inbox)
        elif phase == 1:
            self._receive_replies(receivers, tag, hi, lo, open_inbox)
        else:
            self._receive_confirms(receivers, tag, hi, lo, open_inbox)
            if phase == 3:
                self._end_iteration(alive)

    def _receive_proposals(
        self,
        receivers: np.ndarray,
        tag: np.ndarray,
        hi: np.ndarray,
        lo: np.ndarray,
        value: np.ndarray,
        open_inbox: np.ndarray,
    ) -> None:
        """Pick each node's best incoming proposal; decide who replies."""
        keep = np.flatnonzero(
            open_inbox
            & (tag == _TAG_PROPOSE)
            & (lo == self.net.ids[receivers])
        )
        if keep.size == 0:
            return
        entry_receiver = receivers[keep]
        entry_hi = hi[keep]
        entry_value = value[keep]
        keys = (
            (entry_hi,)
            + tuple(entry_value[:, word] for word in range(entry_value.shape[1]))
            + (entry_receiver,)
        )
        rank = np.lexsort(keys)
        sorted_receiver = entry_receiver[rank]
        first = np.ones(rank.size, dtype=bool)
        first[1:] = sorted_receiver[1:] != sorted_receiver[:-1]
        best = rank[first]
        best_receiver = entry_receiver[best]
        best_less, _ = words_less_equal_mask(
            entry_value[best], self._prop_value[best_receiver]
        )
        wins = ~self._has_prop[best_receiver] | best_less
        target = best_receiver[wins]
        self._reply_target[target] = entry_hi[best[wins]]

    def _receive_replies(
        self,
        receivers: np.ndarray,
        tag: np.ndarray,
        hi: np.ndarray,
        lo: np.ndarray,
        open_inbox: np.ndarray,
    ) -> None:
        """A proposer that hears a reply for its edge pends a confirm."""
        candidate = self._has_prop & ~self._sent_reply & ~self._ceased
        own = self.net.ids[receivers]
        partner = self._prop_partner[receivers]
        edge_match = ((hi == own) & (lo == partner)) | (
            (hi == partner) & (lo == own)
        )
        keep = open_inbox & (tag == _TAG_REPLY) & candidate[receivers] & edge_match
        confirmed = receivers[keep]
        self._has_pc[confirmed] = True
        self._pc_partner[confirmed] = self._prop_partner[confirmed]

    def _receive_confirms(
        self,
        receivers: np.ndarray,
        tag: np.ndarray,
        hi: np.ndarray,
        lo: np.ndarray,
        open_inbox: np.ndarray,
    ) -> None:
        """Echo confirms of our own edge; drop edges to matched nodes."""
        keep = open_inbox & (tag == _TAG_CONFIRM)
        own = self.net.ids[receivers]
        mine = keep & ((hi == own) | (lo == own))
        others = np.flatnonzero(keep & ~mine)
        if others.size:
            self._discard_edges(
                np.concatenate((receivers[others], receivers[others])),
                np.concatenate((hi[others], lo[others])),
            )
        entries = np.flatnonzero(
            mine
            & ~self._has_pc[receivers]
            & ~self._has_echo[receivers]
            & self._sent_reply[receivers]
        )
        if entries.size == 0:
            return
        partner = np.where(own[entries] == hi[entries], lo[entries], hi[entries])
        entries = entries[partner == self._reply_target[receivers[entries]]]
        # Reverse so the first matching message per node wins the scatter,
        # matching the reference's first-assignment semantics.
        entries = entries[::-1]
        echoers = receivers[entries]
        self._has_echo[echoers] = True
        self._echo_hi[echoers] = hi[entries]
        self._echo_lo[echoers] = lo[entries]

    def _end_iteration(self, alive: np.ndarray) -> None:
        """Close the iteration: settle matches, retire edgeless nodes."""
        confirmed = alive & self._has_pc
        self._matched[confirmed] = self._pc_partner[confirmed]
        echoed = alive & ~self._has_pc & self._has_echo
        own = self.net.ids
        self._matched[echoed] = np.where(
            own == self._echo_lo, self._echo_hi, self._echo_lo
        )[echoed]
        retired = (
            alive & ~confirmed & ~echoed & (self._edge_counts() == 0)
        )
        self._ceased |= confirmed | echoed | retired

    def finished_mask(self) -> np.ndarray:
        """Nodes cease once matched, edgeless, or at the iteration cap."""
        return self._ceased

    def outputs(self) -> list[object]:
        """The matched partner's ID, or :data:`UNMATCHED`, per node."""
        return [
            UNMATCHED if partner < 0 else partner
            for partner in self._matched.tolist()
        ]
