"""Deterministic, hierarchical random-number generation.

Distributed protocols in this library need two kinds of randomness:

* **Shared randomness** — e.g. the beep code ``C`` and distance code ``D`` of
  the paper are public objects known to every node.  They are derived from a
  single experiment seed plus a string context, so every node (and every
  re-run) sees the same code.
* **Local randomness** — each node's private coins (the random string ``r_v``
  in Algorithm 1, Luby's edge values, ...).  These are derived from the same
  experiment seed plus the node identifier, making whole experiments exactly
  reproducible while keeping per-node streams statistically independent.

Both are built on :func:`derive_rng`, a counter-mode PRF construction: the
seed material and context are hashed with SHA-256, and the digest keys a
Philox generator.  Philox is used (rather than the default PCG64) because
keyed construction from arbitrary 128-bit material is part of its design.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["derive_rng", "derive_seed", "spawn_rngs", "random_bits"]


def random_bits(rng: np.random.Generator, bits: int) -> int:
    """Sample a uniform integer in ``[0, 2^bits)`` for any bit width.

    ``Generator.integers`` is limited to 64-bit bounds; protocol values
    (e.g. the paper's ``x(e) ∈ [n⁹]`` samples and the random strings
    ``r_v``) routinely exceed that, so values are assembled from raw bytes
    and masked down to the requested width.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    raw = int.from_bytes(rng.bytes((bits + 7) // 8), "little")
    return raw & ((1 << bits) - 1)


def _context_digest(seed: int, context: Iterable[object]) -> bytes:
    """Hash ``seed`` and a context tuple into 32 bytes of key material."""
    hasher = hashlib.sha256()
    hasher.update(int(seed).to_bytes(16, "little", signed=True))
    for part in context:
        encoded = repr(part).encode("utf-8")
        hasher.update(len(encoded).to_bytes(4, "little"))
        hasher.update(encoded)
    return hasher.digest()


def derive_seed(seed: int, *context: object) -> int:
    """Derive a 63-bit integer sub-seed from ``seed`` and a context tuple.

    The derivation is stable across processes and Python versions (it does
    not use ``hash()``).
    """
    digest = _context_digest(seed, context)
    return int.from_bytes(digest[:8], "little") >> 1


def derive_rng(seed: int, *context: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` keyed by ``seed`` + context.

    Calls with equal arguments return generators producing identical
    streams; distinct contexts give statistically independent streams.

    >>> derive_rng(7, "beep-code", 3).integers(100) == \\
    ...     derive_rng(7, "beep-code", 3).integers(100)
    True
    """
    digest = _context_digest(seed, context)
    # A scalar int key takes Philox's fast construction path and yields
    # the same 2x64-bit key (little-endian) as the frombuffer view did —
    # identical streams, measurably cheaper per derivation.
    key = int.from_bytes(digest[:16], "little")
    return np.random.Generator(np.random.Philox(key=key))


def spawn_rngs(seed: int, count: int, *context: object) -> list[np.random.Generator]:
    """Return ``count`` independent generators under a shared context.

    Convenience for per-node local randomness: ``spawn_rngs(seed, n,
    "local")[v]`` is node ``v``'s private stream.
    """
    return [derive_rng(seed, *context, index) for index in range(count)]
