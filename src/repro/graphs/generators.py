"""Topology generators for experiments and tests.

All generators return :class:`networkx.Graph` objects with nodes labelled
``0..n-1``, ready for :class:`repro.graphs.Topology`.  Randomised generators
take an explicit ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

import networkx as nx

from ..errors import ConfigurationError
from ..rng import derive_rng

__all__ = [
    "complete_bipartite_with_isolated",
    "complete_graph",
    "cycle_graph",
    "disk_graph",
    "gnp_graph",
    "grid_graph",
    "path_graph",
    "random_regular_graph",
    "star_graph",
    "balanced_tree_graph",
]


def complete_bipartite_with_isolated(delta: int, n: int) -> nx.Graph:
    """The paper's hard-instance topology (Lemma 14): ``K_{Δ,Δ}`` plus
    ``n - 2Δ`` isolated vertices.

    Nodes ``0..delta-1`` form the left part ``L``, ``delta..2*delta-1`` the
    right part ``R``, and the remainder are isolated.  The graph has ``n``
    vertices and maximum degree ``Δ = delta``.
    """
    if delta < 1:
        raise ConfigurationError(f"delta must be >= 1, got {delta}")
    if n < 2 * delta:
        raise ConfigurationError(
            f"need n >= 2*delta to embed K_(d,d); got n={n}, delta={delta}"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for left in range(delta):
        for right in range(delta, 2 * delta):
            graph.add_edge(left, right)
    return graph


def complete_graph(n: int) -> nx.Graph:
    """The complete graph ``K_n``."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return nx.complete_graph(n)


def path_graph(n: int) -> nx.Graph:
    """A path on ``n`` nodes (diameter ``n - 1``)."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """A cycle on ``n`` nodes (``n >= 3``)."""
    if n < 3:
        raise ConfigurationError(f"cycle needs n >= 3, got {n}")
    return nx.cycle_graph(n)


def star_graph(n: int) -> nx.Graph:
    """A star: node 0 is the hub, connected to ``n - 1`` leaves (``Δ = n-1``)."""
    if n < 1:
        raise ConfigurationError(f"star needs n >= 1, got {n}")
    return nx.star_graph(n - 1)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """A ``rows x cols`` 2-D grid, relabelled to ``0..rows*cols-1``.

    A standard stand-in for a planar sensor deployment (``Δ <= 4``).
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid dimensions must be >= 1")
    grid = nx.grid_2d_graph(rows, cols)
    mapping = {(r, c): r * cols + c for r in range(rows) for c in range(cols)}
    return nx.relabel_nodes(grid, mapping)


def balanced_tree_graph(branching: int, height: int) -> nx.Graph:
    """A balanced ``branching``-ary tree of the given height."""
    if branching < 1 or height < 0:
        raise ConfigurationError("tree needs branching >= 1 and height >= 0")
    return nx.balanced_tree(branching, height)


def gnp_graph(n: int, p: float, seed: int) -> nx.Graph:
    """An Erdős–Rényi ``G(n, p)`` graph."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {p}")
    rng = derive_rng(seed, "gnp", n, p)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        draws = rng.random(n - u - 1)
        for offset, draw in enumerate(draws):
            if draw < p:
                graph.add_edge(u, u + 1 + offset)
    return graph


def random_regular_graph(n: int, degree: int, seed: int) -> nx.Graph:
    """A uniformly random ``degree``-regular simple graph on ``n`` nodes.

    Requires ``n * degree`` even and ``degree < n``.  Regular graphs give
    experiments a sharply controlled ``Δ``.
    """
    if degree >= n or (n * degree) % 2 != 0:
        raise ConfigurationError(
            f"no {degree}-regular graph on {n} nodes (need degree < n and n*degree even)"
        )
    return nx.random_regular_graph(degree, n, seed=derive_seed_int(seed, n, degree))


def disk_graph(n: int, radius: float, seed: int, connect: bool = False) -> nx.Graph:
    """A random geometric (unit-disk) graph on the unit square.

    Models a physical sensor field: ``n`` devices dropped uniformly at
    random, with a link whenever two devices are within ``radius``.  With
    ``connect=True``, the largest connected component is additionally wired
    into a chain so global primitives (beep waves) can be demonstrated.
    """
    if radius <= 0:
        raise ConfigurationError(f"radius must be positive, got {radius}")
    rng = derive_rng(seed, "disk", n, radius)
    points = rng.random((n, 2))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for v in range(n):
        graph.nodes[v]["pos"] = (float(points[v, 0]), float(points[v, 1]))
    radius_sq = radius * radius
    for u in range(n):
        diff = points[u + 1 :] - points[u]
        close = (diff * diff).sum(axis=1) <= radius_sq
        for offset in close.nonzero()[0]:
            graph.add_edge(u, u + 1 + int(offset))
    if connect and n > 1:
        components = [sorted(c) for c in nx.connected_components(graph)]
        components.sort(key=lambda c: c[0])
        for first, second in zip(components, components[1:]):
            graph.add_edge(first[0], second[0])
    return graph


def derive_seed_int(seed: int, *context: object) -> int:
    """Derive a plain int seed for networkx generators (internal helper)."""
    from ..rng import derive_seed

    return derive_seed(seed, "nx", *context) % (2**32)
