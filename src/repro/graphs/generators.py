"""Topology generators and the registered topology-zoo catalog.

All generators return :class:`networkx.Graph` objects with nodes labelled
``0..n-1``, ready for :class:`repro.graphs.Topology`.  Randomised generators
take an explicit ``seed`` so experiments are reproducible (sub-seeds are
derived via :func:`derive_seed_int` / :func:`repro.rng.derive_rng`, never
Python's ``hash``).

Besides the plain generator functions, this module keeps the **topology
zoo**: a registry of :class:`TopologyFamily` entries mapping a family name
to an ``n``-first builder, a parameter schema, and the family's guarantees
(connectivity promise, degree bound).  :func:`build_family_graph` is the
one entry point the sweep engine (:mod:`repro.sweeps`) uses — it resolves
parameters against the schema, builds the graph, and *checks* the promised
invariants before handing the graph out, so a family that silently stopped
honouring its guarantees fails loudly rather than skewing a campaign.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

import networkx as nx

from ..errors import ConfigurationError
from ..rng import derive_rng
from .validation import assert_valid_topology, max_degree

__all__ = [
    "complete_bipartite_with_isolated",
    "complete_graph",
    "cycle_graph",
    "disk_graph",
    "gnp_graph",
    "grid_graph",
    "path_graph",
    "random_regular_graph",
    "star_graph",
    "balanced_tree_graph",
    "expander_graph",
    "hypercube_graph",
    "torus_graph",
    "barbell_graph",
    "caterpillar_graph",
    "powerlaw_graph",
    "FamilyParam",
    "TopologyFamily",
    "register_family",
    "get_family",
    "family_names",
    "topology_families",
    "build_family_graph",
]


def complete_bipartite_with_isolated(delta: int, n: int) -> nx.Graph:
    """The paper's hard-instance topology (Lemma 14): ``K_{Δ,Δ}`` plus
    ``n - 2Δ`` isolated vertices.

    Nodes ``0..delta-1`` form the left part ``L``, ``delta..2*delta-1`` the
    right part ``R``, and the remainder are isolated.  The graph has ``n``
    vertices and maximum degree ``Δ = delta``.
    """
    if delta < 1:
        raise ConfigurationError(f"delta must be >= 1, got {delta}")
    if n < 2 * delta:
        raise ConfigurationError(
            f"need n >= 2*delta to embed K_(d,d); got n={n}, delta={delta}"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for left in range(delta):
        for right in range(delta, 2 * delta):
            graph.add_edge(left, right)
    return graph


def complete_graph(n: int) -> nx.Graph:
    """The complete graph ``K_n``."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return nx.complete_graph(n)


def path_graph(n: int) -> nx.Graph:
    """A path on ``n`` nodes (diameter ``n - 1``)."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """A cycle on ``n`` nodes (``n >= 3``)."""
    if n < 3:
        raise ConfigurationError(f"cycle needs n >= 3, got {n}")
    return nx.cycle_graph(n)


def star_graph(n: int) -> nx.Graph:
    """A star: node 0 is the hub, connected to ``n - 1`` leaves (``Δ = n-1``)."""
    if n < 1:
        raise ConfigurationError(f"star needs n >= 1, got {n}")
    return nx.star_graph(n - 1)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """A ``rows x cols`` 2-D grid, relabelled to ``0..rows*cols-1``.

    A standard stand-in for a planar sensor deployment (``Δ <= 4``).
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid dimensions must be >= 1")
    grid = nx.grid_2d_graph(rows, cols)
    mapping = {(r, c): r * cols + c for r in range(rows) for c in range(cols)}
    return nx.relabel_nodes(grid, mapping)


def balanced_tree_graph(branching: int, height: int) -> nx.Graph:
    """A balanced ``branching``-ary tree of the given height."""
    if branching < 1 or height < 0:
        raise ConfigurationError("tree needs branching >= 1 and height >= 0")
    return nx.balanced_tree(branching, height)


def gnp_graph(n: int, p: float, seed: int) -> nx.Graph:
    """An Erdős–Rényi ``G(n, p)`` graph."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {p}")
    rng = derive_rng(seed, "gnp", n, p)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        draws = rng.random(n - u - 1)
        for offset, draw in enumerate(draws):
            if draw < p:
                graph.add_edge(u, u + 1 + offset)
    return graph


def random_regular_graph(n: int, degree: int, seed: int) -> nx.Graph:
    """A uniformly random ``degree``-regular simple graph on ``n`` nodes.

    Requires ``n * degree`` even and ``degree < n``.  Regular graphs give
    experiments a sharply controlled ``Δ``.
    """
    if degree >= n or (n * degree) % 2 != 0:
        raise ConfigurationError(
            f"no {degree}-regular graph on {n} nodes (need degree < n and n*degree even)"
        )
    return nx.random_regular_graph(degree, n, seed=derive_seed_int(seed, n, degree))


def disk_graph(n: int, radius: float, seed: int, connect: bool = False) -> nx.Graph:
    """A random geometric (unit-disk) graph on the unit square.

    Models a physical sensor field: ``n`` devices dropped uniformly at
    random, with a link whenever two devices are within ``radius``.  With
    ``connect=True``, the largest connected component is additionally wired
    into a chain so global primitives (beep waves) can be demonstrated.
    """
    if radius <= 0:
        raise ConfigurationError(f"radius must be positive, got {radius}")
    rng = derive_rng(seed, "disk", n, radius)
    points = rng.random((n, 2))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for v in range(n):
        graph.nodes[v]["pos"] = (float(points[v, 0]), float(points[v, 1]))
    radius_sq = radius * radius
    for u in range(n):
        diff = points[u + 1 :] - points[u]
        close = (diff * diff).sum(axis=1) <= radius_sq
        for offset in close.nonzero()[0]:
            graph.add_edge(u, u + 1 + int(offset))
    if connect and n > 1:
        components = [sorted(c) for c in nx.connected_components(graph)]
        components.sort(key=lambda c: c[0])
        for first, second in zip(components, components[1:]):
            graph.add_edge(first[0], second[0])
    return graph


def derive_seed_int(seed: int, *context: object) -> int:
    """Derive a plain int seed for networkx generators (internal helper)."""
    from ..rng import derive_seed

    return derive_seed(seed, "nx", *context) % (2**32)


def expander_graph(n: int, degree: int = 3, seed: int = 0) -> nx.Graph:
    """A ``degree``-regular expander built as a random lift of ``K_{d+1}``.

    Takes the complete graph on ``degree + 1`` vertices (the smallest
    ``degree``-regular graph) and applies a uniformly random ``k``-lift
    with ``k = n / (degree + 1)``: each base edge ``(u, v)`` becomes a
    random perfect matching between the ``k`` copies of ``u`` and the
    ``k`` copies of ``v``.  Random lifts of good expanders are near-Ramanujan
    expanders with high probability (Amit & Linial, *Random Graph
    Coverings I*, Combinatorica 2002; Bordenave 2015 for the spectral
    bound), giving the zoo a **low-diameter, constant-degree** family —
    the regime where the paper's ``O(Δ log n)`` overhead is smallest
    relative to the information the network moves per round.

    Guarantees: exactly ``n`` nodes, ``degree``-regular, connected
    (disconnected lifts — exponentially rare — are retried on a derived
    seed sequence, deterministically).  Requires ``degree >= 3`` and
    ``n`` a positive multiple of ``degree + 1``.
    """
    if degree < 3:
        raise ConfigurationError(
            f"expander needs degree >= 3 (2-regular lifts are cycles), got {degree}"
        )
    base = degree + 1
    if n < base or n % base != 0:
        raise ConfigurationError(
            f"expander needs n a positive multiple of degree+1={base}, got n={n}"
        )
    layers = n // base
    rng = derive_rng(seed, "expander", n, degree)
    base_edges = [(u, v) for u in range(base) for v in range(u + 1, base)]
    for _attempt in range(8):
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for u, v in base_edges:
            matching = rng.permutation(layers)
            for layer in range(layers):
                graph.add_edge(
                    u * layers + layer, v * layers + int(matching[layer])
                )
        if nx.is_connected(graph):
            return graph
    raise ConfigurationError(
        f"expander lift stayed disconnected after 8 attempts "
        f"(n={n}, degree={degree}, seed={seed})"
    )  # pragma: no cover - probability ~0 for degree >= 3


def hypercube_graph(n: int) -> nx.Graph:
    """The ``d``-dimensional hypercube ``Q_d`` on ``n = 2^d`` nodes.

    Node ``v`` is adjacent to every ``v XOR 2^i`` — degree ``d = log2 n``
    everywhere, diameter ``d``.  The classic interconnect topology (and
    the shape of CXL/pod-style fabrics): degree *grows* with ``n`` as
    ``log n``, so the simulation overhead picks up an extra ``log n``
    factor relative to constant-degree families — a distinct scaling
    regime for the zoo.

    Guarantees: exactly ``n`` nodes, ``log2 n``-regular, connected.
    Requires ``n`` a power of two, ``n >= 2``.
    """
    if n < 2 or n & (n - 1):
        raise ConfigurationError(
            f"hypercube needs n a power of two >= 2, got {n}"
        )
    dimension = n.bit_length() - 1
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for v in range(n):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if u > v:
                graph.add_edge(v, u)
    return graph


def torus_graph(n: int, rows: int | None = None) -> nx.Graph:
    """A 2-D torus (wrap-around grid): 4-regular, diameter ``Θ(√n)``.

    The standard bounded-degree mesh with no boundary effects — every
    node looks identical, so decoding failures cannot hide at low-degree
    border nodes the way they can on :func:`grid_graph`.  With ``rows``
    unset the most nearly square factorisation ``rows × cols`` of ``n``
    is used.

    Guarantees: exactly ``n`` nodes, 4-regular, connected.  Requires a
    factorisation with both sides ``>= 3`` (so wrap-around edges are
    simple); primes and tiny ``n`` are rejected.
    """
    if rows is None:
        rows = next(
            (
                candidate
                for candidate in range(math.isqrt(n), 2, -1)
                if n % candidate == 0 and n // candidate >= 3
            ),
            0,
        )
        if rows == 0:
            raise ConfigurationError(
                f"torus needs n = rows*cols with rows, cols >= 3; "
                f"n={n} has no such factorisation"
            )
    if rows < 3 or n % rows != 0 or n // rows < 3:
        raise ConfigurationError(
            f"torus needs rows >= 3 dividing n with n/rows >= 3; "
            f"got n={n}, rows={rows}"
        )
    cols = n // rows
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            graph.add_edge(v, ((r + 1) % rows) * cols + c)
            graph.add_edge(v, r * cols + (c + 1) % cols)
    return graph


def _default_barbell_clique(n: int) -> int:
    """The default barbell clique size — shared by the generator and the
    zoo family's degree-bound promise so the two cannot drift."""
    return max(3, n // 3)


def barbell_graph(n: int, clique: int | None = None) -> nx.Graph:
    """Two ``clique``-cliques joined by a path: dense cores, thin bridge.

    The textbook worst case for anything that must move information
    *between* dense regions: the two ``K_clique`` ends force a large
    ``Δ`` (hence long codes), while every bit crossing the bridge path
    is serialised through degree-2 nodes.  ``clique`` defaults to
    ``max(3, n // 3)``, leaving a ``n - 2*clique``-node path.

    Guarantees: exactly ``n`` nodes, connected, ``Δ = clique``.
    Requires ``clique >= 3`` and ``n >= 2*clique``.
    """
    if clique is None:
        clique = _default_barbell_clique(n)
    if clique < 3:
        raise ConfigurationError(f"barbell needs clique >= 3, got {clique}")
    if n < 2 * clique:
        raise ConfigurationError(
            f"barbell needs n >= 2*clique; got n={n}, clique={clique}"
        )
    return nx.barbell_graph(clique, n - 2 * clique)


def caterpillar_graph(n: int, legs: int = 2) -> nx.Graph:
    """A caterpillar tree: a spine path with ``legs`` leaves per node.

    Caterpillars (Harary & Schwenk, *The number of caterpillars*, 1973)
    are the trees whose non-leaf nodes form a path — a deterministic,
    maximally unbalanced tree family.  Leaves hear only their spine
    node, so one noisy phase-1 decode at a spine node corrupts many
    downstream leaves: a sharp stress test for the per-node error
    accounting.  The spine has ``n // (legs+1)`` nodes; the remainder
    is distributed one extra leaf per spine node from the front.

    Guarantees: exactly ``n`` nodes, connected (a tree),
    ``Δ <= legs + 3``.  Requires ``legs >= 0`` and a spine of at least
    two nodes whose length covers the remainder.
    """
    if legs < 0:
        raise ConfigurationError(f"caterpillar needs legs >= 0, got {legs}")
    spine = n // (legs + 1)
    extra = n - spine * (legs + 1)
    if spine < 2 or extra > spine:
        raise ConfigurationError(
            f"caterpillar with legs={legs} needs n >= 2*(legs+1) "
            f"(and n mod (legs+1) <= spine); got n={n}"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for s in range(spine - 1):
        graph.add_edge(s, s + 1)
    next_leaf = spine
    for s in range(spine):
        for _ in range(legs + (1 if s < extra else 0)):
            graph.add_edge(s, next_leaf)
            next_leaf += 1
    return graph


def powerlaw_graph(n: int, attachment: int = 2, seed: int = 0) -> nx.Graph:
    """A Barabási–Albert preferential-attachment graph (power-law degrees).

    Each new node attaches to ``attachment`` existing nodes with
    probability proportional to their degree (Barabási & Albert,
    *Emergence of scaling in random networks*, Science 1999).  The
    resulting heavy-tailed degree distribution is the shape of real
    P2P/overlay deployments (cf. the PODS blockchain topologies in
    PAPERS.md): a few hubs with degree ``≫`` the median force the
    global ``Δ`` — and with it every code length — far above what the
    typical node needs, the regime where worst-case-``Δ`` analyses are
    most pessimistic.

    Guarantees: exactly ``n`` nodes, connected.  No degree bound — the
    hubs are the point.  Requires ``1 <= attachment < n``.
    """
    if attachment < 1 or attachment >= n:
        raise ConfigurationError(
            f"powerlaw needs 1 <= attachment < n, got attachment={attachment}, n={n}"
        )
    return nx.barabasi_albert_graph(
        n, attachment, seed=derive_seed_int(seed, "powerlaw", n, attachment)
    )


# --------------------------------------------------------------------------
# The topology zoo: a registered catalog of name -> builder + param schema.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FamilyParam:
    """Schema entry for one tunable parameter of a topology family.

    Attributes
    ----------
    name:
        Parameter key as it appears in grid specs (``[params.<family>]``).
    kind:
        ``int`` or ``float`` — the accepted scalar type (bools rejected).
    default:
        Value used when the parameter is omitted; ``None`` marks an
        optional parameter the builder derives itself (e.g. torus rows).
    doc:
        One-line description shown in listings and error messages.
    minimum:
        Inclusive lower bound checked at resolution time, when set.
    """

    name: str
    kind: type
    default: object
    doc: str
    minimum: float | None = None

    def coerce(self, value: object, family: str) -> object:
        """Validate and coerce one supplied value, or raise (one line)."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"family {family!r}: parameter {self.name!r} must be a "
                f"{self.kind.__name__}, got {value!r}"
            )
        if self.kind is int:
            if not isinstance(value, int):
                raise ConfigurationError(
                    f"family {family!r}: parameter {self.name!r} must be an "
                    f"int, got {value!r}"
                )
        else:
            value = float(value)
        if self.minimum is not None and value < self.minimum:
            raise ConfigurationError(
                f"family {family!r}: parameter {self.name!r} must be >= "
                f"{self.minimum}, got {value!r}"
            )
        return value


@dataclass(frozen=True)
class TopologyFamily:
    """One registered topology-zoo family.

    Attributes
    ----------
    name:
        Registry key used by grid specs and :func:`build_family_graph`.
    builder:
        ``(n, seed, params) -> nx.Graph`` adapter over a generator above.
    description:
        What the family is and why it stresses the algorithm.
    params:
        Schema of the accepted extra parameters.
    connected:
        Whether the family *promises* connected output (checked).
    degree_bound:
        Optional ``(n, params) -> Δ`` promise, checked after building.
    citation:
        Where the construction comes from (paper or textbook family).
    """

    name: str
    builder: Callable[[int, int, dict], nx.Graph]
    description: str
    params: tuple[FamilyParam, ...] = ()
    connected: bool = False
    degree_bound: "Callable[[int, dict], int] | None" = None
    citation: str = ""

    def resolve_params(self, overrides: "Mapping | None") -> dict:
        """Merge ``overrides`` into the schema defaults, validating both
        the key set and every value; unknown keys raise a one-line
        :class:`ConfigurationError` naming the allowed parameters."""
        schema = {param.name: param for param in self.params}
        resolved = {param.name: param.default for param in self.params}
        for key, value in (overrides or {}).items():
            if key not in schema:
                allowed = ", ".join(sorted(schema)) or "(none)"
                raise ConfigurationError(
                    f"family {self.name!r} has no parameter {key!r}; "
                    f"allowed: {allowed}"
                )
            if value is None:  # explicit None = keep the schema default
                continue
            resolved[key] = schema[key].coerce(value, self.name)
        return resolved


#: The zoo registry, keyed by family name (insertion order = listing order).
_FAMILIES: dict[str, TopologyFamily] = {}


def register_family(family: TopologyFamily) -> TopologyFamily:
    """Add one family to the zoo; duplicate names are a configuration bug."""
    if family.name in _FAMILIES:
        raise ConfigurationError(
            f"topology family {family.name!r} registered twice"
        )
    _FAMILIES[family.name] = family
    return family


def family_names() -> tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(_FAMILIES))


def topology_families() -> tuple[TopologyFamily, ...]:
    """All registered families, sorted by name."""
    return tuple(_FAMILIES[name] for name in family_names())


def get_family(name: str) -> TopologyFamily:
    """Look up a zoo family by name.

    Unknown names raise a one-line :class:`ConfigurationError` listing
    every known family — the message the sweep CLI surfaces verbatim.
    """
    family = _FAMILIES.get(name)
    if family is None:
        raise ConfigurationError(
            f"unknown topology family {name!r}; known: "
            f"{', '.join(family_names())}"
        )
    return family


def build_family_graph(
    name: str,
    n: int,
    seed: int = 0,
    params: "Mapping | None" = None,
) -> nx.Graph:
    """Build one validated zoo graph: the sweep engine's entry point.

    Resolves ``params`` against the family schema, builds the graph, and
    enforces the family's declared invariants — exactly ``n`` nodes with
    labels ``0..n-1``, no self-loops, connectivity when promised, and the
    degree bound when promised.  Violations raise
    :class:`ConfigurationError` rather than producing a silently-wrong
    campaign cell.
    """
    family = get_family(name)
    if isinstance(n, bool) or not isinstance(n, int) or n < 1:
        raise ConfigurationError(
            f"family {name!r}: n must be a positive int, got {n!r}"
        )
    resolved = family.resolve_params(params)
    graph = family.builder(n, seed, resolved)
    if graph.number_of_nodes() != n:
        raise ConfigurationError(
            f"family {name!r} produced {graph.number_of_nodes()} nodes "
            f"for n={n} (generator bug)"
        )
    assert_valid_topology(graph)
    if family.connected and n > 1 and not nx.is_connected(graph):
        raise ConfigurationError(
            f"family {name!r} promised a connected graph but produced a "
            f"disconnected one (n={n}, seed={seed})"
        )
    if family.degree_bound is not None:
        bound = family.degree_bound(n, resolved)
        realized = max_degree(graph)
        if realized > bound:
            raise ConfigurationError(
                f"family {name!r} exceeded its degree bound: "
                f"Delta={realized} > {bound} (n={n}, seed={seed})"
            )
    return graph


def _near_square_grid(n: int) -> tuple[int, int]:
    """The most nearly square ``rows x cols`` factorisation of ``n``."""
    rows = next(
        candidate
        for candidate in range(math.isqrt(n), 0, -1)
        if n % candidate == 0
    )
    return rows, n // rows


def _balanced_tree_height(n: int, branching: int) -> int:
    """Height ``h`` with ``1 + b + ... + b^h == n``, or raise (one line)."""
    size, height = 1, 0
    while size < n:
        size += branching ** (height + 1)
        height += 1
    if size != n:
        raise ConfigurationError(
            f"tree with branching={branching} needs n in "
            f"{{1, 1+{branching}, 1+{branching}+{branching}^2, ...}}; got n={n}"
        )
    return height


register_family(
    TopologyFamily(
        name="complete",
        builder=lambda n, seed, p: complete_graph(n),
        description="K_n: every pair adjacent; Delta = n-1, the maximum "
        "possible code length per node count.",
        connected=True,
        degree_bound=lambda n, p: n - 1,
        citation="folklore",
    )
)
register_family(
    TopologyFamily(
        name="path",
        builder=lambda n, seed, p: path_graph(n),
        description="Path: diameter n-1, Delta <= 2; the slowest "
        "information spread per round.",
        connected=True,
        degree_bound=lambda n, p: 2,
        citation="folklore",
    )
)
register_family(
    TopologyFamily(
        name="cycle",
        builder=lambda n, seed, p: cycle_graph(n),
        description="Cycle: 2-regular, diameter n/2; the minimal "
        "vertex-transitive family.",
        connected=True,
        degree_bound=lambda n, p: 2,
        citation="folklore",
    )
)
register_family(
    TopologyFamily(
        name="star",
        builder=lambda n, seed, p: star_graph(n),
        description="Star: one hub of degree n-1; the worst single-point "
        "superimposition (all leaves collide at the hub).",
        connected=True,
        degree_bound=lambda n, p: n - 1,
        citation="folklore",
    )
)
register_family(
    TopologyFamily(
        name="grid",
        builder=lambda n, seed, p: grid_graph(*_near_square_grid(n)),
        description="2-D grid (most nearly square rows x cols): planar "
        "sensor deployment, Delta <= 4, boundary effects included.",
        connected=True,
        degree_bound=lambda n, p: 4,
        citation="folklore",
    )
)
register_family(
    TopologyFamily(
        name="tree",
        builder=lambda n, seed, p: balanced_tree_graph(
            p["branching"], _balanced_tree_height(n, p["branching"])
        ),
        description="Balanced branching-ary tree: unique paths, "
        "logarithmic diameter; n must be a full tree size.",
        params=(
            FamilyParam(
                "branching", int, 2, "children per internal node", minimum=2
            ),
        ),
        connected=True,
        degree_bound=lambda n, p: p["branching"] + 1,
        citation="folklore",
    )
)
register_family(
    TopologyFamily(
        name="gnp",
        builder=lambda n, seed, p: gnp_graph(n, p["p"], seed=seed),
        description="Erdos-Renyi G(n, p): independent edges; degree "
        "concentration around pn, possibly disconnected.",
        params=(
            FamilyParam("p", float, 0.2, "edge probability", minimum=0.0),
        ),
        connected=False,
        degree_bound=None,
        citation="Erdos & Renyi 1959",
    )
)
register_family(
    TopologyFamily(
        name="regular",
        builder=lambda n, seed, p: random_regular_graph(
            n, p["degree"], seed=seed
        ),
        description="Uniform random degree-regular graph: sharply "
        "controlled Delta = degree, expander-like whp but without the "
        "promise.",
        params=(
            FamilyParam("degree", int, 3, "degree of every node", minimum=1),
        ),
        connected=False,
        degree_bound=lambda n, p: p["degree"],
        citation="Bollobas 1980 (configuration model)",
    )
)
register_family(
    TopologyFamily(
        name="disk",
        builder=lambda n, seed, p: disk_graph(
            n, p["radius"], seed=seed, connect=True
        ),
        description="Random geometric (unit-disk) graph, wired connected: "
        "a physical radio field with local clusters.",
        params=(
            FamilyParam("radius", float, 0.35, "connection radius", minimum=1e-9),
        ),
        connected=True,
        degree_bound=None,
        citation="Gilbert 1961",
    )
)
register_family(
    TopologyFamily(
        name="planted",
        builder=lambda n, seed, p: complete_bipartite_with_isolated(
            p["delta"], n
        ),
        description="The paper's planted hard instance (Lemma 14): "
        "K_{delta,delta} plus isolated vertices — the lower-bound "
        "topology, degree bounded by delta by construction.",
        params=(
            FamilyParam("delta", int, 3, "bipartite side size Delta", minimum=1),
        ),
        connected=False,
        degree_bound=lambda n, p: p["delta"],
        citation="Davies, PODC 2023, Lemma 14",
    )
)
register_family(
    TopologyFamily(
        name="expander",
        builder=lambda n, seed, p: expander_graph(n, p["degree"], seed=seed),
        description="Random lift of K_{d+1}: constant-degree expander, "
        "logarithmic diameter — minimal overhead per information moved.",
        params=(
            FamilyParam("degree", int, 3, "regular degree (>= 3)", minimum=3),
        ),
        connected=True,
        degree_bound=lambda n, p: p["degree"],
        citation="Amit & Linial 2002 (random lifts)",
    )
)
register_family(
    TopologyFamily(
        name="hypercube",
        builder=lambda n, seed, p: hypercube_graph(n),
        description="Hypercube Q_d on n = 2^d nodes: degree grows as "
        "log n, so overhead gains an extra log factor.",
        connected=True,
        degree_bound=lambda n, p: max(1, n.bit_length() - 1),
        citation="folklore (interconnects)",
    )
)
register_family(
    TopologyFamily(
        name="torus",
        builder=lambda n, seed, p: torus_graph(
            n, p["rows"] if p["rows"] is not None else None
        ),
        description="2-D torus: 4-regular mesh with no boundary — every "
        "node statistically identical.",
        params=(
            FamilyParam(
                "rows", int, None, "row count (default: near-square)", minimum=3
            ),
        ),
        connected=True,
        degree_bound=lambda n, p: 4,
        citation="folklore (meshes)",
    )
)
register_family(
    TopologyFamily(
        name="barbell",
        builder=lambda n, seed, p: barbell_graph(n, p["clique"]),
        description="Two cliques joined by a path: large Delta from the "
        "cores, serialised bridge traffic.",
        params=(
            FamilyParam(
                "clique", int, None, "clique size (default n//3)", minimum=3
            ),
        ),
        connected=True,
        degree_bound=lambda n, p: (
            p["clique"] if p["clique"] is not None else _default_barbell_clique(n)
        ),
        citation="folklore",
    )
)
register_family(
    TopologyFamily(
        name="caterpillar",
        builder=lambda n, seed, p: caterpillar_graph(n, p["legs"]),
        description="Caterpillar tree: spine path with leaves; one spine "
        "misdecode corrupts many leaves.",
        params=(
            FamilyParam("legs", int, 2, "leaves per spine node", minimum=0),
        ),
        connected=True,
        degree_bound=lambda n, p: p["legs"] + 3,
        citation="Harary & Schwenk 1973",
    )
)
register_family(
    TopologyFamily(
        name="powerlaw",
        builder=lambda n, seed, p: powerlaw_graph(
            n, p["attachment"], seed=seed
        ),
        description="Barabasi-Albert preferential attachment: hub-dominated "
        "P2P-overlay shape; a few hubs force the global Delta.",
        params=(
            FamilyParam(
                "attachment", int, 2, "edges per arriving node", minimum=1
            ),
        ),
        connected=True,
        degree_bound=None,
        citation="Barabasi & Albert 1999",
    )
)
