"""Graph validation helpers shared by generators, simulators, and tests."""

from __future__ import annotations

import networkx as nx

from ..errors import ConfigurationError

__all__ = ["assert_valid_topology", "max_degree", "relabel_consecutive"]


def assert_valid_topology(graph: nx.Graph) -> None:
    """Raise :class:`ConfigurationError` unless ``graph`` is simulator-ready.

    Requirements: undirected, simple (no self-loops), nodes ``0..n-1``.
    """
    if graph.is_directed():
        raise ConfigurationError("graph must be undirected")
    n = graph.number_of_nodes()
    if sorted(graph.nodes) != list(range(n)):
        raise ConfigurationError("graph nodes must be exactly 0..n-1")
    for u, v in graph.edges:
        if u == v:
            raise ConfigurationError(f"self-loop at node {u} is not allowed")


def max_degree(graph: nx.Graph) -> int:
    """Return ``Δ``, the maximum degree (0 for an empty/edgeless graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    return max(degree for _, degree in graph.degree)


def relabel_consecutive(graph: nx.Graph) -> nx.Graph:
    """Return a copy of ``graph`` with nodes relabelled to ``0..n-1``.

    Nodes are ordered by their sort order when comparable, falling back to
    string order otherwise, so relabelling is deterministic.
    """
    nodes = list(graph.nodes)
    try:
        nodes.sort()
    except TypeError:
        nodes.sort(key=str)
    mapping = {node: index for index, node in enumerate(nodes)}
    return nx.relabel_nodes(graph, mapping)
