"""Lower-bound hard instances from Section 5 and Theorem 22 of the paper.

Lemma 14 proves the Ω(Δ²B) local-broadcast lower bound on ``K_{Δ,Δ}`` plus
isolated vertices, with uniformly random ``B``-bit messages on left-to-right
edges and all other messages zero.  Theorem 22 proves the Ω(Δ log n)
maximal-matching bound on ``K_{Δ,Δ}`` with IDs drawn from ``[n⁴]``.  This
module constructs those exact distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import ConfigurationError
from ..rng import derive_rng
from .generators import complete_bipartite_with_isolated

__all__ = [
    "LocalBroadcastInstance",
    "local_broadcast_hard_instance",
    "matching_hard_instance",
]


@dataclass(frozen=True)
class LocalBroadcastInstance:
    """An input instance of B-bit Local Broadcast (Definition 13).

    Attributes
    ----------
    graph:
        The network topology.
    message_bits:
        The message size ``B``.
    ids:
        ``ids[v]`` is node ``v``'s unique identifier in ``[n]``.
    messages:
        ``messages[(v, u)]`` is the ``B``-bit message ``m_{v→u}`` node ``v``
        must deliver to its neighbour ``u``, as an integer in ``[0, 2^B)``.
    """

    graph: nx.Graph
    message_bits: int
    ids: dict[int, int]
    messages: dict[tuple[int, int], int] = field(repr=False)

    def expected_output(self, v: int) -> set[tuple[int, int]]:
        """The set ``{(ID_u, m_{u→v})}`` node ``v`` must output."""
        return {
            (self.ids[u], self.messages[(u, v)]) for u in self.graph.neighbors(v)
        }


def local_broadcast_hard_instance(
    delta: int, n: int, message_bits: int, seed: int
) -> LocalBroadcastInstance:
    """The hard distribution of Lemma 14.

    ``K_{Δ,Δ}`` plus ``n - 2Δ`` isolated vertices; messages from left nodes
    to right nodes are independent uniform ``B``-bit strings, every other
    message is the all-zeros string.  IDs are ``0..n-1`` (the lemma fixes
    them arbitrarily).
    """
    if message_bits < 1:
        raise ConfigurationError(f"message_bits must be >= 1, got {message_bits}")
    graph = complete_bipartite_with_isolated(delta, n)
    rng = derive_rng(seed, "lb-local-broadcast", delta, n, message_bits)
    ids = {v: v for v in range(n)}
    messages: dict[tuple[int, int], int] = {}
    for left in range(delta):
        for right in range(delta, 2 * delta):
            messages[(left, right)] = int(rng.integers(0, 2**message_bits))
            messages[(right, left)] = 0
    return LocalBroadcastInstance(
        graph=graph, message_bits=message_bits, ids=ids, messages=messages
    )


def matching_hard_instance(delta: int, n: int, seed: int) -> tuple[nx.Graph, dict[int, int]]:
    """The hard ensemble of Theorem 22: ``K_{Δ,Δ}`` with random IDs in ``[n⁴]``.

    Returns ``(graph, ids)`` where the graph is ``K_{Δ,Δ}`` on nodes
    ``0..2Δ-1`` and ``ids[v]`` is drawn independently uniformly from
    ``[n⁴]``.  ID collisions (probability ``O(Δ²/n⁴)``) are resampled, as
    the theorem conditions on unique IDs.
    """
    if n < 2 * delta:
        raise ConfigurationError(f"need n >= 2*delta, got n={n}, delta={delta}")
    graph = complete_bipartite_with_isolated(delta, 2 * delta)
    rng = derive_rng(seed, "lb-matching", delta, n)
    id_space = n**4
    while True:
        draws = [int(rng.integers(0, id_space)) for _ in range(2 * delta)]
        if len(set(draws)) == 2 * delta:
            return graph, {v: draws[v] for v in range(2 * delta)}
