"""Executable topology: CSR adjacency built from a ``networkx`` graph.

The beeping and CONGEST simulators both run on :class:`Topology`, which
precomputes the structures every round touches: a boolean CSR adjacency
matrix (for vectorised OR-of-neighbours), per-node neighbour lists, and
degree statistics.
"""

from __future__ import annotations

from functools import cached_property

import networkx as nx
import numpy as np
import scipy.sparse as sp

from ..errors import ConfigurationError

__all__ = ["Topology"]


class Topology:
    """An immutable, simulator-ready view of an undirected network.

    Parameters
    ----------
    graph:
        An undirected simple graph whose nodes are exactly ``0..n-1``.
        Self-loops are rejected: a device does not hear its own antenna in
        the beeping model (its own beeps are accounted for separately, per
        the paper's "receives a 1 if it beeps itself" convention).
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.is_directed():
            raise ConfigurationError("topology must be an undirected graph")
        n = graph.number_of_nodes()
        if sorted(graph.nodes) != list(range(n)):
            raise ConfigurationError(
                "topology nodes must be labelled 0..n-1; "
                "use graphs.relabel_consecutive first"
            )
        if any(u == v for u, v in graph.edges):
            raise ConfigurationError("topology must not contain self-loops")
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(n))
        self._graph.add_edges_from(graph.edges)
        self._num_nodes = n

    @property
    def num_nodes(self) -> int:
        """Number of devices ``n``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of communication links ``m``."""
        return self._graph.number_of_edges()

    @property
    def graph(self) -> nx.Graph:
        """The underlying ``networkx`` graph (do not mutate)."""
        return self._graph

    @cached_property
    def adjacency(self) -> sp.csr_matrix:
        """Boolean CSR adjacency matrix of shape ``(n, n)``."""
        if self.num_nodes == 0:
            return sp.csr_matrix((0, 0), dtype=bool)
        matrix = nx.to_scipy_sparse_array(
            self._graph, nodelist=range(self.num_nodes), dtype=bool, format="csr"
        )
        return sp.csr_matrix(matrix)

    @cached_property
    def neighbors(self) -> list[np.ndarray]:
        """Per-node sorted neighbour index arrays."""
        indptr = self.adjacency.indptr
        indices = self.adjacency.indices
        return [
            np.sort(indices[indptr[v] : indptr[v + 1]]) for v in range(self.num_nodes)
        ]

    @cached_property
    def packed_adjacency(self) -> np.ndarray:
        """Row-bitmap adjacency: ``uint64`` matrix of shape ``(n, ceil(n/64))``.

        Bit ``u % 64`` of word ``u // 64`` in row ``v`` is set iff ``{u, v}``
        is an edge.  The bit-packed backend's per-round carrier-sense reads
        this directly: node ``v`` hears a beep iff ``row_v & beep_words`` is
        non-zero anywhere.
        """
        n = self.num_nodes
        words = (n + 63) // 64
        bitmap = np.zeros((n, words), dtype=np.uint64)
        indptr = self.adjacency.indptr
        indices = self.adjacency.indices.astype(np.int64)
        if indices.size:
            rows = np.repeat(np.arange(n), np.diff(indptr))
            np.bitwise_or.at(
                bitmap,
                (rows, indices >> 6),
                np.uint64(1) << (indices & 63).astype(np.uint64),
            )
        return bitmap

    @cached_property
    def degrees(self) -> np.ndarray:
        """Per-node degree vector."""
        return np.asarray(
            [self._graph.degree[v] for v in range(self.num_nodes)], dtype=np.int64
        )

    @property
    def max_degree(self) -> int:
        """Maximum degree ``Δ`` of the network (0 for edgeless graphs)."""
        if self.num_nodes == 0:
            return 0
        return int(self.degrees.max(initial=0))

    def edges(self) -> list[tuple[int, int]]:
        """All edges as sorted ``(min, max)`` pairs."""
        return [tuple(sorted(edge)) for edge in self._graph.edges]

    def shard_plan(self, shards: int):
        """The ``shards``-way hash partition of this topology, cached.

        Builds (once per shard count) the
        :class:`~repro.engine.sharded.ShardPlan` the sharded execution
        tier runs on — deterministic hash ownership, per-rank CSR shards,
        halo and exchange maps.  Repeated sharded runs over one topology
        reuse the cached plan; the coordinator also keys its loaded
        worker state on the plan's identity.
        """
        cache = self.__dict__.setdefault("_shard_plans", {})
        plan = cache.get(shards)
        if plan is None:
            from ..engine.sharded import build_shard_plan

            plan = build_shard_plan(self, shards)
            cache[shards] = plan
        return plan

    def are_adjacent(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` share a link."""
        return self._graph.has_edge(u, v)

    def neighbor_or(self, beeps: np.ndarray) -> np.ndarray:
        """Carrier-sensing primitive: for each node, OR of neighbours' beeps.

        Given a boolean vector (or ``(n, r)`` matrix, one column per round)
        of who beeps, return a same-shaped array whose entry for node ``v``
        is ``True`` iff at least one *neighbour* of ``v`` beeped.  A node's
        own beep does not contribute to its own entry.
        """
        beeps = np.asarray(beeps)
        if beeps.shape[0] != self.num_nodes:
            raise ConfigurationError(
                f"beep vector has {beeps.shape[0]} rows, expected {self.num_nodes}"
            )
        counts = self.adjacency @ beeps.astype(np.int64)
        return counts > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(n={self.num_nodes}, m={self.num_edges}, "
            f"max_degree={self.max_degree})"
        )
