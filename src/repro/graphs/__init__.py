"""Network topology generators and graph utilities.

Graphs are exchanged as :class:`networkx.Graph` objects with nodes labelled
``0..n-1``; :class:`Topology` converts them into the CSR adjacency form the
simulators execute on.
"""

from .topology import Topology
from .generators import (
    complete_bipartite_with_isolated,
    complete_graph,
    cycle_graph,
    disk_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    balanced_tree_graph,
    expander_graph,
    hypercube_graph,
    torus_graph,
    barbell_graph,
    caterpillar_graph,
    powerlaw_graph,
    FamilyParam,
    TopologyFamily,
    register_family,
    get_family,
    family_names,
    topology_families,
    build_family_graph,
)
from .validation import (
    assert_valid_topology,
    max_degree,
    relabel_consecutive,
)
from .hard_instances import (
    LocalBroadcastInstance,
    local_broadcast_hard_instance,
    matching_hard_instance,
)

__all__ = [
    "Topology",
    "complete_bipartite_with_isolated",
    "complete_graph",
    "cycle_graph",
    "disk_graph",
    "gnp_graph",
    "grid_graph",
    "path_graph",
    "random_regular_graph",
    "star_graph",
    "balanced_tree_graph",
    "expander_graph",
    "hypercube_graph",
    "torus_graph",
    "barbell_graph",
    "caterpillar_graph",
    "powerlaw_graph",
    "FamilyParam",
    "TopologyFamily",
    "register_family",
    "get_family",
    "family_names",
    "topology_families",
    "build_family_graph",
    "assert_valid_topology",
    "max_degree",
    "relabel_consecutive",
    "LocalBroadcastInstance",
    "local_broadcast_hard_instance",
    "matching_hard_instance",
]
