"""The paper's primary contribution: optimal message-passing with noisy beeps.

* :class:`SimulationParameters` — the code-parameter engine (paper-strict
  constants of Lemmas 9–10 and practical presets);
* :func:`simulate_broadcast_round` — Algorithm 1: one Broadcast CONGEST
  round in ``O(Δ log n)`` noisy-beep rounds;
* :class:`BroadcastSession` — the amortised multi-round engine behind it
  (codes, channel, backend and decoder matrices built once);
* :class:`BatchedSession` — ``R`` seed-replicas of one ``(topology,
  params)`` pair executed as a single replica-batched backend call per
  phase, bit-identical to the per-seed sessions;
* :class:`BeepSimulator` — Theorem 11 / Corollary 12: run entire Broadcast
  CONGEST or CONGEST algorithms on a (noisy) beeping network;
* :mod:`~repro.core.local_broadcast` — the B-bit Local Broadcast problem
  (Definition 13) and its upper bounds (Lemma 15).
"""

from .parameters import (
    CandidatePolicy,
    SimulationParameters,
    paper_strict_c,
    practical_c,
)
from .encoder import build_phase_schedules
from .decoder import phase1_decode, phase2_decode
from .round_simulator import (
    BatchedSession,
    BroadcastSession,
    RoundOutcome,
    simulate_broadcast_round,
)
from .stats import SimulationStats
from .transpiler import BeepSimulator, TranspiledRunResult
from .congest_wrapper import CongestViaBroadcast, congest_payload_bits
from .local_broadcast import (
    LocalBroadcastViaBroadcastCongest,
    LocalBroadcastViaCongest,
    run_local_broadcast_bc,
    run_local_broadcast_congest,
)

__all__ = [
    "CandidatePolicy",
    "SimulationParameters",
    "paper_strict_c",
    "practical_c",
    "build_phase_schedules",
    "phase1_decode",
    "phase2_decode",
    "BatchedSession",
    "BroadcastSession",
    "RoundOutcome",
    "simulate_broadcast_round",
    "SimulationStats",
    "BeepSimulator",
    "TranspiledRunResult",
    "CongestViaBroadcast",
    "congest_payload_bits",
    "LocalBroadcastViaBroadcastCongest",
    "LocalBroadcastViaCongest",
    "run_local_broadcast_bc",
    "run_local_broadcast_congest",
]
