"""Parameter engine for the simulation algorithm (Section 3).

The paper instantiates two codes per Broadcast CONGEST round:

* a ``(γ log n, 1/3)``-distance code ``D`` of length ``c_ε² γ log n``;
* a ``(c_ε γ log n, Δ+1, 1/c_ε)``-beep code ``C`` of length
  ``c_ε³ γ (Δ+1) log n``.

Writing ``B = γ log n`` for the per-round message size, every quantity is
determined by ``(B, Δ, ε, c_ε)``:

====================  =======================
random string bits    ``a = c_ε B``
beep-code length      ``b = c_ε² (Δ+1) a = c_ε³ (Δ+1) B``
beep codeword weight  ``c_ε a = c_ε² B``
distance-code length  ``c_ε² B``  (equals the weight)
rounds per phase      ``b``; two phases per simulated round
====================  =======================

:func:`paper_strict_c` reproduces the paper's exact constant constraints
(they are astronomically large — see DESIGN.md §2.1); :func:`practical_c`
gives presets at which the implementation actually achieves high success
rates, as measured by experiments E4–E6.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import cached_property

from ..codes import BeepCode, CombinedCode, DistanceCode
from ..errors import ConfigurationError

__all__ = [
    "CandidatePolicy",
    "paper_strict_c",
    "practical_c",
    "SimulationParameters",
]

#: Relative minimum distance of the message code, fixed to 1/3 in Section 3.
DISTANCE_DELTA = 1.0 / 3.0


class CandidatePolicy(enum.Enum):
    """How decoders enumerate candidate codewords (DESIGN.md §2.2).

    The per-candidate accept/reject tests are the paper's regardless of
    policy; the policy only controls which candidates are scanned.
    """

    #: Scan all ``2^a`` inputs, exactly as the paper's decoder — exponential,
    #: only usable with tiny codes (unit tests prove the other policies
    #: agree with this one).
    EXHAUSTIVE = "exhaustive"

    #: Scan every codeword in flight anywhere in the network, plus uniform
    #: random decoys; accepting a decoy or a non-neighbour is a recorded
    #: decoding error.  Default for experiments.
    ORACLE_WITH_DECOYS = "oracle-with-decoys"

    #: Scan only codewords in flight (no decoys) — fastest; still detects
    #: confusion between real transmitters.
    IN_FLIGHT = "in-flight"


def paper_strict_c(eps: float) -> int:
    """The smallest ``c_ε`` satisfying every constraint in Lemmas 9–10.

    The constraints (collected verbatim from the paper)::

        c >= 60 / (1 - 2ε)                                (Lemma 9)
        c >= 54 / ((1 - 2ε)² ε) + 5                       (Lemma 9)
        c >= (6/ε) (1/(4ε) - 1/2)^-2                      (Lemma 9)
        c >= 30 / (ε (1 - 2ε))                            (Lemma 10)
        c >= 6 ((1-ε)(1-2ε) / (ε(7-2ε)))^-2               (Lemma 10)
        c² >= 108                                         (distance code, Lemma 6)

    For ``ε = 0.1`` this returns 1055 — the reason practical presets exist.
    """
    if not 0.0 < eps < 0.5:
        raise ConfigurationError(f"paper constants need eps in (0, 1/2), got {eps}")
    one_minus = 1.0 - 2.0 * eps
    lemma9_a = 60.0 / one_minus
    lemma9_b = 54.0 / (one_minus**2 * eps) + 5.0
    lemma9_c = (6.0 / eps) * (1.0 / (4.0 * eps) - 0.5) ** -2
    lemma10_a = 30.0 / (eps * one_minus)
    lemma10_b = 6.0 * ((1.0 - eps) * one_minus / (eps * (7.0 - 2.0 * eps))) ** -2
    distance = math.sqrt(108.0)
    return math.ceil(
        max(lemma9_a, lemma9_b, lemma9_c, lemma10_a, lemma10_b, distance)
    )


def practical_c(eps: float) -> int:
    """A laptop-scale ``c_ε`` at which decoding succeeds w.h.p. empirically.

    Calibrated by experiments E4–E6: the threshold structure of Lemmas 9–10
    works at small constants because the Chernoff slack in the proofs is
    loose, not because the algorithm changes.  Noise-free needs the least
    redundancy; higher ``ε`` needs more separation between the two decoding
    thresholds.
    """
    if not 0.0 <= eps < 0.5:
        raise ConfigurationError(f"eps must be in [0, 1/2), got {eps}")
    if eps == 0.0:
        return 3
    if eps <= 0.05:
        return 4
    if eps <= 0.15:
        return 5
    if eps <= 0.25:
        return 6
    return 8


@dataclass(frozen=True)
class SimulationParameters:
    """All parameters of one Algorithm 1 instantiation.

    Attributes
    ----------
    message_bits:
        Per-round Broadcast CONGEST message size ``B = γ log n``.
    max_degree:
        The network's maximum degree ``Δ``; the beep code is built for
        superimpositions of size ``k = Δ + 1``.
    eps:
        Channel noise rate (0 selects the noiseless model).
    c:
        The redundancy constant ``c_ε``.
    """

    message_bits: int
    max_degree: int
    eps: float
    c: int

    def __post_init__(self) -> None:
        if self.message_bits < 1:
            raise ConfigurationError("message_bits must be >= 1")
        if self.max_degree < 0:
            raise ConfigurationError("max_degree must be >= 0")
        if not 0.0 <= self.eps < 0.5:
            raise ConfigurationError(f"eps must be in [0, 1/2), got {self.eps}")
        if self.c < 3:
            raise ConfigurationError("c must be >= 3 (beep codes need c >= 3)")

    @classmethod
    def for_network(
        cls,
        num_nodes: int,
        max_degree: int,
        eps: float,
        gamma: int = 1,
        c: int | None = None,
        strict: bool = False,
    ) -> "SimulationParameters":
        """Build parameters for an ``n``-node network.

        ``message_bits = γ ceil(log₂ n)``; ``c`` defaults to
        :func:`practical_c` (or :func:`paper_strict_c` with ``strict=True``
        — beware the resulting code lengths).
        """
        if num_nodes < 2:
            raise ConfigurationError("need at least 2 nodes")
        message_bits = gamma * max(1, math.ceil(math.log2(num_nodes)))
        if c is None:
            c = paper_strict_c(eps) if strict else practical_c(eps)
        return cls(
            message_bits=message_bits, max_degree=max_degree, eps=eps, c=c
        )

    @property
    def k(self) -> int:
        """Superimposition size ``Δ + 1`` the beep code tolerates."""
        return self.max_degree + 1

    @property
    def r_bits(self) -> int:
        """Bits in each node's random string ``r_v``: ``a = c B``."""
        return self.c * self.message_bits

    @property
    def beep_code_length(self) -> int:
        """Beep-code length ``b = c² k a = c³ (Δ+1) B`` — rounds per phase."""
        return self.c * self.c * self.k * self.r_bits

    @property
    def beep_codeword_weight(self) -> int:
        """Beep codeword weight ``c a = c² B``."""
        return self.c * self.r_bits

    @property
    def distance_code_length(self) -> int:
        """Distance-code length — equals the beep codeword weight."""
        return self.beep_codeword_weight

    @property
    def rounds_per_simulated_round(self) -> int:
        """Beeping rounds to simulate one Broadcast CONGEST round: two
        phases of ``b`` rounds each (Algorithm 1)."""
        return 2 * self.beep_code_length

    @property
    def distance_delta(self) -> float:
        """Relative distance of the message code (1/3, per Section 3)."""
        return DISTANCE_DELTA

    def beep_code(self, seed: int) -> BeepCode:
        """The shared ``(cB, Δ+1, 1/c)``-beep code ``C``."""
        return BeepCode(
            input_bits=self.r_bits, k=self.k, c=self.c, seed=seed
        )

    def distance_code(self, seed: int) -> DistanceCode:
        """The shared ``(B, 1/3)``-distance code ``D``."""
        return DistanceCode(
            input_bits=self.message_bits,
            delta=DISTANCE_DELTA,
            length=self.distance_code_length,
            seed=seed,
        )

    def combined_code(self, seed: int) -> CombinedCode:
        """The combined code ``CD`` of Notation 7."""
        return CombinedCode(
            beep_code=self.beep_code(seed),
            distance_code=self.distance_code(seed),
        )

    @cached_property
    def overhead(self) -> int:
        """Simulation overhead in beeping rounds per Broadcast CONGEST round
        — the quantity Theorem 11 bounds by ``O(Δ log n)``."""
        return self.rounds_per_simulated_round
