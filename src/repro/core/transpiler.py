"""Theorem 11 / Corollary 12: running message-passing algorithms on beeps.

:class:`BeepSimulator` drives per-node Broadcast CONGEST algorithms exactly
like :class:`~repro.congest.BroadcastCongestNetwork`, except every
communication round is realised by Algorithm 1 on the (noisy) beeping
substrate.  Nodes consume whatever they *decoded* — when a simulated round
fails (a low-probability event), downstream state diverges exactly as it
would on a real network, which is what the end-to-end experiments measure.

CONGEST algorithms run through :class:`~repro.core.congest_wrapper.
CongestViaBroadcast` at the additional ``Δ``-factor of Corollary 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..beeping.noise import NoiseModel
from ..congest.algorithm import BroadcastCongestAlgorithm, CongestAlgorithm
from ..congest.context import NodeContext
from ..congest.model import check_message
from ..congest.runtime import resolve_runtime
from ..congest.vectorized import (
    ObjectAlgorithmsAdapter,
    VectorContext,
    VectorizedBroadcastAlgorithm,
    check_plane,
    plane_width,
    plane_words,
)
from ..engine import SimulationBackend
from ..errors import ConfigurationError
from ..graphs import Topology
from ..rng import derive_rng
from .congest_wrapper import wrap_congest_algorithms
from .parameters import CandidatePolicy, SimulationParameters
from .round_simulator import BroadcastSession
from .stats import SimulationStats

__all__ = ["TranspiledRunResult", "BeepSimulator"]


@dataclass(frozen=True)
class TranspiledRunResult:
    """Outcome of a full simulated execution.

    Attributes
    ----------
    outputs:
        Per-node algorithm outputs.
    finished:
        Whether every node terminated within the round budget.
    stats:
        Round/failure accounting, including the measured overhead (beeping
        rounds per simulated round — the Theorem 11 quantity).
    """

    outputs: list[object]
    finished: bool
    stats: SimulationStats


class BeepSimulator:
    """Runs Broadcast CONGEST / CONGEST algorithms over a beeping network.

    Parameters
    ----------
    topology:
        The network.
    params:
        Code parameters; defaults to
        :meth:`SimulationParameters.for_network` with practical constants
        for the given noise rate.
    eps:
        Channel noise rate (used only when ``params`` is omitted).
    seed:
        Master seed for codes, noise, and per-node local randomness.
    ids:
        Node identifiers (default ``0..n-1``).
    policy, num_decoys:
        Candidate enumeration policy for the decoders.
    gamma:
        Message-size multiplier ``γ`` when deriving default parameters.
    backend:
        Execution backend for the beeping phases (see :mod:`repro.engine`).
    channel:
        Override the noise channel (defaults to the one implied by the
        parameters' noise rate) — the failure-injection seam.
    shards:
        Shard-worker count for the sharded execution tier; ``1``
        (default) keeps the single-process path, ``P > 1`` wraps the
        backend in a :class:`~repro.engine.ShardedBackend` (bit-identical
        results, multi-process execution).
    """

    def __init__(
        self,
        topology: Topology,
        params: SimulationParameters | None = None,
        eps: float = 0.0,
        seed: int = 0,
        ids: Sequence[int] | None = None,
        policy: CandidatePolicy = CandidatePolicy.ORACLE_WITH_DECOYS,
        num_decoys: int = 16,
        gamma: int = 4,
        backend: str | SimulationBackend | None = None,
        channel: "NoiseModel | None" = None,
        shards: int = 1,
    ) -> None:
        n = topology.num_nodes
        if n < 2:
            raise ConfigurationError("simulation needs at least 2 nodes")
        if params is None:
            params = SimulationParameters.for_network(
                num_nodes=n,
                max_degree=topology.max_degree,
                eps=eps,
                gamma=gamma,
            )
        if ids is None:
            ids = list(range(n))
        if len(ids) != n or len(set(ids)) != n:
            raise ConfigurationError("ids must be unique, one per node")
        self._topology = topology
        self._params = params
        self._seed = seed
        self._ids = list(ids)
        # All per-execution state — codes, channel, backend, decoder
        # matrices — is built once here and amortised across every
        # simulated round of every run.
        if shards > 1:
            from ..engine import with_shards

            backend = with_shards(backend, shards)
        self._session = BroadcastSession(
            topology,
            params,
            seed,
            policy=policy,
            num_decoys=num_decoys,
            backend=backend,
            channel=channel,
        )

    @property
    def params(self) -> SimulationParameters:
        """The code parameters in force."""
        return self._params

    @property
    def topology(self) -> Topology:
        """The network topology."""
        return self._topology

    @property
    def session(self) -> BroadcastSession:
        """The amortised round engine driving the simulation."""
        return self._session

    def run_broadcast_congest(
        self,
        algorithms: "Sequence[BroadcastCongestAlgorithm] | VectorizedBroadcastAlgorithm",
        max_rounds: int,
        runtime: str | None = None,
    ) -> TranspiledRunResult:
        """Simulate a Broadcast CONGEST execution end-to-end (Theorem 11).

        ``algorithms`` is either the classic per-node object sequence or
        one whole-network :class:`~repro.congest.vectorized.
        VectorizedBroadcastAlgorithm`.  Object sequences run under the
        runtime selected by ``runtime`` (default: the process default) —
        the vectorized host loop wraps them in an
        :class:`~repro.congest.vectorized.ObjectAlgorithmsAdapter`, and
        both host paths feed the beeping session identical broadcasts,
        so results are bit-identical either way.
        """
        if isinstance(algorithms, VectorizedBroadcastAlgorithm):
            return self._run_vectorized(algorithms, max_rounds)
        if resolve_runtime(runtime) == "vectorized":
            return self._run_vectorized(
                ObjectAlgorithmsAdapter(algorithms), max_rounds
            )
        n = self._topology.num_nodes
        if len(algorithms) != n:
            raise ConfigurationError(f"got {len(algorithms)} algorithms for {n} nodes")
        for index, algorithm in enumerate(algorithms):
            algorithm.setup(self._context(index))
        stats = SimulationStats()
        round_offset = 0
        for round_index in range(max_rounds):
            if all(a.finished for a in algorithms):
                break
            broadcasts: list[int | None] = []
            for algorithm in algorithms:
                message = None if algorithm.finished else algorithm.broadcast(round_index)
                if message is not None:
                    check_message(message, self._params.message_bits)
                broadcasts.append(message)
            outcome = self._session.run_round(
                broadcasts, round_offset=round_offset
            )
            round_offset += outcome.beep_rounds_used
            stats.record_round(
                beep_rounds=outcome.beep_rounds_used,
                success=outcome.success,
                phase1_errors=outcome.phase1_errors,
                phase2_errors=outcome.phase2_errors,
                r_collision=outcome.r_collision,
            )
            for index, algorithm in enumerate(algorithms):
                if not algorithm.finished:
                    algorithm.receive(round_index, list(outcome.decoded[index]))
        return TranspiledRunResult(
            outputs=[a.output() for a in algorithms],
            finished=all(a.finished for a in algorithms),
            stats=stats,
        )

    def run_congest(
        self,
        algorithms: Sequence[CongestAlgorithm],
        max_rounds: int,
        payload_bits: int | None = None,
        runtime: str | None = None,
    ) -> TranspiledRunResult:
        """Simulate a CONGEST execution via Corollary 12.

        Each CONGEST round costs ``Δ`` simulated Broadcast CONGEST rounds
        (plus one initial ID-discovery round); ``max_rounds`` counts
        *CONGEST* rounds.  ``runtime`` selects the host loop exactly as
        in :meth:`run_broadcast_congest`.
        """
        wrapped = wrap_congest_algorithms(
            algorithms,
            ids=self._ids,
            message_bits=self._params.message_bits,
            payload_bits=payload_bits,
        )
        bc_budget = 1 + max_rounds * max(1, self._topology.max_degree)
        return self.run_broadcast_congest(wrapped, bc_budget, runtime=runtime)

    def _run_vectorized(
        self, algorithm: VectorizedBroadcastAlgorithm, max_rounds: int
    ) -> TranspiledRunResult:
        """The vectorized host loop over the amortised beeping session.

        The simulated substrate is identical — the same
        :meth:`~repro.core.round_simulator.BroadcastSession.run_round`
        stream of broadcasts — only the host side (collection, budget
        enforcement, inbox construction, termination) runs columnar.
        """
        n = self._topology.num_nodes
        message_bits = self._params.message_bits
        width = plane_width(message_bits)
        net = VectorContext(
            topology=self._topology,
            ids=np.asarray(self._ids, dtype=np.int64),
            num_nodes=n,
            max_degree=self._topology.max_degree,
            degrees=self._topology.degrees,
            message_bits=message_bits,
            seed=self._seed,
        )
        algorithm.setup(net)
        stats = SimulationStats()
        round_offset = 0
        live = int(n - np.count_nonzero(algorithm.finished_mask()))
        for round_index in range(max_rounds):
            if live == 0:
                break
            messages, active = algorithm.broadcast_step(round_index)
            active = np.asarray(active, dtype=bool)
            words = plane_words(np.asarray(messages), message_bits)
            check_plane(words, active, message_bits)
            broadcasts: list[int | None] = [None] * n
            for node in np.flatnonzero(active):
                broadcasts[node] = sum(
                    int(words[node, word]) << (64 * word) for word in range(width)
                )
            outcome = self._session.run_round(broadcasts, round_offset=round_offset)
            round_offset += outcome.beep_rounds_used
            stats.record_round(
                beep_rounds=outcome.beep_rounds_used,
                success=outcome.success,
                phase1_errors=outcome.phase1_errors,
                phase2_errors=outcome.phase2_errors,
                r_collision=outcome.r_collision,
            )
            lengths = [len(decoded) for decoded in outcome.decoded]
            indptr = np.concatenate(([0], np.cumsum(lengths, dtype=np.int64)))
            inbox = np.zeros((int(indptr[-1]), width), dtype=np.uint64)
            cursor = 0
            for decoded in outcome.decoded:
                for message in decoded:
                    for word in range(width):
                        inbox[cursor, word] = (message >> (64 * word)) & (
                            0xFFFFFFFFFFFFFFFF
                        )
                    cursor += 1
            algorithm.receive_step(round_index, indptr, inbox)
            live = int(n - np.count_nonzero(algorithm.finished_mask()))
        return TranspiledRunResult(
            outputs=algorithm.outputs(),
            finished=live == 0,
            stats=stats,
        )

    def _context(self, index: int) -> NodeContext:
        return NodeContext(
            index=index,
            node_id=self._ids[index],
            num_nodes=self._topology.num_nodes,
            max_degree=self._topology.max_degree,
            degree=int(self._topology.degrees[index]),
            message_bits=self._params.message_bits,
            rng=derive_rng(self._seed, "node-local", index),
            neighbor_ids=None,
        )
