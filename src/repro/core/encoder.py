"""Transmission-side of Algorithm 1: building the two phase schedules.

Phase 1: node ``v`` beeps the bits of ``C(r_v)`` (one bit per round).
Phase 2: node ``v`` beeps the bits of ``CD(r_v, m_v)``.

Nodes with no message this round (``None``) abstain from both phases — they
only listen, so their codeword simply does not appear in neighbours'
superimpositions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..codes import CombinedCode
from ..errors import ConfigurationError

__all__ = ["build_phase_schedules"]


def build_phase_schedules(
    combined_code: CombinedCode,
    r_values: Sequence[int],
    messages: Sequence[int | None],
) -> tuple[np.ndarray, np.ndarray]:
    """Build the ``(n, b)`` beep schedules for both phases of Algorithm 1.

    Parameters
    ----------
    combined_code:
        The shared codes ``C`` and ``D``.
    r_values:
        Each node's random string ``r_v`` (as integers).
    messages:
        Each node's message ``m_v`` for this simulated round, or ``None``
        for nodes that stay silent.

    Returns
    -------
    (phase1, phase2):
        Boolean schedule matrices; row ``v`` is node ``v``'s beep pattern.
    """
    if len(r_values) != len(messages):
        raise ConfigurationError(
            f"{len(r_values)} r-values but {len(messages)} messages"
        )
    n = len(r_values)
    b = combined_code.length
    phase1 = np.zeros((n, b), dtype=bool)
    phase2 = np.zeros((n, b), dtype=bool)
    for node in range(n):
        message = messages[node]
        if message is None:
            continue
        phase1[node] = combined_code.beep_code.encode_int(r_values[node])
        phase2[node] = combined_code.encode(r_values[node], message)
    return phase1, phase2
