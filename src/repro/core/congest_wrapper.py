"""Corollary 12: CONGEST on top of Broadcast CONGEST.

A ``T``-round CONGEST algorithm is simulated in ``1 + TΔ`` Broadcast
CONGEST rounds: nodes first broadcast their IDs to all neighbours, and each
CONGEST round becomes ``Δ`` broadcast slots in which node ``v`` broadcasts
``⟨ID_dest, ID_v, payload⟩`` for each of its outgoing messages in turn.
Receivers keep the messages addressed to them.

The paper's message is ``⟨ID_u, m_{v→u}⟩``; we additionally pack the sender
ID so the general :class:`~repro.congest.CongestAlgorithm` interface (which
attributes messages by sender) is preserved — still ``O(log n)`` bits.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..congest.algorithm import BroadcastCongestAlgorithm, CongestAlgorithm
from ..congest.context import NodeContext
from ..congest.model import MessageCodec, check_message, required_bits
from ..errors import ConfigurationError, ProtocolViolationError

__all__ = [
    "CongestViaBroadcast",
    "congest_payload_bits",
    "wrap_congest_algorithms",
]

_TAG_ANNOUNCE = 0
_TAG_PAYLOAD = 1


def congest_payload_bits(message_bits: int, id_bits: int) -> int:
    """Payload bits available per slot after the tag and two IDs are packed."""
    payload = message_bits - 1 - 2 * id_bits
    if payload < 1:
        raise ConfigurationError(
            f"message budget {message_bits} too small for two {id_bits}-bit "
            "IDs plus a payload; increase gamma or shrink the ID space"
        )
    return payload


def wrap_congest_algorithms(
    algorithms: "Sequence[CongestAlgorithm]",
    ids: Sequence[int],
    message_bits: int,
    payload_bits: "int | None" = None,
) -> "list[CongestViaBroadcast]":
    """Wrap a network's CONGEST algorithms for Broadcast CONGEST execution.

    The resulting per-node wrappers run under either CONGEST runtime —
    the reference engine directly, or the vectorized driver via
    :class:`~repro.congest.vectorized.ObjectAlgorithmsAdapter` — which
    is how :meth:`~repro.core.transpiler.BeepSimulator.run_congest`
    accepts the Corollary 12 path on both hosts.
    """
    return [
        CongestViaBroadcast(
            algorithm,
            ids=ids,
            payload_bits=payload_bits,
            message_bits=message_bits,
        )
        for algorithm in algorithms
    ]


class CongestViaBroadcast(BroadcastCongestAlgorithm):
    """Wraps one node's CONGEST algorithm as a Broadcast CONGEST algorithm.

    Parameters
    ----------
    inner:
        The node's CONGEST algorithm.
    ids:
        The global ID list (used only to size the ID fields; knowing the ID
        space is a standard CONGEST assumption).
    payload_bits:
        Per-slot payload width; defaults to everything left of the budget.
    message_bits:
        The Broadcast CONGEST per-round budget.
    """

    def __init__(
        self,
        inner: CongestAlgorithm,
        ids: Sequence[int],
        message_bits: int,
        payload_bits: int | None = None,
    ) -> None:
        self._inner = inner
        id_bits = required_bits(max(ids) + 1)
        available = congest_payload_bits(message_bits, id_bits)
        if payload_bits is None:
            payload_bits = available
        if payload_bits > available:
            raise ConfigurationError(
                f"payload_bits {payload_bits} exceeds available {available}"
            )
        self._codec = MessageCodec(
            [
                ("tag", 1),
                ("dest", id_bits),
                ("sender", id_bits),
                ("payload", payload_bits),
            ]
        )
        self._payload_bits = payload_bits
        self._neighbor_ids: list[int] | None = None
        self._outgoing: list[tuple[int, int]] = []
        self._inbox: dict[int, int] = {}
        self._congest_round = -1
        self._slot = 0
        self._max_degree = 0

    @property
    def inner(self) -> CongestAlgorithm:
        """The wrapped CONGEST algorithm."""
        return self._inner

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        self._max_degree = max(1, ctx.max_degree)
        # The inner algorithm's setup is deferred until neighbour IDs are
        # learned from the announcement round.
        self._inner_ctx = replace(ctx, message_bits=self._payload_bits)

    def broadcast(self, round_index: int) -> int | None:
        if round_index == 0:
            return self._codec.pack(
                tag=_TAG_ANNOUNCE, dest=0, sender=self.ctx.node_id, payload=0
            )
        if self._neighbor_ids is None:
            raise ProtocolViolationError(
                "broadcast called before the ID announcement completed"
            )
        if self._slot == 0:
            self._begin_congest_round()
        if self._slot < len(self._outgoing):
            destination, payload = self._outgoing[self._slot]
            return self._codec.pack(
                tag=_TAG_PAYLOAD,
                dest=destination,
                sender=self.ctx.node_id,
                payload=payload,
            )
        return None

    def receive(self, round_index: int, messages: list[int]) -> None:
        if round_index == 0:
            announced = {
                fields["sender"]
                for fields in map(self._codec.unpack, messages)
                if fields["tag"] == _TAG_ANNOUNCE
            }
            self._neighbor_ids = sorted(announced)
            self._inner_ctx = replace(
                self._inner_ctx, neighbor_ids=list(self._neighbor_ids)
            )
            self._inner.setup(self._inner_ctx)
            return
        for fields in map(self._codec.unpack, messages):
            if fields["tag"] != _TAG_PAYLOAD:
                continue
            if fields["dest"] == self.ctx.node_id:
                self._inbox[fields["sender"]] = fields["payload"]
        self._slot += 1
        if self._slot >= self._max_degree:
            if not self._inner.finished:
                self._inner.receive(self._congest_round, dict(self._inbox))
            self._inbox.clear()
            self._slot = 0

    @property
    def finished(self) -> bool:
        return (
            self._neighbor_ids is not None
            and self._slot == 0
            and self._inner.finished
        )

    def output(self) -> object:
        return self._inner.output()

    def _begin_congest_round(self) -> None:
        self._congest_round += 1
        self._outgoing = []
        if self._inner.finished:
            return
        outgoing = self._inner.send(self._congest_round)
        assert self._neighbor_ids is not None
        neighbor_set = set(self._neighbor_ids)
        for destination, payload in sorted(outgoing.items()):
            if destination not in neighbor_set:
                raise ProtocolViolationError(
                    f"node {self.ctx.node_id} addressed non-neighbour {destination}"
                )
            check_message(payload, self._payload_bits)
            self._outgoing.append((destination, payload))
        if len(self._outgoing) > self._max_degree:
            raise ProtocolViolationError(
                f"node {self.ctx.node_id} sent {len(self._outgoing)} messages "
                f"in one CONGEST round; at most degree <= {self._max_degree} fit"
            )
