"""Algorithm 1: simulating one Broadcast CONGEST round with noisy beeps.

The full round protocol of Section 3:

1. every node ``v`` with a message picks ``r_v`` uniformly at random;
2. phase 1 (``b`` beeping rounds): ``v`` beeps the bits of ``C(r_v)``;
3. phase 2 (``b`` beeping rounds): ``v`` beeps the bits of ``CD(r_v, m_v)``;
4. every node decodes its neighbours' codeword set from the phase-1
   superimposition (Lemmas 8–9) and then each neighbour's message from the
   phase-2 subsequences (Lemma 10).

The returned :class:`RoundOutcome` carries both the decoded messages (which
downstream algorithms consume, right or wrong — simulation fidelity is part
of what the experiments measure) and ground-truth diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..beeping.batch import run_schedule
from ..beeping.noise import NoiseModel, NoiselessChannel, BernoulliNoise
from ..codes import CombinedCode
from ..errors import ConfigurationError
from ..graphs import Topology
from ..rng import derive_rng, derive_seed, random_bits
from .decoder import phase1_decode, phase2_decode
from .encoder import build_phase_schedules
from .parameters import CandidatePolicy, SimulationParameters

__all__ = ["RoundOutcome", "simulate_broadcast_round", "make_channel_for"]

#: Exhaustive candidate scans are exponential; refuse beyond this size.
_EXHAUSTIVE_LIMIT_BITS = 22


@dataclass(frozen=True)
class RoundOutcome:
    """Result of simulating one Broadcast CONGEST round.

    Attributes
    ----------
    decoded:
        Per node, the decoded neighbour messages as a sorted list (a
        multiset: two neighbours sending equal messages appear twice).
    per_node_success:
        Per node, whether the decoded multiset equals the true one.
    success:
        Whether every node decoded perfectly.
    beep_rounds_used:
        Beeping rounds consumed (``2b``).
    phase1_errors:
        Nodes whose accepted codeword set differed from the truth.
    phase2_errors:
        Nodes with correct phase 1 but a wrong decoded message multiset.
    r_collision:
        Whether two transmitting nodes drew identical random strings.
    accepted_sets:
        Per node, the accepted phase-1 candidate values (own value
        removed) — diagnostic view of ``R̃_v``.
    """

    decoded: list[list[int]]
    per_node_success: np.ndarray
    success: bool
    beep_rounds_used: int
    phase1_errors: int
    phase2_errors: int
    r_collision: bool
    accepted_sets: list[set[int]]


def make_channel_for(params: SimulationParameters, seed: int) -> NoiseModel:
    """The channel implied by the parameters' noise rate."""
    if params.eps == 0.0:
        return NoiselessChannel()
    return BernoulliNoise(params.eps, seed=derive_seed(seed, "channel"))


def simulate_broadcast_round(
    topology: Topology,
    messages: Sequence[int | None],
    params: SimulationParameters,
    seed: int,
    round_offset: int = 0,
    policy: CandidatePolicy = CandidatePolicy.ORACLE_WITH_DECOYS,
    num_decoys: int = 16,
    channel: NoiseModel | None = None,
    codes: CombinedCode | None = None,
) -> RoundOutcome:
    """Run Algorithm 1 once and decode every node's neighbour messages.

    Parameters
    ----------
    topology:
        The network (its max degree must not exceed ``params.max_degree``).
    messages:
        Per node, the ``B``-bit message to broadcast, or ``None`` to stay
        silent this round.
    params:
        Code parameters.
    seed:
        Master seed; the per-round randomness is derived from
        ``(seed, round_offset)`` so consecutive rounds are independent.
    round_offset:
        Global beeping-round number at which this simulated round starts
        (keys both noise and the per-round random strings).
    policy, num_decoys:
        Candidate enumeration policy (see DESIGN.md §2.2).
    channel:
        Override the noise channel (defaults to the one implied by
        ``params.eps``).
    codes:
        Reuse a previously built code pair (saves cache warm-up when
        simulating many rounds).
    """
    n = topology.num_nodes
    if len(messages) != n:
        raise ConfigurationError(f"got {len(messages)} messages for {n} nodes")
    if topology.max_degree > params.max_degree:
        raise ConfigurationError(
            f"topology degree {topology.max_degree} exceeds parameter "
            f"max_degree {params.max_degree}"
        )
    for message in messages:
        if message is not None and (
            message < 0 or message >> params.message_bits
        ):
            raise ConfigurationError(
                f"message {message} does not fit in {params.message_bits} bits"
            )
    if codes is None:
        codes = params.combined_code(derive_seed(seed, "codes"))
    if channel is None:
        channel = make_channel_for(params, seed)

    # Step 1: every participating node draws r_v uniformly at random.
    round_rng = derive_rng(seed, "round-randomness", round_offset)
    r_space = 1 << params.r_bits
    r_values = [int(value) for value in _draw_r_values(round_rng, n, r_space)]
    participating = [messages[v] is not None for v in range(n)]

    # Steps 2-3: the two oblivious beeping phases.
    phase1_schedule, phase2_schedule = build_phase_schedules(
        codes, r_values, messages
    )
    b = codes.length
    heard1 = run_schedule(topology, phase1_schedule, channel, start_round=round_offset)
    heard2 = run_schedule(
        topology, phase2_schedule, channel, start_round=round_offset + b
    )

    # Candidate enumeration per the chosen policy.
    in_flight = sorted({r_values[v] for v in range(n) if participating[v]})
    candidates = _candidate_set(
        policy, in_flight, r_space, params.r_bits, num_decoys, round_rng
    )

    # Step 4a: phase-1 decoding (Lemma 9 threshold test).
    accepted_raw = phase1_decode(codes.beep_code, heard1, candidates, params.eps)
    accepted: list[set[int]] = []
    for v in range(n):
        own = {r_values[v]} if participating[v] else set()
        accepted.append(accepted_raw[v] - own)

    # Ground truth for diagnostics.
    true_sets = [
        {r_values[int(u)] for u in topology.neighbors[v] if participating[int(u)]}
        for v in range(n)
    ]
    phase1_errors = sum(accepted[v] != true_sets[v] for v in range(n))
    transmitted = [r_values[v] for v in range(n) if participating[v]]
    r_collision = len(set(transmitted)) != len(transmitted)

    # Step 4b: phase-2 decoding (nearest distance codeword).
    message_candidates = sorted(
        {messages[v] for v in range(n) if participating[v]}  # type: ignore[arg-type]
    )
    if policy is CandidatePolicy.ORACLE_WITH_DECOYS and message_candidates:
        message_candidates = _with_message_decoys(
            message_candidates, params.message_bits, num_decoys, round_rng
        )
    if policy is CandidatePolicy.EXHAUSTIVE:
        if params.message_bits > _EXHAUSTIVE_LIMIT_BITS:
            raise ConfigurationError(
                "exhaustive policy limited to small message spaces"
            )
        message_candidates = list(range(1 << params.message_bits))
    decoded_maps = (
        phase2_decode(codes, heard2, accepted, message_candidates)
        if message_candidates
        else [dict() for _ in range(n)]
    )

    decoded = [
        sorted(entry.message for entry in decoded_maps[v].values())
        for v in range(n)
    ]
    truth = [
        sorted(
            messages[int(u)]  # type: ignore[arg-type]
            for u in topology.neighbors[v]
            if participating[int(u)]
        )
        for v in range(n)
    ]
    per_node_success = np.asarray(
        [decoded[v] == truth[v] for v in range(n)], dtype=bool
    )
    phase2_errors = sum(
        1
        for v in range(n)
        if accepted[v] == true_sets[v] and not per_node_success[v]
    )
    return RoundOutcome(
        decoded=decoded,
        per_node_success=per_node_success,
        success=bool(per_node_success.all()),
        beep_rounds_used=2 * b,
        phase1_errors=phase1_errors,
        phase2_errors=phase2_errors,
        r_collision=r_collision,
        accepted_sets=accepted,
    )


def _draw_r_values(
    rng: np.random.Generator, count: int, r_space: int
) -> list[int]:
    """Draw each node's random string as an integer in ``[0, 2^a)``.

    ``a`` routinely exceeds 63 bits, so values come from
    :func:`repro.rng.random_bits` rather than ``Generator.integers``.
    """
    bits = (r_space - 1).bit_length() if r_space > 1 else 1
    return [random_bits(rng, bits) for _ in range(count)]


def _candidate_set(
    policy: CandidatePolicy,
    in_flight: list[int],
    r_space: int,
    r_bits: int,
    num_decoys: int,
    rng: np.random.Generator,
) -> list[int]:
    if policy is CandidatePolicy.EXHAUSTIVE:
        if r_bits > _EXHAUSTIVE_LIMIT_BITS:
            raise ConfigurationError(
                f"exhaustive policy limited to r_bits <= {_EXHAUSTIVE_LIMIT_BITS}, "
                f"got {r_bits}"
            )
        return list(range(r_space))
    if policy is CandidatePolicy.IN_FLIGHT:
        return list(in_flight)
    in_flight_set = set(in_flight)
    decoys: set[int] = set()
    while len(decoys) < num_decoys:
        draw = int.from_bytes(rng.bytes(max(1, (r_bits + 7) // 8)), "little")
        draw &= r_space - 1
        if draw not in in_flight_set:
            decoys.add(draw)
    return sorted(in_flight_set | decoys)


def _with_message_decoys(
    message_candidates: list[int],
    message_bits: int,
    num_decoys: int,
    rng: np.random.Generator,
) -> list[int]:
    space = 1 << message_bits
    existing = set(message_candidates)
    budget = min(num_decoys, space - len(existing))
    attempts = 0
    while budget > 0 and attempts < 20 * num_decoys:
        draw = int.from_bytes(rng.bytes(max(1, (message_bits + 7) // 8)), "little")
        draw &= space - 1
        attempts += 1
        if draw not in existing:
            existing.add(draw)
            budget -= 1
    return sorted(existing)
