"""Algorithm 1: simulating Broadcast CONGEST rounds with noisy beeps.

The full round protocol of Section 3:

1. every node ``v`` with a message picks ``r_v`` uniformly at random;
2. phase 1 (``b`` beeping rounds): ``v`` beeps the bits of ``C(r_v)``;
3. phase 2 (``b`` beeping rounds): ``v`` beeps the bits of ``CD(r_v, m_v)``;
4. every node decodes its neighbours' codeword set from the phase-1
   superimposition (Lemmas 8–9) and then each neighbour's message from the
   phase-2 subsequences (Lemma 10).

:class:`BroadcastSession` is the multi-round engine: it builds the code
pair, the channel, the candidate-policy state and the decoder codeword
matrices **once**, then exposes :meth:`~BroadcastSession.run_round` /
:meth:`~BroadcastSession.run_many` whose outcomes are bit-identical to a
sequence of standalone calls with matching round offsets (same seeds →
same :class:`RoundOutcome`\\ s).  :func:`simulate_broadcast_round` remains
as the one-shot compatibility wrapper.

:class:`BatchedSession` is the replica-batched engine on top: it stacks
``R`` seed-replicas of the same ``(topology, params)`` pair — one
:class:`BroadcastSession` per seed — and executes each round's beeping
phases as a single 3-D :meth:`~repro.engine.SimulationBackend.
run_schedule_batch` call while decoding through vectorised kernels that
are *exactly* equal (not just statistically) to the reference decoders.
``BatchedSession(...).run_round(batch)[r]`` is bit-identical to what the
``r``-th standalone :class:`BroadcastSession` would return, a property
enforced by ``tests/core/test_batched_session.py``.

The returned :class:`RoundOutcome` carries both the decoded messages (which
downstream algorithms consume, right or wrong — simulation fidelity is part
of what the experiments measure) and ground-truth diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..beeping.batch import run_schedule, run_schedule_batch
from ..beeping.noise import (
    BernoulliNoise,
    DynamicTopology,
    NoiseModel,
    NoiselessChannel,
)
from ..codes import CombinedCode
from ..engine import SimulationBackend, resolve_backend
from ..errors import ConfigurationError
from ..graphs import Topology
from ..lru import LRUDict
from ..rng import derive_rng, derive_seed, random_bits
from .decoder import DecodedMessage, phase1_decode, phase2_decode
from .encoder import build_phase_schedules
from .parameters import CandidatePolicy, SimulationParameters

__all__ = [
    "RoundOutcome",
    "BroadcastSession",
    "BatchedSession",
    "simulate_broadcast_round",
    "make_channel_for",
]

#: Largest code length at which 0/1 dot products are exactly representable
#: in float32 (every partial sum is an integer below 2^24), letting the
#: vectorised decoders ride the BLAS sgemm path without changing a single
#: count.
_EXACT_FLOAT32_LIMIT = 1 << 24

#: Exhaustive candidate scans are exponential; refuse beyond this size.
_EXHAUSTIVE_LIMIT_BITS = 22

#: Distance-code rows cached across rounds (per session).  Rows are short
#: (``c²B`` bits) and in-flight messages recur across rounds (IDs, counters
#: ...), so this cache converts phase-2 matrix builds into lookups.
_DISTANCE_ROW_CACHE_LIMIT = 8192


@dataclass(frozen=True)
class RoundOutcome:
    """Result of simulating one Broadcast CONGEST round.

    Attributes
    ----------
    decoded:
        Per node, the decoded neighbour messages as a sorted list (a
        multiset: two neighbours sending equal messages appear twice).
    per_node_success:
        Per node, whether the decoded multiset equals the true one.
    success:
        Whether every node decoded perfectly.
    beep_rounds_used:
        Beeping rounds consumed (``2b``).
    phase1_errors:
        Nodes whose accepted codeword set differed from the truth.
    phase2_errors:
        Nodes with correct phase 1 but a wrong decoded message multiset.
    r_collision:
        Whether two transmitting nodes drew identical random strings.
    accepted_sets:
        Per node, the accepted phase-1 candidate values (own value
        removed) — diagnostic view of ``R̃_v``.
    """

    decoded: list[list[int]]
    per_node_success: np.ndarray
    success: bool
    beep_rounds_used: int
    phase1_errors: int
    phase2_errors: int
    r_collision: bool
    accepted_sets: list[set[int]]


def make_channel_for(params: SimulationParameters, seed: int) -> NoiseModel:
    """The channel implied by the parameters' noise rate."""
    if params.eps == 0.0:
        return NoiselessChannel()
    return BernoulliNoise(params.eps, seed=derive_seed(seed, "channel"))


class BroadcastSession:
    """An amortised multi-round engine for Algorithm 1.

    All per-execution state — the code pair ``(C, D)``, the channel, the
    execution backend, and the candidate-policy decoder state — is built in
    the constructor; each :meth:`run_round` call then only pays for the
    round itself.  The session tracks the global beeping-round offset so
    consecutive rounds chain exactly like
    :class:`~repro.core.transpiler.BeepSimulator` chains standalone calls.

    Parameters
    ----------
    topology:
        The network (its max degree must not exceed ``params.max_degree``).
        A :class:`~repro.beeping.noise.DynamicTopology` churn schedule is
        accepted too: the beeping phases run against its per-epoch masks
        and each round's diagnostics are judged against the mask at the
        round's first beeping round.
    params:
        Code parameters.
    seed:
        Master seed; per-round randomness is derived from
        ``(seed, round_offset)`` so rounds are independent and the whole
        session is reproducible.
    policy, num_decoys:
        Candidate enumeration policy (see DESIGN.md §2.2).
    channel:
        Override the noise channel (defaults to the one implied by
        ``params.eps``).
    codes:
        Reuse a previously built code pair.
    backend:
        Execution backend for the beeping phases (name, instance,
        ``"auto"``, or ``None`` for the process default).
    """

    def __init__(
        self,
        topology: Topology,
        params: SimulationParameters,
        seed: int,
        *,
        policy: CandidatePolicy = CandidatePolicy.ORACLE_WITH_DECOYS,
        num_decoys: int = 16,
        channel: NoiseModel | None = None,
        codes: CombinedCode | None = None,
        backend: str | SimulationBackend | None = None,
    ) -> None:
        if topology.max_degree > params.max_degree:
            raise ConfigurationError(
                f"topology degree {topology.max_degree} exceeds parameter "
                f"max_degree {params.max_degree}"
            )
        if policy is CandidatePolicy.EXHAUSTIVE:
            if params.r_bits > _EXHAUSTIVE_LIMIT_BITS:
                raise ConfigurationError(
                    f"exhaustive policy limited to r_bits <= "
                    f"{_EXHAUSTIVE_LIMIT_BITS}, got {params.r_bits}"
                )
            if params.message_bits > _EXHAUSTIVE_LIMIT_BITS:
                raise ConfigurationError(
                    "exhaustive policy limited to small message spaces"
                )
        self._topology = topology
        self._params = params
        self._seed = seed
        self._policy = policy
        self._num_decoys = num_decoys
        self._codes = (
            codes
            if codes is not None
            else params.combined_code(derive_seed(seed, "codes"))
        )
        self._channel = (
            channel if channel is not None else make_channel_for(params, seed)
        )
        self._backend = resolve_backend(
            backend, topology=topology, rounds=self._codes.length
        )
        self._round_offset = 0
        # Candidate-policy decoder state, built lazily once per session:
        # the full phase-1/phase-2 matrices for EXHAUSTIVE, and a bounded
        # distance-row LRU cache for the message-decoy policies.
        self._exhaustive_phase1: np.ndarray | None = None
        self._exhaustive_phase2: np.ndarray | None = None
        self._distance_rows: LRUDict[int, np.ndarray] = LRUDict(
            _DISTANCE_ROW_CACHE_LIMIT
        )
        # Flipped by BatchedSession on its replicas: route schedule
        # building and decoding through the vectorised-exact kernels.
        self._vectorized = False

    @property
    def topology(self) -> Topology:
        """The network topology."""
        return self._topology

    @property
    def params(self) -> SimulationParameters:
        """The code parameters in force."""
        return self._params

    @property
    def codes(self) -> CombinedCode:
        """The shared code pair ``(C, D)``, built once per session."""
        return self._codes

    @property
    def channel(self) -> NoiseModel:
        """The noise channel, built once per session."""
        return self._channel

    @property
    def backend(self) -> SimulationBackend:
        """The execution backend driving the beeping phases."""
        return self._backend

    @property
    def next_round_offset(self) -> int:
        """The global beeping-round offset the next round will start at."""
        return self._round_offset

    def reset(self, round_offset: int = 0) -> None:
        """Rewind the session's global beeping-round offset."""
        if round_offset < 0:
            raise ConfigurationError(
                f"round_offset must be >= 0, got {round_offset}"
            )
        self._round_offset = round_offset

    def run_round(
        self,
        messages: Sequence[int | None],
        round_offset: int | None = None,
    ) -> RoundOutcome:
        """Run Algorithm 1 once and decode every node's neighbour messages.

        ``messages`` holds, per node, the ``B``-bit message to broadcast or
        ``None`` to stay silent this round.  ``round_offset`` overrides the
        session's running offset (it keys both the noise stream and the
        per-round random strings); either way the session's offset advances
        to just past this round, so back-to-back calls chain contiguously.
        """
        plan = self._plan_round(messages, round_offset)
        b = self._codes.length
        heard1 = run_schedule(
            self._topology,
            plan.phase1_schedule,
            self._channel,
            start_round=plan.round_offset,
            backend=self._backend,
        )
        heard2 = run_schedule(
            self._topology,
            plan.phase2_schedule,
            self._channel,
            start_round=plan.round_offset + b,
            backend=self._backend,
        )
        return self._finish_round(plan, heard1, heard2)

    def _round_topology(self, round_offset: int) -> Topology:
        """The static adjacency defining a round's ground truth.

        Static sessions always answer their own topology.  Under a
        :class:`~repro.beeping.noise.DynamicTopology` the round's
        diagnostics (true neighbour sets, per-node success) are judged
        against the mask active at the round's *first* beeping round —
        the epoch a device's transmission started under is the one its
        neighbours could have heard it in.
        """
        if isinstance(self._topology, DynamicTopology):
            return self._topology.topology_at(round_offset)
        return self._topology

    def _plan_round(
        self,
        messages: Sequence[int | None],
        round_offset: int | None,
    ) -> "_RoundPlan":
        """Everything before the beeping phases: validation, ``r_v``, schedules.

        Draws each node's random string (the first consumer of the
        per-round stream) and builds both phase schedules; the returned
        plan carries the still-live round RNG, which
        :meth:`_finish_round` continues from in exactly the reference
        draw order (candidates, then message decoys).
        """
        topology = self._topology
        params = self._params
        n = topology.num_nodes
        if len(messages) != n:
            raise ConfigurationError(f"got {len(messages)} messages for {n} nodes")
        for message in messages:
            if message is not None and (
                message < 0 or message >> params.message_bits
            ):
                raise ConfigurationError(
                    f"message {message} does not fit in {params.message_bits} bits"
                )
        if round_offset is None:
            round_offset = self._round_offset

        # Step 1: every participating node draws r_v uniformly at random.
        round_rng = derive_rng(self._seed, "round-randomness", round_offset)
        r_space = 1 << params.r_bits
        r_values = [int(value) for value in _draw_r_values(round_rng, n, r_space)]
        participating = [messages[v] is not None for v in range(n)]

        # Steps 2-3: the two oblivious beeping phase schedules.
        slot_positions: "np.ndarray | None" = None
        slot_rows: "dict[int, int] | None" = None
        if self._vectorized:
            (
                phase1_schedule,
                phase2_schedule,
                slot_positions,
                slot_rows,
            ) = _build_phase_schedules_fast(
                self._codes, r_values, messages, self._distance_rows
            )
        else:
            phase1_schedule, phase2_schedule = build_phase_schedules(
                self._codes, r_values, messages
            )
        return _RoundPlan(
            messages=list(messages),
            round_offset=round_offset,
            round_rng=round_rng,
            r_values=r_values,
            participating=participating,
            phase1_schedule=phase1_schedule,
            phase2_schedule=phase2_schedule,
            slot_positions=slot_positions,
            slot_rows=slot_rows,
        )

    def _finish_round(
        self,
        plan: "_RoundPlan",
        heard1: np.ndarray,
        heard2: np.ndarray,
    ) -> RoundOutcome:
        """Everything after the beeping phases: candidate scans and decoding.

        Consumes the plan's round RNG in the reference order (candidate
        decoys, then message decoys) and advances the session offset, so
        splitting a round around the backend call cannot perturb any
        stream.
        """
        topology = self._round_topology(plan.round_offset)
        params = self._params
        codes = self._codes
        n = topology.num_nodes
        messages = plan.messages
        r_values = plan.r_values
        participating = plan.participating
        round_rng = plan.round_rng
        r_space = 1 << params.r_bits
        b = codes.length

        # Candidate enumeration per the chosen policy.
        in_flight = sorted({r_values[v] for v in range(n) if participating[v]})
        candidates = _candidate_set(
            self._policy,
            in_flight,
            r_space,
            params.r_bits,
            self._num_decoys,
            round_rng,
        )

        # Step 4a: phase-1 decoding (Lemma 9 threshold test).  The
        # vectorised path recovers in-flight candidate codewords from the
        # schedule rows already encoded in the plan (only decoys need
        # fresh encodes) and reuses that matrix for the phase-2 slot
        # patterns below.
        candidate_matrix = self._phase1_matrix(candidates)
        if self._vectorized:
            if candidate_matrix is None:
                candidate_matrix = _candidate_matrix_from_plan(
                    codes.beep_code, plan, candidates
                )
            accepted_raw = _phase1_decode_fast(
                codes.beep_code,
                heard1,
                candidates,
                params.eps,
                codeword_matrix=candidate_matrix,
            )
        else:
            accepted_raw = phase1_decode(
                codes.beep_code,
                heard1,
                candidates,
                params.eps,
                codeword_matrix=candidate_matrix,
            )
        accepted: list[set[int]] = []
        for v in range(n):
            own = {r_values[v]} if participating[v] else set()
            accepted.append(accepted_raw[v] - own)

        # Ground truth for diagnostics.
        true_sets = [
            {r_values[int(u)] for u in topology.neighbors[v] if participating[int(u)]}
            for v in range(n)
        ]
        phase1_errors = sum(accepted[v] != true_sets[v] for v in range(n))
        transmitted = [r_values[v] for v in range(n) if participating[v]]
        r_collision = len(set(transmitted)) != len(transmitted)

        # Step 4b: phase-2 decoding (nearest distance codeword).
        message_candidates = sorted(
            {messages[v] for v in range(n) if participating[v]}  # type: ignore[arg-type]
        )
        if (
            self._policy is CandidatePolicy.ORACLE_WITH_DECOYS
            and message_candidates
        ):
            message_candidates = _with_message_decoys(
                message_candidates,
                params.message_bits,
                self._num_decoys,
                round_rng,
            )
        if self._policy is CandidatePolicy.EXHAUSTIVE:
            message_candidates = list(range(1 << params.message_bits))
        if not message_candidates:
            decoded_maps = [dict() for _ in range(n)]
        elif self._vectorized:
            # Slot-position recycling pays only when the candidate scan
            # is the in-flight set (plus a few decoys); an EXHAUSTIVE
            # scan would materialise positions for the whole 2^a domain
            # every round, so there the decoder falls back to encoding
            # just the accepted pairs.
            if self._policy is CandidatePolicy.EXHAUSTIVE or not candidates:
                candidate_positions = None
                candidate_index = None
            else:
                candidate_positions = _candidate_positions(
                    codes.beep_code, plan, candidates
                )
                candidate_index = {
                    value: i for i, value in enumerate(candidates)
                }
            decoded_maps = _phase2_decode_fast(
                codes,
                heard2,
                accepted,
                message_candidates,
                codeword_matrix=self._phase2_matrix(message_candidates),
                slot_positions=candidate_positions,
                slot_index=candidate_index,
            )
        else:
            decoded_maps = phase2_decode(
                codes,
                heard2,
                accepted,
                message_candidates,
                codeword_matrix=self._phase2_matrix(message_candidates),
            )

        decoded = [
            sorted(entry.message for entry in decoded_maps[v].values())
            for v in range(n)
        ]
        truth = [
            sorted(
                messages[int(u)]  # type: ignore[arg-type]
                for u in topology.neighbors[v]
                if participating[int(u)]
            )
            for v in range(n)
        ]
        per_node_success = np.asarray(
            [decoded[v] == truth[v] for v in range(n)], dtype=bool
        )
        phase2_errors = sum(
            1
            for v in range(n)
            if accepted[v] == true_sets[v] and not per_node_success[v]
        )
        self._round_offset = plan.round_offset + 2 * b
        return RoundOutcome(
            decoded=decoded,
            per_node_success=per_node_success,
            success=bool(per_node_success.all()),
            beep_rounds_used=2 * b,
            phase1_errors=phase1_errors,
            phase2_errors=phase2_errors,
            r_collision=r_collision,
            accepted_sets=accepted,
        )

    def run_many(
        self,
        message_rounds: Sequence[Sequence[int | None]],
        round_offset: int | None = None,
    ) -> list[RoundOutcome]:
        """Run consecutive Broadcast CONGEST rounds, chaining offsets.

        Equivalent to calling :func:`simulate_broadcast_round` once per
        entry with ``round_offset`` advancing by ``2b`` each time — but the
        codes, channel, backend and decoder matrices are constructed only
        once, in the session constructor.
        """
        if round_offset is not None:
            self.reset(round_offset)
        return [self.run_round(messages) for messages in message_rounds]

    def _phase1_matrix(self, candidates: Sequence[int]) -> np.ndarray | None:
        """The phase-1 decoder's ``int32`` codeword matrix, when amortisable.

        Under :attr:`CandidatePolicy.EXHAUSTIVE` the candidate list is the
        full domain every round, so the matrix is built once and reused.
        The other policies draw fresh random candidates each round; for
        them the decoder builds its matrix per call (``None``) through the
        beep code's own codeword cache.
        """
        if self._policy is not CandidatePolicy.EXHAUSTIVE:
            return None
        if self._exhaustive_phase1 is None:
            # Vectorised sessions consume this on the float32 sgemm path,
            # so caching it in that dtype avoids a whole-matrix conversion
            # every round; the reference decoder keeps its int32 form.
            dtype = np.float32 if self._vectorized else np.int32
            self._exhaustive_phase1 = self._codes.beep_code.encode_many(
                list(candidates)
            ).astype(dtype)
        return self._exhaustive_phase1

    def _phase2_matrix(self, message_candidates: Sequence[int]) -> np.ndarray | None:
        """The phase-2 boolean codeword matrix for ``message_candidates``.

        Built from a bounded per-session row cache (messages recur across
        rounds far more than the phase-1 random strings do); the full
        message space is cached wholesale under EXHAUSTIVE.
        """
        if not message_candidates:
            return None
        distance_code = self._codes.distance_code
        if self._policy is CandidatePolicy.EXHAUSTIVE:
            if self._exhaustive_phase2 is None:
                self._exhaustive_phase2 = np.stack(
                    [distance_code.encode_int(m) for m in message_candidates]
                )
            return self._exhaustive_phase2
        rows = self._distance_rows
        matrix = np.empty(
            (len(message_candidates), distance_code.length), dtype=bool
        )
        for position, message in enumerate(message_candidates):
            # LRU semantics via LRUDict: hits refresh recency (recurring
            # messages are the cache's whole point, one-shot decoy rows
            # get evicted first), misses evict at the bound on insert.
            row = rows.get(message)
            if row is None:
                row = np.asarray(distance_code.encode_int(message), dtype=bool)
                rows[message] = row
            matrix[position] = row
        return matrix


@dataclass
class _RoundPlan:
    """Pre-backend state of one simulated round (see ``_plan_round``).

    Carries the still-live per-round RNG between the plan and finish
    halves so the draw order (``r_v`` values, candidate decoys, message
    decoys) is exactly the reference order regardless of how the beeping
    phases in between are executed.
    """

    messages: "list[int | None]"
    round_offset: int
    round_rng: np.random.Generator
    r_values: list[int]
    participating: list[bool]
    phase1_schedule: np.ndarray
    phase2_schedule: np.ndarray
    #: Vectorised path only: the ascending one-positions of each active
    #: node's beep codeword (row ``slot_rows[r_v]``), computed once by the
    #: schedule builder and reused by the decoders.
    slot_positions: "np.ndarray | None" = None
    slot_rows: "dict[int, int] | None" = None


def _build_phase_schedules_fast(
    codes: CombinedCode,
    r_values: Sequence[int],
    messages: "Sequence[int | None]",
    distance_rows: "LRUDict[int, np.ndarray]",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray | None, dict[int, int]]":
    """Vectorised twin of :func:`~repro.core.encoder.build_phase_schedules`.

    Produces element-identical schedules: phase 1 stacks the same
    ``C(r_v)`` codewords via :meth:`~repro.codes.BeepCode.encode_many`,
    and phase 2 scatters each ``D(m_v)`` into the one-positions of
    ``C(r_v)`` in ascending order — exactly Notation 7's ``CD`` layout —
    instead of looping :meth:`~repro.codes.CombinedCode.encode` per node.
    ``distance_rows`` is the owning session's bounded row cache.

    Besides the two schedules, returns the active nodes' slot-position
    matrix and a ``r_value → row`` map so the decoders can reuse the
    one-positions without rescanning any codeword.
    """
    n = len(r_values)
    if n != len(messages):
        raise ConfigurationError(
            f"{len(r_values)} r-values but {len(messages)} messages"
        )
    b = codes.length
    phase1 = np.zeros((n, b), dtype=bool)
    phase2 = np.zeros((n, b), dtype=bool)
    active = [v for v in range(n) if messages[v] is not None]
    if not active:
        return phase1, phase2, None, {}
    beep_code = codes.beep_code
    slots = beep_code.encode_many([r_values[v] for v in active])
    phase1[active] = slots
    # Beep codewords have constant weight (Definition 3), so the ascending
    # one-positions of every row form a rectangular (active, weight) matrix.
    weight = beep_code.weight
    positions = np.nonzero(slots)[1].reshape(len(active), weight)
    slot_rows: dict[int, int] = {}
    for row, v in enumerate(active):
        slot_rows.setdefault(r_values[v], row)
    distance_code = codes.distance_code
    payloads = np.empty((len(active), distance_code.length), dtype=bool)
    for position, v in enumerate(active):
        message = messages[v]
        row = distance_rows.get(message)
        if row is None:
            row = np.asarray(distance_code.encode_int(message), dtype=bool)
            distance_rows[message] = row
        payloads[position] = row
    phase2[np.asarray(active)[:, None], positions] = payloads
    return phase1, phase2, positions, slot_rows


def _candidate_matrix_from_plan(
    beep_code,
    plan: "_RoundPlan",
    candidates: Sequence[int],
) -> np.ndarray:
    """The phase-1 candidate codeword matrix, recycled from the schedule.

    A participating node's phase-1 schedule row *is* its codeword
    ``C(r_v)``, so every in-flight candidate's row can be copied from the
    plan instead of re-encoded; only decoy candidates (absent from the
    schedule) pay an encode.  Bit-identical to
    ``beep_code.encode_many(candidates)`` by construction.
    """
    sources: dict[int, int] = {}
    for node, value in enumerate(plan.r_values):
        if plan.participating[node] and value not in sources:
            sources[value] = node
    # float32 from the start: the phase-1 count product consumes this
    # matrix on the BLAS sgemm path, so building it in the target dtype
    # saves a whole-matrix conversion (values stay exactly 0.0/1.0).
    matrix = np.empty((len(candidates), beep_code.length), dtype=np.float32)
    rows = [sources.get(value) for value in candidates]
    known = [i for i, node in enumerate(rows) if node is not None]
    if known:
        matrix[known] = plan.phase1_schedule[[rows[i] for i in known]]
    for position, value in enumerate(candidates):
        if rows[position] is None:
            matrix[position] = beep_code.encode_int(value)
    return matrix


def _candidate_positions(
    beep_code,
    plan: "_RoundPlan",
    candidates: Sequence[int],
) -> np.ndarray:
    """Each candidate codeword's ascending one-positions, mostly recycled.

    In-flight candidates reuse the slot-position rows the schedule
    builder already computed; only decoys (and exhaustive-scan values
    absent from the schedule) pay an encode plus ``flatnonzero``.
    """
    weight = beep_code.weight
    slot_rows = plan.slot_rows or {}
    positions = np.empty((len(candidates), weight), dtype=np.int64)
    rows = [slot_rows.get(value) for value in candidates]
    known = [i for i, row in enumerate(rows) if row is not None]
    if known:
        positions[known] = plan.slot_positions[[rows[i] for i in known]]
    for i, row in enumerate(rows):
        if row is None:
            positions[i] = np.flatnonzero(beep_code.encode_int(candidates[i]))
    return positions


def _phase1_decode_fast(
    beep_code,
    heard: np.ndarray,
    candidates: Sequence[int],
    eps: float,
    codeword_matrix: "np.ndarray | None" = None,
) -> list[set[int]]:
    """Exact fast twin of :func:`~repro.core.decoder.phase1_decode`.

    Same Lemma 9 statistics and threshold, same accepted sets — the only
    difference is that the candidate × node count matrix rides the BLAS
    ``sgemm`` path: with the code length below 2^24 every partial sum is
    an integer exactly representable in float32, so the counts (and the
    threshold compare) cannot differ from the int32 product.
    """
    heard = np.asarray(heard, dtype=bool)
    if not candidates:
        return [set() for _ in range(heard.shape[0])]
    if codeword_matrix is None:
        codeword_matrix = beep_code.encode_many(list(candidates))
    if beep_code.length < _EXACT_FLOAT32_LIMIT:
        # Single-pass bool → float32 conversions (¬heard fused into the
        # subtraction, and the candidate matrix converted only when not
        # already float32), then the exact BLAS sgemm count product; the
        # threshold compare happens in float32, which is exact because
        # every count is an integral float below 2^24.
        not_heard = np.subtract(1.0, heard.T, dtype=np.float32)
        statistics = np.asarray(codeword_matrix, dtype=np.float32) @ not_heard
    else:  # pragma: no cover - paper-strict code lengths only
        statistics = codeword_matrix.astype(np.int64) @ (~heard).T.astype(np.int64)
    accepted_mask = statistics < beep_code.decoding_threshold(eps)
    accepted: list[set[int]] = [set() for _ in range(heard.shape[0])]
    for i, v in zip(*np.nonzero(accepted_mask)):
        accepted[v].add(candidates[i])
    return accepted


def _phase2_decode_fast(
    combined_code: CombinedCode,
    heard: np.ndarray,
    accepted: "Sequence[set[int]]",
    message_candidates: Sequence[int],
    codeword_matrix: "np.ndarray | None" = None,
    slot_positions: "np.ndarray | None" = None,
    slot_index: "dict[int, int] | None" = None,
) -> "list[dict[int, DecodedMessage]]":
    """Exact fast twin of :func:`~repro.core.decoder.phase2_decode`.

    Gathers every accepted ``(node, r)`` pair's heard subsequence into one
    rectangular matrix (beep codewords have constant weight) and computes
    all Hamming distances as a single exact count product —
    ``d(s, D(m)) = |D(m)| + |s| - 2 s·D(m)`` — so the per-pair winner,
    distance and margin (including the smallest-message tie-break, which
    ``argmin`` over the sorted candidate order preserves) match the
    reference decoder value for value.

    ``slot_positions``/``slot_index`` optionally supply precomputed slot
    patterns (row ``slot_index[r]`` holds the ascending one-positions of
    ``C(r)``) so accepted values — which phase 1 always drew from the
    candidate matrix — need neither re-encoding nor a fresh ``nonzero``;
    values missing from the index fall back to the code.
    """
    heard = np.asarray(heard, dtype=bool)
    n = heard.shape[0]
    if len(accepted) != n:
        raise ConfigurationError(
            f"accepted sets ({len(accepted)}) must match heard rows ({n})"
        )
    if not message_candidates:
        raise ConfigurationError("phase 2 needs at least one message candidate")
    distance_code = combined_code.distance_code
    if codeword_matrix is None:
        codeword_matrix = np.stack(
            [distance_code.encode_int(m) for m in message_candidates]
        )
    # Every session call site passes candidates pre-sorted (the
    # reference decoder's argsort is then the identity), so skip the
    # permutation copy unless the order actually needs fixing, and avoid
    # re-copying an already-boolean matrix.
    messages_arr = np.asarray(message_candidates, dtype=np.int64)
    if messages_arr.size > 1 and np.any(messages_arr[1:] < messages_arr[:-1]):
        order = np.argsort(messages_arr, kind="stable")
        ordered_messages = [message_candidates[i] for i in order]
        ordered_matrix = np.asarray(codeword_matrix)[order]
    else:
        ordered_messages = list(message_candidates)
        ordered_matrix = codeword_matrix
    ordered_matrix = np.asarray(ordered_matrix, dtype=bool)

    pair_nodes: list[int] = []
    pair_rs: list[int] = []
    for node in range(n):
        for r in sorted(accepted[node]):
            pair_nodes.append(node)
            pair_rs.append(r)
    results: list[dict[int, DecodedMessage]] = [dict() for _ in range(n)]
    if not pair_nodes:
        return results

    beep_code = combined_code.beep_code
    weight = beep_code.weight
    if slot_positions is not None and slot_index is not None:
        rows = [slot_index.get(r) for r in pair_rs]
        if all(row is not None for row in rows):
            positions = slot_positions[rows]
        else:
            positions = np.empty((len(pair_rs), weight), dtype=np.int64)
            for pair, (r, row) in enumerate(zip(pair_rs, rows)):
                if row is None:
                    positions[pair] = np.flatnonzero(beep_code.encode_int(r))
                else:
                    positions[pair] = slot_positions[row]
    else:
        slots = beep_code.encode_many(pair_rs)
        positions = np.nonzero(slots)[1].reshape(len(pair_rs), weight)
    # One flat gather for every pair's subsequence beats row-wise
    # advanced indexing on the heard matrix.
    flat = heard.reshape(-1)
    subsequences = flat[
        np.asarray(pair_nodes, dtype=np.int64)[:, None] * heard.shape[1]
        + positions
    ]
    # distances[p, m] = |D(m)| + |s_p| - 2 s_p · D(m).  The intermediate
    # |D(m)| + |s_p| can reach 2 * weight, so float32 stays exact only
    # while that bound is representable (weight <= 2^23); beyond it fall
    # back to an integer computation.
    count_dtype = (
        np.float32 if weight <= _EXACT_FLOAT32_LIMIT // 2 else np.int64
    )
    code_weights = np.count_nonzero(ordered_matrix, axis=1).astype(count_dtype)
    sub_weights = np.count_nonzero(subsequences, axis=1).astype(count_dtype)
    dots = subsequences.astype(count_dtype) @ ordered_matrix.T.astype(count_dtype)
    distances = code_weights[np.newaxis, :] + sub_weights[:, np.newaxis] - 2 * dots
    best = np.argmin(distances, axis=1)
    best_distance = np.take_along_axis(
        distances, best[:, np.newaxis], axis=1
    )[:, 0]
    if distances.shape[1] > 1:
        runner_up = np.partition(distances, 1, axis=1)[:, 1]
        margins = runner_up - best_distance
    else:
        margins = weight - best_distance
    for pair, (node, r) in enumerate(zip(pair_nodes, pair_rs)):
        results[node][r] = DecodedMessage(
            message=ordered_messages[int(best[pair])],
            distance=int(best_distance[pair]),
            margin=int(margins[pair]),
        )
    return results


class BatchedSession:
    """``R`` seed-replicas of one ``(topology, params)`` pair, run as a batch.

    Each replica is a full :class:`BroadcastSession` built from its own
    master seed — codes, channel and decoder state derive from that seed
    exactly as standalone sessions do — but every simulated round executes
    both beeping phases as a single stacked
    :meth:`~repro.engine.SimulationBackend.run_schedule_batch` call and
    decodes through the vectorised-exact kernels.  Outcome ``r`` of
    :meth:`run_round` is therefore bit-identical to what
    ``BroadcastSession(topology, params, seeds[r], ...)`` would have
    produced on the same messages, which is what lets
    :mod:`repro.sweeps` batch a grid cell's seed axis without changing a
    single simulated number.

    Parameters
    ----------
    topology:
        The network, shared by every replica.
    params:
        Code parameters, shared by every replica.
    seeds:
        One master seed per replica (the batch size is ``len(seeds)``).
    policy, num_decoys, backend:
        As for :class:`BroadcastSession`; the backend is resolved once
        and shared so the batch executes as one call.
    channels:
        Optional per-replica channel overrides (one entry per seed,
        ``None`` entries meaning "the default for that seed's params") —
        how the sweep layer runs non-default noise models batched.
    """

    def __init__(
        self,
        topology: Topology,
        params: SimulationParameters,
        seeds: Sequence[int],
        *,
        policy: CandidatePolicy = CandidatePolicy.ORACLE_WITH_DECOYS,
        num_decoys: int = 16,
        backend: "str | SimulationBackend | None" = None,
        channels: "Sequence[NoiseModel | None] | None" = None,
    ) -> None:
        seeds = [int(seed) for seed in seeds]
        if not seeds:
            raise ConfigurationError("BatchedSession needs at least one seed")
        if channels is None:
            channels = [None] * len(seeds)
        if len(channels) != len(seeds):
            raise ConfigurationError(
                f"got {len(channels)} channel overrides for "
                f"{len(seeds)} replicas"
            )
        self._sessions = tuple(
            BroadcastSession(
                topology,
                params,
                seed,
                policy=policy,
                num_decoys=num_decoys,
                backend=backend,
                channel=channel,
            )
            for seed, channel in zip(seeds, channels)
        )
        for session in self._sessions:
            session._vectorized = True
        lengths = {session.codes.length for session in self._sessions}
        if len(lengths) != 1:  # pragma: no cover - params pin the length
            raise ConfigurationError(
                f"replica code lengths differ ({sorted(lengths)}); "
                "replicas must share (topology, params)"
            )
        self._topology = topology
        self._params = params
        self._seeds = tuple(seeds)
        self._backend = self._sessions[0].backend

    @property
    def topology(self) -> Topology:
        """The network topology shared by every replica."""
        return self._topology

    @property
    def params(self) -> SimulationParameters:
        """The code parameters shared by every replica."""
        return self._params

    @property
    def seeds(self) -> tuple[int, ...]:
        """The per-replica master seeds (defines the batch size)."""
        return self._seeds

    @property
    def num_replicas(self) -> int:
        """Number of seed-replicas in the batch."""
        return len(self._sessions)

    @property
    def backend(self) -> SimulationBackend:
        """The execution backend shared by the whole batch."""
        return self._backend

    @property
    def sessions(self) -> "tuple[BroadcastSession, ...]":
        """The per-replica sessions (read-only; offsets advance per round)."""
        return self._sessions

    def reset(self, round_offset: int = 0) -> None:
        """Rewind every replica's global beeping-round offset."""
        for session in self._sessions:
            session.reset(round_offset)

    def run_round(
        self,
        messages: "Sequence[Sequence[int | None]]",
        round_offset: int | None = None,
    ) -> list[RoundOutcome]:
        """Run one simulated round on every replica, batched.

        ``messages[r]`` is replica ``r``'s per-node message list (exactly
        the argument :meth:`BroadcastSession.run_round` takes);
        ``round_offset``, when given, rewinds every replica to that
        offset first.  Returns one :class:`RoundOutcome` per replica.
        """
        if len(messages) != len(self._sessions):
            raise ConfigurationError(
                f"got {len(messages)} replica message lists for "
                f"{len(self._sessions)} replicas"
            )
        plans = [
            session._plan_round(replica_messages, round_offset)
            for session, replica_messages in zip(self._sessions, messages)
        ]
        b = self._sessions[0].codes.length
        channels = [session.channel for session in self._sessions]
        starts = [plan.round_offset for plan in plans]
        # Routed through the schedule-runner helper (not the backend
        # directly) so dynamic topologies get their epoch segmentation.
        heard1 = run_schedule_batch(
            self._topology,
            np.stack([plan.phase1_schedule for plan in plans]),
            channels,
            starts,
            backend=self._backend,
        )
        heard2 = run_schedule_batch(
            self._topology,
            np.stack([plan.phase2_schedule for plan in plans]),
            channels,
            [start + b for start in starts],
            backend=self._backend,
        )
        return [
            session._finish_round(plan, heard1[index], heard2[index])
            for index, (session, plan) in enumerate(zip(self._sessions, plans))
        ]

    def run_many(
        self,
        message_rounds: "Sequence[Sequence[Sequence[int | None]]]",
        round_offset: int | None = None,
    ) -> list[list[RoundOutcome]]:
        """Run consecutive rounds on every replica, chaining offsets.

        ``message_rounds[t][r]`` is replica ``r``'s message list for
        round ``t``; the result is indexed the same way.
        """
        if round_offset is not None:
            self.reset(round_offset)
        return [self.run_round(round_messages) for round_messages in message_rounds]


def simulate_broadcast_round(
    topology: Topology,
    messages: Sequence[int | None],
    params: SimulationParameters,
    seed: int,
    round_offset: int = 0,
    policy: CandidatePolicy = CandidatePolicy.ORACLE_WITH_DECOYS,
    num_decoys: int = 16,
    channel: NoiseModel | None = None,
    codes: CombinedCode | None = None,
    backend: str | SimulationBackend | None = None,
) -> RoundOutcome:
    """Run Algorithm 1 once and decode every node's neighbour messages.

    One-shot compatibility wrapper over :class:`BroadcastSession`: builds a
    session, runs a single round at ``round_offset``, and returns its
    outcome.  Simulating many rounds this way rebuilds the session state
    every call — use :class:`BroadcastSession` directly for that.

    Parameters
    ----------
    topology:
        The network (its max degree must not exceed ``params.max_degree``).
    messages:
        Per node, the ``B``-bit message to broadcast, or ``None`` to stay
        silent this round.
    params:
        Code parameters.
    seed:
        Master seed; the per-round randomness is derived from
        ``(seed, round_offset)`` so consecutive rounds are independent.
    round_offset:
        Global beeping-round number at which this simulated round starts
        (keys both noise and the per-round random strings).
    policy, num_decoys:
        Candidate enumeration policy (see DESIGN.md §2.2).
    channel:
        Override the noise channel (defaults to the one implied by
        ``params.eps``).
    codes:
        Reuse a previously built code pair (saves cache warm-up when
        simulating many rounds).
    backend:
        Execution backend for the beeping phases (see :mod:`repro.engine`).
    """
    session = BroadcastSession(
        topology,
        params,
        seed,
        policy=policy,
        num_decoys=num_decoys,
        channel=channel,
        codes=codes,
        backend=backend,
    )
    return session.run_round(messages, round_offset=round_offset)


def _draw_r_values(
    rng: np.random.Generator, count: int, r_space: int
) -> list[int]:
    """Draw each node's random string as an integer in ``[0, 2^a)``.

    ``a`` routinely exceeds 63 bits, so values come from
    :func:`repro.rng.random_bits` rather than ``Generator.integers``.
    """
    bits = (r_space - 1).bit_length() if r_space > 1 else 1
    return [random_bits(rng, bits) for _ in range(count)]


def _candidate_set(
    policy: CandidatePolicy,
    in_flight: list[int],
    r_space: int,
    r_bits: int,
    num_decoys: int,
    rng: np.random.Generator,
) -> list[int]:
    if policy is CandidatePolicy.EXHAUSTIVE:
        if r_bits > _EXHAUSTIVE_LIMIT_BITS:
            raise ConfigurationError(
                f"exhaustive policy limited to r_bits <= {_EXHAUSTIVE_LIMIT_BITS}, "
                f"got {r_bits}"
            )
        return list(range(r_space))
    if policy is CandidatePolicy.IN_FLIGHT:
        return list(in_flight)
    in_flight_set = set(in_flight)
    decoys: set[int] = set()
    while len(decoys) < num_decoys:
        draw = int.from_bytes(rng.bytes(max(1, (r_bits + 7) // 8)), "little")
        draw &= r_space - 1
        if draw not in in_flight_set:
            decoys.add(draw)
    return sorted(in_flight_set | decoys)


def _with_message_decoys(
    message_candidates: list[int],
    message_bits: int,
    num_decoys: int,
    rng: np.random.Generator,
) -> list[int]:
    space = 1 << message_bits
    existing = set(message_candidates)
    budget = min(num_decoys, space - len(existing))
    attempts = 0
    while budget > 0 and attempts < 20 * num_decoys:
        draw = int.from_bytes(rng.bytes(max(1, (message_bits + 7) // 8)), "little")
        draw &= space - 1
        attempts += 1
        if draw not in existing:
            existing.add(draw)
            budget -= 1
    return sorted(existing)
