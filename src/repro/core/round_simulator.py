"""Algorithm 1: simulating Broadcast CONGEST rounds with noisy beeps.

The full round protocol of Section 3:

1. every node ``v`` with a message picks ``r_v`` uniformly at random;
2. phase 1 (``b`` beeping rounds): ``v`` beeps the bits of ``C(r_v)``;
3. phase 2 (``b`` beeping rounds): ``v`` beeps the bits of ``CD(r_v, m_v)``;
4. every node decodes its neighbours' codeword set from the phase-1
   superimposition (Lemmas 8–9) and then each neighbour's message from the
   phase-2 subsequences (Lemma 10).

:class:`BroadcastSession` is the multi-round engine: it builds the code
pair, the channel, the candidate-policy state and the decoder codeword
matrices **once**, then exposes :meth:`~BroadcastSession.run_round` /
:meth:`~BroadcastSession.run_many` whose outcomes are bit-identical to a
sequence of standalone calls with matching round offsets (same seeds →
same :class:`RoundOutcome`\\ s).  :func:`simulate_broadcast_round` remains
as the one-shot compatibility wrapper.

The returned :class:`RoundOutcome` carries both the decoded messages (which
downstream algorithms consume, right or wrong — simulation fidelity is part
of what the experiments measure) and ground-truth diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..beeping.batch import run_schedule
from ..beeping.noise import NoiseModel, NoiselessChannel, BernoulliNoise
from ..codes import CombinedCode
from ..engine import SimulationBackend, resolve_backend
from ..errors import ConfigurationError
from ..graphs import Topology
from ..rng import derive_rng, derive_seed, random_bits
from .decoder import phase1_decode, phase2_decode
from .encoder import build_phase_schedules
from .parameters import CandidatePolicy, SimulationParameters

__all__ = [
    "RoundOutcome",
    "BroadcastSession",
    "simulate_broadcast_round",
    "make_channel_for",
]

#: Exhaustive candidate scans are exponential; refuse beyond this size.
_EXHAUSTIVE_LIMIT_BITS = 22

#: Distance-code rows cached across rounds (per session).  Rows are short
#: (``c²B`` bits) and in-flight messages recur across rounds (IDs, counters
#: ...), so this cache converts phase-2 matrix builds into lookups.
_DISTANCE_ROW_CACHE_LIMIT = 8192


@dataclass(frozen=True)
class RoundOutcome:
    """Result of simulating one Broadcast CONGEST round.

    Attributes
    ----------
    decoded:
        Per node, the decoded neighbour messages as a sorted list (a
        multiset: two neighbours sending equal messages appear twice).
    per_node_success:
        Per node, whether the decoded multiset equals the true one.
    success:
        Whether every node decoded perfectly.
    beep_rounds_used:
        Beeping rounds consumed (``2b``).
    phase1_errors:
        Nodes whose accepted codeword set differed from the truth.
    phase2_errors:
        Nodes with correct phase 1 but a wrong decoded message multiset.
    r_collision:
        Whether two transmitting nodes drew identical random strings.
    accepted_sets:
        Per node, the accepted phase-1 candidate values (own value
        removed) — diagnostic view of ``R̃_v``.
    """

    decoded: list[list[int]]
    per_node_success: np.ndarray
    success: bool
    beep_rounds_used: int
    phase1_errors: int
    phase2_errors: int
    r_collision: bool
    accepted_sets: list[set[int]]


def make_channel_for(params: SimulationParameters, seed: int) -> NoiseModel:
    """The channel implied by the parameters' noise rate."""
    if params.eps == 0.0:
        return NoiselessChannel()
    return BernoulliNoise(params.eps, seed=derive_seed(seed, "channel"))


class BroadcastSession:
    """An amortised multi-round engine for Algorithm 1.

    All per-execution state — the code pair ``(C, D)``, the channel, the
    execution backend, and the candidate-policy decoder state — is built in
    the constructor; each :meth:`run_round` call then only pays for the
    round itself.  The session tracks the global beeping-round offset so
    consecutive rounds chain exactly like
    :class:`~repro.core.transpiler.BeepSimulator` chains standalone calls.

    Parameters
    ----------
    topology:
        The network (its max degree must not exceed ``params.max_degree``).
    params:
        Code parameters.
    seed:
        Master seed; per-round randomness is derived from
        ``(seed, round_offset)`` so rounds are independent and the whole
        session is reproducible.
    policy, num_decoys:
        Candidate enumeration policy (see DESIGN.md §2.2).
    channel:
        Override the noise channel (defaults to the one implied by
        ``params.eps``).
    codes:
        Reuse a previously built code pair.
    backend:
        Execution backend for the beeping phases (name, instance,
        ``"auto"``, or ``None`` for the process default).
    """

    def __init__(
        self,
        topology: Topology,
        params: SimulationParameters,
        seed: int,
        *,
        policy: CandidatePolicy = CandidatePolicy.ORACLE_WITH_DECOYS,
        num_decoys: int = 16,
        channel: NoiseModel | None = None,
        codes: CombinedCode | None = None,
        backend: str | SimulationBackend | None = None,
    ) -> None:
        if topology.max_degree > params.max_degree:
            raise ConfigurationError(
                f"topology degree {topology.max_degree} exceeds parameter "
                f"max_degree {params.max_degree}"
            )
        if policy is CandidatePolicy.EXHAUSTIVE:
            if params.r_bits > _EXHAUSTIVE_LIMIT_BITS:
                raise ConfigurationError(
                    f"exhaustive policy limited to r_bits <= "
                    f"{_EXHAUSTIVE_LIMIT_BITS}, got {params.r_bits}"
                )
            if params.message_bits > _EXHAUSTIVE_LIMIT_BITS:
                raise ConfigurationError(
                    "exhaustive policy limited to small message spaces"
                )
        self._topology = topology
        self._params = params
        self._seed = seed
        self._policy = policy
        self._num_decoys = num_decoys
        self._codes = (
            codes
            if codes is not None
            else params.combined_code(derive_seed(seed, "codes"))
        )
        self._channel = (
            channel if channel is not None else make_channel_for(params, seed)
        )
        self._backend = resolve_backend(
            backend, topology=topology, rounds=self._codes.length
        )
        self._round_offset = 0
        # Candidate-policy decoder state, built lazily once per session:
        # the full phase-1/phase-2 matrices for EXHAUSTIVE, and a bounded
        # distance-row cache for the message-decoy policies.
        self._exhaustive_phase1: np.ndarray | None = None
        self._exhaustive_phase2: np.ndarray | None = None
        self._distance_rows: dict[int, np.ndarray] = {}

    @property
    def topology(self) -> Topology:
        """The network topology."""
        return self._topology

    @property
    def params(self) -> SimulationParameters:
        """The code parameters in force."""
        return self._params

    @property
    def codes(self) -> CombinedCode:
        """The shared code pair ``(C, D)``, built once per session."""
        return self._codes

    @property
    def channel(self) -> NoiseModel:
        """The noise channel, built once per session."""
        return self._channel

    @property
    def backend(self) -> SimulationBackend:
        """The execution backend driving the beeping phases."""
        return self._backend

    @property
    def next_round_offset(self) -> int:
        """The global beeping-round offset the next round will start at."""
        return self._round_offset

    def reset(self, round_offset: int = 0) -> None:
        """Rewind the session's global beeping-round offset."""
        if round_offset < 0:
            raise ConfigurationError(
                f"round_offset must be >= 0, got {round_offset}"
            )
        self._round_offset = round_offset

    def run_round(
        self,
        messages: Sequence[int | None],
        round_offset: int | None = None,
    ) -> RoundOutcome:
        """Run Algorithm 1 once and decode every node's neighbour messages.

        ``messages`` holds, per node, the ``B``-bit message to broadcast or
        ``None`` to stay silent this round.  ``round_offset`` overrides the
        session's running offset (it keys both the noise stream and the
        per-round random strings); either way the session's offset advances
        to just past this round, so back-to-back calls chain contiguously.
        """
        topology = self._topology
        params = self._params
        n = topology.num_nodes
        if len(messages) != n:
            raise ConfigurationError(f"got {len(messages)} messages for {n} nodes")
        for message in messages:
            if message is not None and (
                message < 0 or message >> params.message_bits
            ):
                raise ConfigurationError(
                    f"message {message} does not fit in {params.message_bits} bits"
                )
        if round_offset is None:
            round_offset = self._round_offset
        codes = self._codes
        channel = self._channel

        # Step 1: every participating node draws r_v uniformly at random.
        round_rng = derive_rng(self._seed, "round-randomness", round_offset)
        r_space = 1 << params.r_bits
        r_values = [int(value) for value in _draw_r_values(round_rng, n, r_space)]
        participating = [messages[v] is not None for v in range(n)]

        # Steps 2-3: the two oblivious beeping phases.
        phase1_schedule, phase2_schedule = build_phase_schedules(
            codes, r_values, messages
        )
        b = codes.length
        heard1 = run_schedule(
            topology,
            phase1_schedule,
            channel,
            start_round=round_offset,
            backend=self._backend,
        )
        heard2 = run_schedule(
            topology,
            phase2_schedule,
            channel,
            start_round=round_offset + b,
            backend=self._backend,
        )

        # Candidate enumeration per the chosen policy.
        in_flight = sorted({r_values[v] for v in range(n) if participating[v]})
        candidates = _candidate_set(
            self._policy,
            in_flight,
            r_space,
            params.r_bits,
            self._num_decoys,
            round_rng,
        )

        # Step 4a: phase-1 decoding (Lemma 9 threshold test).
        accepted_raw = phase1_decode(
            codes.beep_code,
            heard1,
            candidates,
            params.eps,
            codeword_matrix=self._phase1_matrix(candidates),
        )
        accepted: list[set[int]] = []
        for v in range(n):
            own = {r_values[v]} if participating[v] else set()
            accepted.append(accepted_raw[v] - own)

        # Ground truth for diagnostics.
        true_sets = [
            {r_values[int(u)] for u in topology.neighbors[v] if participating[int(u)]}
            for v in range(n)
        ]
        phase1_errors = sum(accepted[v] != true_sets[v] for v in range(n))
        transmitted = [r_values[v] for v in range(n) if participating[v]]
        r_collision = len(set(transmitted)) != len(transmitted)

        # Step 4b: phase-2 decoding (nearest distance codeword).
        message_candidates = sorted(
            {messages[v] for v in range(n) if participating[v]}  # type: ignore[arg-type]
        )
        if (
            self._policy is CandidatePolicy.ORACLE_WITH_DECOYS
            and message_candidates
        ):
            message_candidates = _with_message_decoys(
                message_candidates,
                params.message_bits,
                self._num_decoys,
                round_rng,
            )
        if self._policy is CandidatePolicy.EXHAUSTIVE:
            message_candidates = list(range(1 << params.message_bits))
        decoded_maps = (
            phase2_decode(
                codes,
                heard2,
                accepted,
                message_candidates,
                codeword_matrix=self._phase2_matrix(message_candidates),
            )
            if message_candidates
            else [dict() for _ in range(n)]
        )

        decoded = [
            sorted(entry.message for entry in decoded_maps[v].values())
            for v in range(n)
        ]
        truth = [
            sorted(
                messages[int(u)]  # type: ignore[arg-type]
                for u in topology.neighbors[v]
                if participating[int(u)]
            )
            for v in range(n)
        ]
        per_node_success = np.asarray(
            [decoded[v] == truth[v] for v in range(n)], dtype=bool
        )
        phase2_errors = sum(
            1
            for v in range(n)
            if accepted[v] == true_sets[v] and not per_node_success[v]
        )
        self._round_offset = round_offset + 2 * b
        return RoundOutcome(
            decoded=decoded,
            per_node_success=per_node_success,
            success=bool(per_node_success.all()),
            beep_rounds_used=2 * b,
            phase1_errors=phase1_errors,
            phase2_errors=phase2_errors,
            r_collision=r_collision,
            accepted_sets=accepted,
        )

    def run_many(
        self,
        message_rounds: Sequence[Sequence[int | None]],
        round_offset: int | None = None,
    ) -> list[RoundOutcome]:
        """Run consecutive Broadcast CONGEST rounds, chaining offsets.

        Equivalent to calling :func:`simulate_broadcast_round` once per
        entry with ``round_offset`` advancing by ``2b`` each time — but the
        codes, channel, backend and decoder matrices are constructed only
        once, in the session constructor.
        """
        if round_offset is not None:
            self.reset(round_offset)
        return [self.run_round(messages) for messages in message_rounds]

    def _phase1_matrix(self, candidates: Sequence[int]) -> np.ndarray | None:
        """The phase-1 decoder's ``int32`` codeword matrix, when amortisable.

        Under :attr:`CandidatePolicy.EXHAUSTIVE` the candidate list is the
        full domain every round, so the matrix is built once and reused.
        The other policies draw fresh random candidates each round; for
        them the decoder builds its matrix per call (``None``) through the
        beep code's own codeword cache.
        """
        if self._policy is not CandidatePolicy.EXHAUSTIVE:
            return None
        if self._exhaustive_phase1 is None:
            self._exhaustive_phase1 = self._codes.beep_code.encode_many(
                list(candidates)
            ).astype(np.int32)
        return self._exhaustive_phase1

    def _phase2_matrix(self, message_candidates: Sequence[int]) -> np.ndarray | None:
        """The phase-2 boolean codeword matrix for ``message_candidates``.

        Built from a bounded per-session row cache (messages recur across
        rounds far more than the phase-1 random strings do); the full
        message space is cached wholesale under EXHAUSTIVE.
        """
        if not message_candidates:
            return None
        distance_code = self._codes.distance_code
        if self._policy is CandidatePolicy.EXHAUSTIVE:
            if self._exhaustive_phase2 is None:
                self._exhaustive_phase2 = np.stack(
                    [distance_code.encode_int(m) for m in message_candidates]
                )
            return self._exhaustive_phase2
        rows = self._distance_rows
        matrix = np.empty(
            (len(message_candidates), distance_code.length), dtype=bool
        )
        for position, message in enumerate(message_candidates):
            row = rows.get(message)
            if row is None:
                row = np.asarray(distance_code.encode_int(message), dtype=bool)
                while len(rows) >= _DISTANCE_ROW_CACHE_LIMIT:
                    rows.pop(next(iter(rows)))
            else:
                # LRU refresh: recurring messages are the cache's whole
                # point; evict the one-shot decoy rows first.
                del rows[message]
            rows[message] = row
            matrix[position] = row
        return matrix


def simulate_broadcast_round(
    topology: Topology,
    messages: Sequence[int | None],
    params: SimulationParameters,
    seed: int,
    round_offset: int = 0,
    policy: CandidatePolicy = CandidatePolicy.ORACLE_WITH_DECOYS,
    num_decoys: int = 16,
    channel: NoiseModel | None = None,
    codes: CombinedCode | None = None,
    backend: str | SimulationBackend | None = None,
) -> RoundOutcome:
    """Run Algorithm 1 once and decode every node's neighbour messages.

    One-shot compatibility wrapper over :class:`BroadcastSession`: builds a
    session, runs a single round at ``round_offset``, and returns its
    outcome.  Simulating many rounds this way rebuilds the session state
    every call — use :class:`BroadcastSession` directly for that.

    Parameters
    ----------
    topology:
        The network (its max degree must not exceed ``params.max_degree``).
    messages:
        Per node, the ``B``-bit message to broadcast, or ``None`` to stay
        silent this round.
    params:
        Code parameters.
    seed:
        Master seed; the per-round randomness is derived from
        ``(seed, round_offset)`` so consecutive rounds are independent.
    round_offset:
        Global beeping-round number at which this simulated round starts
        (keys both noise and the per-round random strings).
    policy, num_decoys:
        Candidate enumeration policy (see DESIGN.md §2.2).
    channel:
        Override the noise channel (defaults to the one implied by
        ``params.eps``).
    codes:
        Reuse a previously built code pair (saves cache warm-up when
        simulating many rounds).
    backend:
        Execution backend for the beeping phases (see :mod:`repro.engine`).
    """
    session = BroadcastSession(
        topology,
        params,
        seed,
        policy=policy,
        num_decoys=num_decoys,
        channel=channel,
        codes=codes,
        backend=backend,
    )
    return session.run_round(messages, round_offset=round_offset)


def _draw_r_values(
    rng: np.random.Generator, count: int, r_space: int
) -> list[int]:
    """Draw each node's random string as an integer in ``[0, 2^a)``.

    ``a`` routinely exceeds 63 bits, so values come from
    :func:`repro.rng.random_bits` rather than ``Generator.integers``.
    """
    bits = (r_space - 1).bit_length() if r_space > 1 else 1
    return [random_bits(rng, bits) for _ in range(count)]


def _candidate_set(
    policy: CandidatePolicy,
    in_flight: list[int],
    r_space: int,
    r_bits: int,
    num_decoys: int,
    rng: np.random.Generator,
) -> list[int]:
    if policy is CandidatePolicy.EXHAUSTIVE:
        if r_bits > _EXHAUSTIVE_LIMIT_BITS:
            raise ConfigurationError(
                f"exhaustive policy limited to r_bits <= {_EXHAUSTIVE_LIMIT_BITS}, "
                f"got {r_bits}"
            )
        return list(range(r_space))
    if policy is CandidatePolicy.IN_FLIGHT:
        return list(in_flight)
    in_flight_set = set(in_flight)
    decoys: set[int] = set()
    while len(decoys) < num_decoys:
        draw = int.from_bytes(rng.bytes(max(1, (r_bits + 7) // 8)), "little")
        draw &= r_space - 1
        if draw not in in_flight_set:
            decoys.add(draw)
    return sorted(in_flight_set | decoys)


def _with_message_decoys(
    message_candidates: list[int],
    message_bits: int,
    num_decoys: int,
    rng: np.random.Generator,
) -> list[int]:
    space = 1 << message_bits
    existing = set(message_candidates)
    budget = min(num_decoys, space - len(existing))
    attempts = 0
    while budget > 0 and attempts < 20 * num_decoys:
        draw = int.from_bytes(rng.bytes(max(1, (message_bits + 7) // 8)), "little")
        draw &= space - 1
        attempts += 1
        if draw not in existing:
            existing.add(draw)
            budget -= 1
    return sorted(existing)
