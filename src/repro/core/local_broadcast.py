"""B-bit Local Broadcast (Definition 13) and its upper bounds (Lemma 15).

Every node ``v`` holds a ``B``-bit message ``m_{v→u}`` for each neighbour
``u`` and must output the set ``{⟨ID_u, m_{u→v}⟩}`` of messages addressed
to it.  Lemma 15's algorithms:

* **Broadcast CONGEST**: ``Δ ⌈B/payload⌉`` rounds — node ``v`` broadcasts
  ``⟨ID_u, ID_v, chunk⟩`` for each neighbour ``u`` in turn, chunking the
  ``B`` bits through the per-round budget;
* **CONGEST**: ``⌈B/budget⌉`` rounds — ``v`` sends each neighbour its
  message directly, chunked.

These exact round counts are what experiment E9 verifies, and together with
the Lemma 14 counting bound they yield the Ω(Δ log n) / Ω(Δ² log n)
simulation overhead lower bounds of Corollary 16.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..congest.algorithm import BroadcastCongestAlgorithm, CongestAlgorithm
from ..congest.context import NodeContext
from ..congest.model import MessageCodec, required_bits
from ..congest.network import BroadcastCongestNetwork, CongestNetwork
from ..errors import ConfigurationError
from ..graphs import Topology
from ..graphs.hard_instances import LocalBroadcastInstance

__all__ = [
    "LocalBroadcastViaBroadcastCongest",
    "LocalBroadcastViaCongest",
    "LocalBroadcastReport",
    "run_local_broadcast_bc",
    "run_local_broadcast_congest",
]


@dataclass(frozen=True)
class LocalBroadcastReport:
    """Outcome of solving a Local Broadcast instance.

    Attributes
    ----------
    rounds_used:
        Communication rounds the engine executed.
    predicted_rounds:
        The Lemma 15 round count for the chosen chunking.
    correct:
        Whether every node output exactly its expected message set.
    """

    rounds_used: int
    predicted_rounds: int
    correct: bool


class LocalBroadcastViaBroadcastCongest(BroadcastCongestAlgorithm):
    """One node of the Lemma 15 Broadcast CONGEST algorithm.

    The round schedule is globally synchronised: round ``i·chunks + j``
    carries chunk ``j`` for the node's ``i``-th neighbour (sorted by
    destination ID); nodes with fewer neighbours idle in spare slots.
    """

    def __init__(
        self,
        node_id: int,
        messages: Mapping[int, int],
        message_bits: int,
        id_bits: int,
        budget_bits: int,
    ) -> None:
        self._node_id = node_id
        self._outgoing = sorted(messages.items())
        self._message_bits = message_bits
        payload_bits = budget_bits - 2 * id_bits
        if payload_bits < 1:
            raise ConfigurationError(
                f"budget {budget_bits} too small for two {id_bits}-bit IDs"
            )
        self._payload_bits = payload_bits
        self._chunks = max(1, math.ceil(message_bits / payload_bits))
        self._codec = MessageCodec(
            [("dest", id_bits), ("sender", id_bits), ("chunk", payload_bits)]
        )
        self._assembled: dict[int, int] = {}
        self._total_rounds = 0
        self._done = False

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        self._total_rounds = max(1, ctx.max_degree) * self._chunks

    @property
    def chunks(self) -> int:
        """Chunks per message, ``⌈B/payload⌉``."""
        return self._chunks

    @property
    def total_rounds(self) -> int:
        """The algorithm's fixed round count ``Δ · chunks``."""
        return self._total_rounds

    def broadcast(self, round_index: int) -> int | None:
        if round_index >= self._total_rounds:
            return None
        neighbor_slot, chunk_index = divmod(round_index, self._chunks)
        if neighbor_slot >= len(self._outgoing):
            return None
        destination, message = self._outgoing[neighbor_slot]
        chunk = (message >> (chunk_index * self._payload_bits)) & (
            (1 << self._payload_bits) - 1
        )
        return self._codec.pack(
            dest=destination, sender=self._node_id, chunk=chunk
        )

    def receive(self, round_index: int, messages: list[int]) -> None:
        chunk_index = round_index % self._chunks
        for fields in map(self._codec.unpack, messages):
            if fields["dest"] != self._node_id:
                continue
            sender = fields["sender"]
            shifted = fields["chunk"] << (chunk_index * self._payload_bits)
            self._assembled[sender] = self._assembled.get(sender, 0) | shifted
        if round_index + 1 >= self._total_rounds:
            self._done = True

    @property
    def finished(self) -> bool:
        return self._done

    def output(self) -> set[tuple[int, int]]:
        mask = (1 << self._message_bits) - 1
        return {
            (sender, value & mask) for sender, value in self._assembled.items()
        }


class LocalBroadcastViaCongest(CongestAlgorithm):
    """One node of the Lemma 15 CONGEST algorithm (direct chunked sends)."""

    def __init__(
        self, node_id: int, messages: Mapping[int, int], message_bits: int
    ) -> None:
        self._node_id = node_id
        self._messages = dict(messages)
        self._message_bits = message_bits
        self._chunks = 0
        self._assembled: dict[int, int] = {}
        self._done = False

    def setup(self, ctx: NodeContext) -> None:
        super().setup(ctx)
        self._payload_bits = ctx.message_bits
        self._chunks = max(1, math.ceil(self._message_bits / self._payload_bits))

    @property
    def chunks(self) -> int:
        """Chunks per message, ``⌈B/budget⌉`` — the algorithm's round count."""
        return self._chunks

    def send(self, round_index: int) -> Mapping[int, int]:
        if round_index >= self._chunks:
            return {}
        mask = (1 << self._payload_bits) - 1
        shift = round_index * self._payload_bits
        return {
            destination: (message >> shift) & mask
            for destination, message in self._messages.items()
        }

    def receive(self, round_index: int, messages: Mapping[int, int]) -> None:
        shift = round_index * self._payload_bits
        for sender, chunk in messages.items():
            self._assembled[sender] = self._assembled.get(sender, 0) | (
                chunk << shift
            )
        if round_index + 1 >= self._chunks:
            self._done = True

    @property
    def finished(self) -> bool:
        return self._done

    def output(self) -> set[tuple[int, int]]:
        mask = (1 << self._message_bits) - 1
        return {
            (sender, value & mask) for sender, value in self._assembled.items()
        }


def run_local_broadcast_bc(
    instance: LocalBroadcastInstance,
    budget_bits: int | None = None,
    seed: int = 0,
) -> LocalBroadcastReport:
    """Solve an instance with the Broadcast CONGEST algorithm and verify it."""
    topology = Topology(instance.graph)
    n = topology.num_nodes
    id_bits = required_bits(max(instance.ids.values()) + 1)
    if budget_bits is None:
        budget_bits = 2 * id_bits + max(
            1, math.ceil(math.log2(max(2, n)))
        )
    algorithms = [
        LocalBroadcastViaBroadcastCongest(
            node_id=instance.ids[v],
            messages={
                instance.ids[u]: instance.messages[(v, u)]
                for u in instance.graph.neighbors(v)
            },
            message_bits=instance.message_bits,
            id_bits=id_bits,
            budget_bits=budget_bits,
        )
        for v in range(n)
    ]
    network = BroadcastCongestNetwork(
        topology, ids=[instance.ids[v] for v in range(n)], message_bits=budget_bits
    )
    # All nodes share the chunk count; total rounds = Δ · chunks (Lemma 15).
    predicted = max(1, topology.max_degree) * algorithms[0].chunks
    result = network.run(algorithms, max_rounds=predicted + 1)
    correct = all(
        result.outputs[v] == instance.expected_output(v) for v in range(n)
    )
    return LocalBroadcastReport(
        rounds_used=result.rounds_used, predicted_rounds=predicted, correct=correct
    )


def run_local_broadcast_congest(
    instance: LocalBroadcastInstance,
    budget_bits: int | None = None,
    seed: int = 0,
) -> LocalBroadcastReport:
    """Solve an instance with the CONGEST algorithm and verify it."""
    topology = Topology(instance.graph)
    n = topology.num_nodes
    if budget_bits is None:
        budget_bits = max(1, math.ceil(math.log2(max(2, n))))
    algorithms = [
        LocalBroadcastViaCongest(
            node_id=instance.ids[v],
            messages={
                instance.ids[u]: instance.messages[(v, u)]
                for u in instance.graph.neighbors(v)
            },
            message_bits=instance.message_bits,
        )
        for v in range(n)
    ]
    network = CongestNetwork(
        topology, ids=[instance.ids[v] for v in range(n)], message_bits=budget_bits
    )
    predicted = max(1, math.ceil(instance.message_bits / budget_bits))
    result = network.run(algorithms, max_rounds=predicted + 1)
    correct = all(
        result.outputs[v] == instance.expected_output(v) for v in range(n)
    )
    return LocalBroadcastReport(
        rounds_used=result.rounds_used, predicted_rounds=predicted, correct=correct
    )
