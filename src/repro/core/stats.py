"""Round and failure accounting for simulated executions."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimulationStats"]


@dataclass
class SimulationStats:
    """Accumulated statistics across a simulated execution.

    Attributes
    ----------
    simulated_rounds:
        Broadcast CONGEST rounds simulated.
    beep_rounds:
        Total beeping rounds consumed.
    failed_rounds:
        Simulated rounds in which at least one node decoded its neighbour
        message multiset incorrectly.
    phase1_node_errors:
        Node-rounds where the accepted set ``R̃_v`` differed from the true
        neighbour codeword set ``R_v``.
    phase2_node_errors:
        Node-rounds where some neighbour message decoded incorrectly
        (given a correct phase 1).
    r_collisions:
        Simulated rounds in which two transmitting nodes drew the same
        random string (the event Lemma 8 conditions away).
    """

    simulated_rounds: int = 0
    beep_rounds: int = 0
    failed_rounds: int = 0
    phase1_node_errors: int = 0
    phase2_node_errors: int = 0
    r_collisions: int = 0
    _per_round_success: list[bool] = field(default_factory=list, repr=False)

    def record_round(
        self,
        beep_rounds: int,
        success: bool,
        phase1_errors: int,
        phase2_errors: int,
        r_collision: bool,
    ) -> None:
        """Fold one simulated round's outcome into the totals."""
        self.simulated_rounds += 1
        self.beep_rounds += beep_rounds
        self.failed_rounds += 0 if success else 1
        self.phase1_node_errors += phase1_errors
        self.phase2_node_errors += phase2_errors
        self.r_collisions += 1 if r_collision else 0
        self._per_round_success.append(success)

    @property
    def success_rate(self) -> float:
        """Fraction of simulated rounds decoded perfectly at every node."""
        if self.simulated_rounds == 0:
            return 1.0
        return 1.0 - self.failed_rounds / self.simulated_rounds

    @property
    def overhead(self) -> float:
        """Measured beeping rounds per simulated round."""
        if self.simulated_rounds == 0:
            return 0.0
        return self.beep_rounds / self.simulated_rounds
