"""Receiver-side of Algorithm 1: the two decoding stages of Section 4.

**Phase 1** (Lemmas 8–9): node ``v`` heard ``x̃_v`` — the superimposition of
its inclusive neighbourhood's beep codewords with each bit flipped with
probability ε.  It accepts every candidate ``r`` whose codeword has fewer
than ``(2ε+1)/4 · c²γlog n`` ones in positions where ``x̃_v`` has none.

**Phase 2** (Lemma 10): for each accepted ``r``, node ``v`` reads the heard
string of the second phase at the one-positions of ``C(r)`` to obtain
``ỹ_{v,r}`` and decodes the message as the distance codeword nearest in
Hamming distance.

Both stages are exact implementations of the paper's tests, vectorised over
(candidate × node) with matrix products.  Candidate enumeration policy is
the caller's choice (see :class:`~repro.core.parameters.CandidatePolicy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import bitstrings
from ..codes import BeepCode, CombinedCode
from ..errors import ConfigurationError

__all__ = ["DecodedMessage", "phase1_decode", "phase2_decode"]


@dataclass(frozen=True)
class DecodedMessage:
    """One decoded neighbour transmission.

    Attributes
    ----------
    message:
        The decoded message value.
    distance:
        Hamming distance between the heard subsequence and the winning
        distance codeword.
    margin:
        Gap to the runner-up codeword's distance (higher = more confident;
        0 means a tie, broken toward the smaller message value).
    """

    message: int
    distance: int
    margin: int


def phase1_decode(
    beep_code: BeepCode,
    heard: np.ndarray,
    candidates: Sequence[int],
    eps: float,
    codeword_matrix: np.ndarray | None = None,
) -> list[set[int]]:
    """Decode every node's accepted codeword set ``R̃_v`` (Lemma 9 test).

    Parameters
    ----------
    beep_code:
        The shared beep code ``C``.
    heard:
        Boolean ``(n, b)`` matrix; row ``v`` is the string ``x̃_v``.
    candidates:
        Candidate ``r`` values to test (the scan set; the per-candidate
        test is the paper's regardless of how this set was chosen).
    eps:
        The channel noise rate, which sets the acceptance threshold.
    codeword_matrix:
        Optional pre-built ``(len(candidates), b)`` matrix of the
        candidates' codewords (row ``i`` = ``C(candidates[i])``), letting
        sessions amortise encoding across rounds.

    Returns
    -------
    list[set[int]]
        Per node, the set of accepted candidate values.
    """
    heard = np.asarray(heard, dtype=bool)
    if heard.ndim != 2 or heard.shape[1] != beep_code.length:
        raise ConfigurationError(
            f"heard matrix must be (n, {beep_code.length}), got {heard.shape}"
        )
    if not candidates:
        return [set() for _ in range(heard.shape[0])]
    if codeword_matrix is None:
        codeword_matrix = beep_code.encode_many(list(candidates)).astype(np.int32)
    elif codeword_matrix.shape != (len(candidates), beep_code.length):
        raise ConfigurationError(
            f"codeword matrix must be ({len(candidates)}, {beep_code.length}), "
            f"got {codeword_matrix.shape}"
        )
    not_heard = (~heard).astype(np.int32)
    # statistics[i, v] = 1(C(candidate_i) ∧ ¬x̃_v)
    statistics = codeword_matrix @ not_heard.T
    threshold = beep_code.decoding_threshold(eps)
    accepted_mask = statistics < threshold
    return [
        {candidates[i] for i in np.flatnonzero(accepted_mask[:, v])}
        for v in range(heard.shape[0])
    ]


def phase2_decode(
    combined_code: CombinedCode,
    heard: np.ndarray,
    accepted: Sequence[set[int]],
    message_candidates: Sequence[int],
    codeword_matrix: np.ndarray | None = None,
) -> list[dict[int, DecodedMessage]]:
    """Decode every node's neighbour messages from the phase-2 heard strings.

    Parameters
    ----------
    combined_code:
        The shared codes.
    heard:
        Boolean ``(n, b)`` matrix; row ``v`` is the phase-2 string ``ỹ_v``.
    accepted:
        Per node, the codeword values accepted in phase 1 (the node's own
        value should already be removed by the caller).
    message_candidates:
        Candidate message values for nearest-codeword decoding.
    codeword_matrix:
        Optional pre-built boolean ``(len(message_candidates), len(D))``
        matrix of distance codewords (row ``i`` =
        ``D(message_candidates[i])``), letting sessions amortise encoding
        across rounds.

    Returns
    -------
    list[dict[int, DecodedMessage]]
        Per node, a mapping from accepted ``r`` value to decoded message.
    """
    heard = np.asarray(heard, dtype=bool)
    n = heard.shape[0]
    if len(accepted) != n:
        raise ConfigurationError(
            f"accepted sets ({len(accepted)}) must match heard rows ({n})"
        )
    if not message_candidates:
        raise ConfigurationError("phase 2 needs at least one message candidate")
    distance_code = combined_code.distance_code
    if codeword_matrix is None:
        codeword_matrix = np.stack(
            [distance_code.encode_int(m) for m in message_candidates]
        )
    elif codeword_matrix.shape != (
        len(message_candidates),
        distance_code.length,
    ):
        raise ConfigurationError(
            f"codeword matrix must be ({len(message_candidates)}, "
            f"{distance_code.length}), got {codeword_matrix.shape}"
        )
    # Sort candidates so argmin tie-break lands on the smallest message
    # value, matching DistanceCode.decode_nearest.
    order = np.argsort(np.asarray(message_candidates, dtype=np.int64), kind="stable")
    ordered_messages = [message_candidates[i] for i in order]
    ordered_matrix = codeword_matrix[order]

    results: list[dict[int, DecodedMessage]] = []
    beep_code = combined_code.beep_code
    for node in range(n):
        node_result: dict[int, DecodedMessage] = {}
        for r in sorted(accepted[node]):
            positions = bitstrings.ones_positions(beep_code.encode_int(r))
            subsequence = heard[node][positions]
            distances = np.count_nonzero(ordered_matrix != subsequence, axis=1)
            best = int(np.argmin(distances))
            best_distance = int(distances[best])
            if len(distances) > 1:
                runner_up = int(np.partition(distances, 1)[1])
                margin = runner_up - best_distance
            else:
                margin = int(len(subsequence) - best_distance)
            node_result[r] = DecodedMessage(
                message=ordered_messages[best],
                distance=best_distance,
                margin=margin,
            )
        results.append(node_result)
    return results
