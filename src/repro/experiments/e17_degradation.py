"""E17 — graceful degradation under heterogeneous noise and churn.

The paper's ``O(Δ log n)``-round simulation assumes a static graph and
uniform Bernoulli(ε) noise.  This experiment measures where that
guarantee *degrades gracefully* versus *breaks* when the same ε budget is
spent non-uniformly: an unreliable hot zone covering a growing fraction
of the nodes (``zone:<frac>`` channels — the mean per-node rate stays on
budget, the hot nodes run at up to ``4ε``), crossed with per-round node
churn that masks a random subset of radios each simulated round
(:class:`~repro.beeping.noise.DynamicTopology`).

The table reports, per (hot-zone fraction × churn rate) cell, the decode
success rate over seeds × rounds and the *effective round overhead* —
beeping rounds spent per successfully simulated Broadcast CONGEST round
(``2b / success_rate``; infinite when nothing succeeds, rendered as
``None``).  A graceful row keeps the overhead within a small factor of
the noiseless-zone baseline; a broken row's success rate collapses.
"""

from __future__ import annotations

from ..beeping.noise import DynamicTopology, make_noise_model
from ..core.parameters import SimulationParameters
from ..core.round_simulator import BroadcastSession
from ..graphs import Topology, random_regular_graph
from ..rng import derive_rng, derive_seed, random_bits
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]

#: Nominal per-bit noise budget every scenario spends (uniformly,
#: zoned, or adversarially re-shaped — the mean rate never exceeds it).
_EPS = 0.05

#: Hot-zone fractions swept (0.0 = the uniform-Bernoulli baseline).
_FRACTIONS = (0.0, 0.25, 0.5)

#: Per-epoch node-churn probabilities swept (0.0 = static graph).
_CHURNS = (0.0, 0.15, 0.3)


def _cell_channel(frac: float, eps: float, seed: int, n: int):
    """The scenario channel for one hot-zone fraction (0 = uniform)."""
    name = "bernoulli" if frac == 0.0 else f"zone:{frac}"
    return make_noise_model(name, eps, seed, n)


@experiment(
    id="e17",
    title="Degradation under unreliable zones and churn",
    claim="Section 3 robustness (beyond the paper's static uniform model)",
    tags=("scenario", "noise", "churn"),
)
def run(ctx: RunContext) -> list[Table]:
    """Sweep hot-zone fraction × churn rate at a fixed ε budget."""
    table = Table(
        title=(
            "E17: success rate and round overhead vs hot-zone fraction "
            f"and churn (eps budget {_EPS})"
        ),
        headers=[
            "n",
            "hot_frac",
            "churn",
            "seeds",
            "rounds",
            "success_rate",
            "beep_rounds_per_round",
            "effective_overhead",
        ],
        notes=[
            "zone:<frac> spends the same mean eps budget with the hot "
            "zone at up to 4x the rate; churn re-masks the adjacency once per "
            "simulated round; effective_overhead = beep rounds per "
            "successful simulated round (None when nothing succeeds)",
        ],
    )
    n = 16
    rounds = 2 if ctx.quick else 6
    seeds = (
        [ctx.seed, ctx.seed + 1]
        if ctx.quick
        else [ctx.seed + offset for offset in range(4)]
    )
    topology = Topology(random_regular_graph(n, 3, seed=ctx.seed))
    params = SimulationParameters.for_network(
        n, topology.max_degree, eps=_EPS, gamma=1
    )
    for frac in _FRACTIONS:
        for churn in _CHURNS:
            successes = 0
            for seed in seeds:
                session_seed = derive_seed(seed, "e17-session", frac, churn)
                session_topology = (
                    topology
                    if churn == 0.0
                    else DynamicTopology(
                        topology,
                        period=params.rounds_per_simulated_round,
                        churn=churn,
                        seed=derive_seed(session_seed, "churn"),
                    )
                )
                session = BroadcastSession(
                    session_topology,
                    params,
                    session_seed,
                    channel=_cell_channel(frac, _EPS, session_seed, n),
                )
                message_rng = derive_rng(session_seed, "e17-messages")
                for _round in range(rounds):
                    messages = [
                        random_bits(message_rng, params.message_bits)
                        for _ in range(n)
                    ]
                    outcome = session.run_round(messages)
                    successes += 1 if outcome.success else 0
            total = rounds * len(seeds)
            success_rate = successes / total
            beep_rounds = params.rounds_per_simulated_round
            overhead = (
                round(beep_rounds / success_rate, 1) if successes else None
            )
            table.add_row(
                n,
                frac,
                churn,
                len(seeds),
                total,
                success_rate,
                beep_rounds,
                overhead,
            )
    return [table]
