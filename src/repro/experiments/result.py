"""Structured experiment results: typed rows + metadata, text rendered last.

v1 experiments produced :class:`Table` objects whose monospace rendering
was the *only* artifact.  v2 inverts that: an :class:`ExperimentResult`
carries the row data (as JSON-able scalars), the table schema (headers,
title, notes) and run metadata (profile, seed, backend, elapsed seconds,
schema version), and the text table is *rendered from* the result.  The
result round-trips losslessly through JSON (``to_json``/``from_json``)
and exports per-table CSV, which is what the ``--format json|csv`` and
``--output`` CLI modes and the on-disk result cache are built on.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from ..errors import ConfigurationError
from .table import Table

__all__ = ["SCHEMA_VERSION", "TableData", "ExperimentResult"]

#: Bump when the serialized layout changes incompatibly; ``from_dict``
#: rejects documents from a different major schema.
SCHEMA_VERSION = 2


def _plain_scalar(value: object) -> object:
    """Coerce numpy scalars to plain Python so JSON round-trips exactly."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


@dataclass
class TableData:
    """One table's schema and rows, as JSON-able data.

    The shape mirrors :class:`Table` (title, headers, rows, notes) but
    rows are lists of plain scalars — numpy values are coerced on
    construction so ``to_dict`` → ``json`` → ``from_dict`` is lossless.
    """

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        """Normalise rows to lists of plain scalars and check arity."""
        self.headers = [str(header) for header in self.headers]
        if len(set(self.headers)) != len(self.headers):
            raise ConfigurationError(
                f"table {self.title!r}: duplicate headers {self.headers} "
                "would collapse record keys"
            )
        normalised = []
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ConfigurationError(
                    f"table {self.title!r}: row has {len(row)} cells, "
                    f"schema has {len(self.headers)} columns"
                )
            normalised.append([_plain_scalar(value) for value in row])
        self.rows = normalised
        self.notes = [str(note) for note in self.notes]

    @classmethod
    def from_table(cls, table: Table) -> "TableData":
        """Capture a rendered-oriented :class:`Table` as structured data."""
        return cls(
            title=table.title,
            headers=list(table.headers),
            rows=[list(row) for row in table.rows],
            notes=list(table.notes),
        )

    def to_table(self) -> Table:
        """Rebuild the :class:`Table` (text rendering happens there)."""
        return Table(
            title=self.title,
            headers=list(self.headers),
            rows=[tuple(row) for row in self.rows],
            notes=list(self.notes),
        )

    def records(self) -> Iterator[dict[str, object]]:
        """Yield each row as a ``{header: value}`` record dict."""
        for row in self.rows:
            yield dict(zip(self.headers, row))

    def to_csv(self) -> str:
        """The table as an RFC-4180 CSV document (header + rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def to_dict(self) -> dict:
        """JSON-able dict form."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TableData":
        """Inverse of :meth:`to_dict`."""
        return cls(
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            notes=list(payload.get("notes", [])),
        )


@dataclass
class ExperimentResult:
    """One experiment run: metadata, structured tables, render-on-demand.

    Attributes
    ----------
    experiment_id, title, claim, tags:
        Copied from the :class:`~repro.experiments.spec.ExperimentSpec`.
    profile, seed, backend:
        The run configuration (``backend`` is the requested backend name,
        ``"auto"`` when unset).
    elapsed:
        Wall-clock seconds the runner took (0.0 for cache hits replayed
        from disk — the stored value is the original run's).
    tables:
        The structured per-table data.
    cached:
        True when this result was replayed from the on-disk cache rather
        than executed (not serialized; always False after a round-trip).
    """

    experiment_id: str
    title: str
    profile: str
    seed: int
    backend: str
    elapsed: float
    tables: list[TableData]
    claim: str = ""
    tags: tuple[str, ...] = ()
    cached: bool = False

    def __post_init__(self) -> None:
        """Normalise tags and adopt raw :class:`Table` objects."""
        self.tags = tuple(self.tags)
        self.tables = [
            table if isinstance(table, TableData) else TableData.from_table(table)
            for table in self.tables
        ]

    def records(self) -> Iterator[dict[str, object]]:
        """All row records across tables, tagged with their table title.

        The title rides under the ``"table"`` key — or ``"_table"`` when
        a table has a real column named ``table``, so cell data is never
        shadowed.
        """
        for table in self.tables:
            title_key = "_table" if "table" in table.headers else "table"
            for record in table.records():
                yield {title_key: table.title, **record}

    def render_text(self) -> str:
        """The harness text block for this run.

        One blank line before each table, then the table, then the
        ``[<id> completed in <t>s]`` footer line — the v1 harness print
        sequence, byte-identical to rendering the runner's tables
        directly.
        """
        parts = []
        for table in self.tables:
            parts.append("")
            parts.append(table.to_table().render())
        parts.append(f"\n[{self.experiment_id} completed in {self.elapsed:.1f}s]")
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-able dict form (schema-versioned)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "tags": list(self.tags),
            "profile": self.profile,
            "seed": self.seed,
            "backend": self.backend,
            "elapsed": self.elapsed,
            "tables": [table.to_dict() for table in self.tables],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported result schema_version {version!r} "
                f"(this library reads {SCHEMA_VERSION})"
            )
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            claim=payload.get("claim", ""),
            tags=tuple(payload.get("tags", ())),
            profile=payload["profile"],
            seed=payload["seed"],
            backend=payload["backend"],
            elapsed=payload["elapsed"],
            tables=[TableData.from_dict(table) for table in payload["tables"]],
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "ExperimentResult":
        """Parse a document produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(document))

    def to_csv(self) -> str:
        """All tables as CSV, separated by ``# table:`` comment lines."""
        sections = []
        for table in self.tables:
            sections.append(f"# table: {self.experiment_id} / {table.title}")
            sections.append(table.to_csv().rstrip("\n"))
        return "\n".join(sections) + "\n"
