"""E15 — Sections 1.2–1.3: the round-complexity landscape.

Prints the analytic setup and per-round overheads of the three generations
of simulation ([7], [4], this paper) over an ``(n, Δ)`` grid, including the
paper's claimed improvement factor ``Θ(min{n/Δ, Δ})`` over [4] and the
strict-constant table explaining why practical presets exist.
"""

from __future__ import annotations

from ..analysis.theory import strict_constraint_table
from ..baselines import (
    agl_overhead,
    agl_setup,
    beauquier_overhead,
    beauquier_setup,
    ours_broadcast_overhead,
    ours_congest_overhead,
)
from ..core.parameters import paper_strict_c
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e15",
    title="Sections 1.2-1.3: overhead landscape",
    claim="Sections 1.2-1.3",
    tags=("analytic", "landscape"),
)
def run(ctx: RunContext) -> list[Table]:
    """Tabulate the analytic landscape and the strict constants."""
    landscape = Table(
        title="E15a: analytic overhead landscape (constants = 1)",
        headers=[
            "n",
            "Delta",
            "[7] setup",
            "[7]/round",
            "[4] setup",
            "[4]/round",
            "ours BC/round",
            "ours CONGEST/round",
            "[4]/ours-CONGEST",
        ],
    )
    grid = [
        (2**8, 4),
        (2**8, 16),
        (2**12, 16),
        (2**12, 64),
        (2**16, 64),
        (2**16, 256),
    ]
    for n, delta in grid:
        landscape.add_row(
            n,
            delta,
            beauquier_setup(n, delta),
            beauquier_overhead(n, delta),
            agl_setup(n, delta),
            agl_overhead(n, delta),
            ours_broadcast_overhead(n, delta),
            ours_congest_overhead(n, delta),
            agl_overhead(n, delta) / ours_congest_overhead(n, delta),
        )
    landscape.notes.append(
        "[4]/ours-CONGEST column is the paper's min{n/Delta, Delta} "
        "improvement factor"
    )

    constants = Table(
        title="E15b: paper-strict constant constraints (Lemmas 6, 9, 10)",
        headers=["eps", "constraint", "value"],
    )
    for eps in [0.05, 0.1, 0.2, 0.3]:
        for name, value in strict_constraint_table(eps):
            constants.add_row(eps, name, value)
        constants.add_row(eps, "=> paper_strict_c", paper_strict_c(eps))
    constants.notes.append(
        "at eps = 0.1 the strict constant is ~1e3, giving beep codes of "
        "length c^3 (Delta+1) log n ~ 1e11 bits - why practical presets "
        "(c in 3..8) are used for execution (DESIGN.md 2.1)"
    )
    return [landscape, constants]
