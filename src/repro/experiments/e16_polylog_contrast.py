"""E16 — Section 7: polylog(n) vs poly(Δ) in the beeping model.

The paper's concluding observation: in the beeping model, MIS is solvable
in ``polylog(n)`` rounds ([1]; :func:`repro.beeping.beeping_mis`), while
maximal matching provably needs ``Ω(Δ log n)`` (Theorem 22) — a complexity
separation CONGEST does not have.  The table runs both on the same graphs:
native-MIS rounds stay flat as Δ grows at fixed n, while matching (via the
optimal simulation, i.e. essentially the best known) scales linearly in Δ.
"""

from __future__ import annotations

from ..algorithms import check_matching, check_mis, make_matching_algorithms
from ..beeping.mis import beeping_mis
from ..core.parameters import SimulationParameters
from ..core.transpiler import BeepSimulator
from ..graphs import Topology, random_regular_graph
from ..lower_bounds import matching_round_bound
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e16",
    title="Section 7: polylog MIS vs poly-Delta matching",
    claim="Section 7",
    tags=("separation", "matching"),
)
def run(ctx: RunContext) -> list[Table]:
    """Race native beeping MIS against simulated matching across Δ."""
    table = Table(
        title="E16: beeping-model complexity split, MIS vs matching (Sec. 7)",
        headers=[
            "n",
            "Delta",
            "MIS rounds (native beeps)",
            "MIS valid",
            "matching rounds (via sim)",
            "matching valid",
            "matching LB (Delta log n)",
        ],
        notes=[
            "MIS runs directly on beeps (rank knockout, O(log^2 n)); "
            "matching runs through the optimal simulation (Thm 21), and no "
            "beeping algorithm can beat Delta log n (Thm 22)",
        ],
    )
    n = 16 if ctx.quick else 24
    deltas = [3, 5] if ctx.quick else [3, 5, 7, 9]
    for delta in deltas:
        topology = Topology(random_regular_graph(n, delta, seed=ctx.seed))
        mis = beeping_mis(topology, seed=ctx.seed)
        mis_ok, _ = check_mis(topology, mis.in_mis)

        ids = list(range(n))
        algorithms, budget = make_matching_algorithms(
            topology, ids, value_exponent=3
        )
        params = SimulationParameters(
            message_bits=budget, max_degree=delta, eps=0.0, c=3
        )
        result = BeepSimulator(
            topology, params=params, seed=ctx.seed
        ).run_broadcast_congest(algorithms, max_rounds=80)
        match_ok, _ = check_matching(topology, ids, result.outputs)

        table.add_row(
            n,
            delta,
            mis.rounds_used,
            mis_ok,
            result.stats.beep_rounds,
            match_ok and result.finished,
            matching_round_bound(delta, max(2, n)),
        )
    return [table]
