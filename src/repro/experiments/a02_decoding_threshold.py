"""A2 (ablation) — the (2ε+1)/4 phase-1 acceptance threshold.

Lemma 9 places the acceptance threshold at ``(2ε+1)/4`` of the codeword
weight: far enough above the expected noise on a *present* codeword's ones
(``ε·weight``) and far enough below the residual intersection of an
*absent* codeword (``≈ (1 - 5/c)·weight`` minus noise).  This ablation
replaces the factor with a sweep and measures both error arms, showing
the paper's choice sits in the operating valley between false rejections
(threshold too low) and false acceptances (threshold too high).
"""

from __future__ import annotations

import numpy as np

from .. import bitstrings as bs
from ..codes import BeepCode
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="a02",
    title="Ablation: the (2e+1)/4 phase-1 threshold",
    claim="Lemma 9",
    tags=("ablation", "decoding"),
)
def run(ctx: RunContext) -> list[Table]:
    """Sweep the threshold factor; count false accepts/rejects directly."""
    eps = 0.2
    code = BeepCode(input_bits=8, k=4, c=5, seed=ctx.seed)
    paper_factor = (2 * eps + 1) / 4
    table = Table(
        title="A2: phase-1 threshold factor ablation (Lemma 9)",
        headers=[
            "factor",
            "threshold",
            "false rejects",
            "false accepts",
            "total errors",
            "paper's factor",
        ],
        notes=[
            f"eps = {eps}, beep code (8, 4, 1/5); 'factor' scales the "
            "codeword weight; paper uses (2*eps+1)/4 = "
            f"{paper_factor:.3f}",
        ],
    )
    trials = 30 if ctx.quick else 150
    rng = ctx.rng("a02")
    factors = [0.15, 0.25, paper_factor, 0.45, 0.60, 0.80]
    # Pre-generate noisy superimpositions and membership ground truth.
    cases: list[tuple[set[int], np.ndarray]] = []
    for _ in range(trials):
        members = {
            int(v) for v in rng.choice(code.num_codewords, size=4, replace=False)
        }
        union = bs.superimpose([code.encode_int(v) for v in sorted(members)])
        noisy = union ^ (rng.random(code.length) < eps)
        cases.append((members, noisy))
    candidates = list(range(0, code.num_codewords, 3))  # fixed scan set

    for factor in factors:
        threshold = int(factor * code.weight)
        false_rejects = 0
        false_accepts = 0
        for members, noisy in cases:
            not_heard = bs.complement(noisy)
            for candidate in candidates:
                statistic = bs.intersection_weight(
                    code.encode_int(candidate), not_heard
                )
                accepted = statistic < threshold
                if candidate in members and not accepted:
                    false_rejects += 1
                if candidate not in members and accepted:
                    false_accepts += 1
        table.add_row(
            round(factor, 3),
            threshold,
            false_rejects,
            false_accepts,
            false_rejects + false_accepts,
            abs(factor - paper_factor) < 1e-9,
        )
    return [table]
