"""E3 — Lemma 6: distance-code minimum distance.

Constructs random ``(a, δ)``-distance codes at the paper-strict length
``c_δ a`` and measures the true minimum pairwise distance against the
``δb`` guarantee, across a sweep of ``δ``.
"""

from __future__ import annotations

from ..codes import DistanceCode, minimum_pairwise_distance, paper_c_delta
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e03",
    title="Lemma 6: distance-code minimum distance",
    claim="Lemma 6",
    tags=("codes",),
)
def run(ctx: RunContext) -> list[Table]:
    """Sweep δ and measure minimum pairwise distance vs the δb guarantee."""
    table = Table(
        title="E3: distance code (a,delta) minimum distance (Lemma 6)",
        headers=[
            "a",
            "delta",
            "c_delta",
            "length",
            "guarantee (delta*b)",
            "measured min",
            "holds",
            "fail bound",
        ],
    )
    sweep = [(6, 0.1), (6, 0.2), (6, 1.0 / 3.0)]
    if not ctx.quick:
        sweep += [(8, 0.2), (8, 1.0 / 3.0), (5, 0.45)]
    for a, delta in sweep:
        code = DistanceCode(input_bits=a, delta=delta, seed=ctx.seed)
        measured = minimum_pairwise_distance(code)
        table.add_row(
            a,
            round(delta, 4),
            round(paper_c_delta(delta), 1),
            code.length,
            code.min_distance,
            measured,
            measured >= code.min_distance,
            code.failure_probability_bound(),
        )
    return [table]
