"""E4 — Lemmas 8–9: phase-1 decoding (codeword-set recovery under noise).

Runs Algorithm 1 rounds on regular graphs across a ``(Δ, ε)`` sweep and
reports the rate at which nodes recover exactly their neighbourhood's
codeword set (``R̃_v = R_v``), at the practical constants.
"""

from __future__ import annotations

from ..analysis.measurement import measure_round_success
from ..core.parameters import SimulationParameters, practical_c
from ..graphs import Topology, random_regular_graph
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e04",
    title="Lemmas 8-9: phase-1 set recovery under noise",
    claim="Lemmas 8-9",
    tags=("simulation", "decoding"),
)
def run(ctx: RunContext) -> list[Table]:
    """Sweep (Δ, ε) and measure the phase-1 set-recovery rate."""
    table = Table(
        title="E4: phase-1 decoding, R~_v = R_v rate (Lemmas 8-9)",
        headers=[
            "n",
            "Delta",
            "eps",
            "c",
            "phase rounds",
            "trials",
            "node errors",
            "node error rate",
            "round success",
        ],
        notes=["practical constants (DESIGN.md 2.1); node errors count R~_v != R_v"],
    )
    n = 18 if ctx.quick else 30
    deltas = [2, 4] if ctx.quick else [2, 4, 6, 8]
    eps_values = [0.0, 0.1] if ctx.quick else [0.0, 0.05, 0.1, 0.2]
    trials = 6 if ctx.quick else 25
    for delta in deltas:
        topology = Topology(random_regular_graph(n, delta, seed=ctx.seed))
        for eps in eps_values:
            params = SimulationParameters.for_network(
                n, delta, eps=eps, gamma=1
            )
            stats = measure_round_success(
                topology, params, trials=trials, seed=ctx.seed
            )
            node_rounds = n * trials
            table.add_row(
                n,
                delta,
                eps,
                practical_c(eps),
                params.beep_code_length,
                trials,
                stats.phase1_node_errors,
                stats.phase1_node_errors / node_rounds,
                stats.success_rate,
            )
    return [table]
