"""E6 — Theorem 11: simulation overhead is O(Δ log n).

Measures the beeping rounds Algorithm 1 uses per simulated Broadcast
CONGEST round across sweeps in ``Δ`` (fixed ``n``) and ``n`` (fixed
``Δ``), and divides out the ``(Δ+1)·B`` predictor: the ratio column is
flat iff the measured overhead has the theorem's shape.
"""

from __future__ import annotations

from ..analysis.measurement import fit_linear_factor, measure_round_success
from ..core.parameters import SimulationParameters
from ..graphs import Topology, random_regular_graph
from .context import RunContext
from .spec import experiment
from .table import Table

__all__ = ["run"]


@experiment(
    id="e06",
    title="Theorem 11: O(Delta log n) overhead",
    claim="Theorem 11",
    tags=("simulation", "overhead", "theorem"),
)
def run(ctx: RunContext) -> list[Table]:
    """Measure overhead vs Δ and vs n; fit the linear factor."""
    eps = 0.1
    trials = 3 if ctx.quick else 10

    by_delta = Table(
        title="E6a: overhead vs Delta at fixed n (Thm 11: O(Delta log n))",
        headers=[
            "n",
            "Delta",
            "B",
            "overhead (beep rounds)",
            "overhead/((Delta+1)*B)",
            "success rate",
        ],
    )
    n = 24 if ctx.quick else 48
    deltas = [2, 3, 4] if ctx.quick else [2, 3, 4, 6, 8, 10]
    xs, ys = [], []
    for delta in deltas:
        topology = Topology(random_regular_graph(n, delta, seed=ctx.seed))
        params = SimulationParameters.for_network(n, delta, eps=eps, gamma=1)
        stats = measure_round_success(
            topology, params, trials=trials, seed=ctx.seed
        )
        overhead = params.overhead
        predictor = (delta + 1) * params.message_bits
        xs.append(predictor)
        ys.append(overhead)
        by_delta.add_row(
            n,
            delta,
            params.message_bits,
            overhead,
            overhead / predictor,
            stats.success_rate,
        )
    slope = fit_linear_factor(xs, ys)
    by_delta.notes.append(
        f"fitted overhead ~ {slope:.1f} * (Delta+1) * B  (flat ratio = linear shape)"
    )

    by_n = Table(
        title="E6b: overhead vs n at fixed Delta (log n scaling)",
        headers=[
            "n",
            "Delta",
            "B",
            "overhead (beep rounds)",
            "overhead/((Delta+1)*B)",
            "success rate",
        ],
    )
    delta = 3
    sizes = [16, 64] if ctx.quick else [16, 64, 256, 1024]
    for n_value in sizes:
        topology = Topology(random_regular_graph(n_value, delta, seed=ctx.seed))
        params = SimulationParameters.for_network(n_value, delta, eps=eps, gamma=1)
        stats = measure_round_success(
            topology, params, trials=max(2, trials // 2), seed=ctx.seed
        )
        predictor = (delta + 1) * params.message_bits
        by_n.add_row(
            n_value,
            delta,
            params.message_bits,
            params.overhead,
            params.overhead / predictor,
            stats.success_rate,
        )
    return [by_delta, by_n]
