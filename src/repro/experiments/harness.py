"""Command-line harness: run reproduction experiments and print tables.

Usage::

    python -m repro.experiments               # list experiments
    python -m repro.experiments e06 e08       # run selected, quick mode
    python -m repro.experiments all --full    # the full (slow) sweeps
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures (DESIGN.md 3)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e01..e15) or 'all'; empty lists experiments",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full parameter sweeps instead of the quick ones",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    args = parser.parse_args(argv)

    if not args.experiments:
        print("available experiments:")
        for key, description in list_experiments():
            print(f"  {key}  {description}")
        print("run with: python -m repro.experiments <id>|all [--full]")
        return 0

    selected = list(args.experiments)
    if len(selected) == 1 and selected[0].lower() == "all":
        selected = sorted(EXPERIMENTS)

    for experiment_id in selected:
        runner = get_experiment(experiment_id)
        started = time.perf_counter()
        tables = runner(quick=not args.full, seed=args.seed)
        elapsed = time.perf_counter() - started
        for table in tables:
            print()
            print(table.render())
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
